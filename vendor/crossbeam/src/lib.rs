//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread API is provided, implemented directly on top of
//! `std::thread::scope` (stable since Rust 1.63), which gives the same
//! borrow-the-stack guarantees crossbeam pioneered.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    use std::any::Any;

    /// Result of joining a scoped thread (mirrors `std::thread::Result`).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle to the scope, passed both to the scope closure and to every
    /// spawned thread's closure (crossbeam's convention allows nested
    /// spawns from workers).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned in a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle so
        /// workers can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope: &'scope std::thread::Scope<'scope, 'env> = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || {
                    let scope = Scope { inner: inner_scope };
                    f(&scope)
                }),
            }
        }
    }

    /// Creates a scope in which threads may borrow from the enclosing
    /// stack frame. All spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panic in an unjoined child propagates out of
    /// `std::thread::scope` instead of being collected into the `Err`
    /// variant; every call site in this workspace joins its handles, so
    /// the difference is unobservable here.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let scope = Scope { inner: s };
            f(&scope)
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }
    }
}
