//! Offline stand-in for `serde_derive`.
//!
//! Derives the value-tree `Serialize`/`Deserialize` traits of the local
//! `serde` stub. Implemented directly on `proc_macro::TokenStream` (no
//! `syn`/`quote`, which are unavailable offline), so it supports the
//! data shapes this workspace actually uses:
//!
//! * structs with named fields → JSON objects;
//! * tuple structs: one field → transparent (the inner value), several →
//!   arrays;
//! * unit structs → `null`;
//! * fieldless enums → variant-name strings.
//!
//! `#[serde(...)]` attributes are accepted and ignored; the only one the
//! workspace uses is `transparent`, whose JSON semantics newtype structs
//! get by default. Generic types and data-carrying enum variants are
//! rejected with a compile error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

/// What a type looks like, as far as the derives care.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    FieldlessEnum(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn skip_attributes(iter: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // Optional `!` for inner attributes, then the bracket group.
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '!' {
                        iter.next();
                    }
                }
                iter.next();
            }
            _ => return,
        }
    }
}

fn skip_visibility(iter: &mut Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

fn parse_input(input: TokenStream, trait_name: &str) -> Parsed {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("derive({trait_name}) on `{name}`: generic types are not supported by the offline serde stub");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("derive({trait_name}) on `{name}`: unexpected struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::FieldlessEnum(parse_unit_variants(g.stream(), &name, trait_name))
            }
            other => panic!("derive({trait_name}) on `{name}`: unexpected enum body {other:?}"),
        },
        other => panic!("derive({trait_name}): unsupported item kind `{other}`"),
    };
    Parsed { name, shape }
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("serde derive: expected field name, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type: everything up to a comma at angle-bracket
        // depth zero. `>>` arrives as two separate '>' puncts.
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {}
            }
            iter.next();
        }
    }
    fields
}

/// Number of fields in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    fields + usize::from(saw_tokens)
}

/// Variant names of a fieldless enum body.
fn parse_unit_variants(stream: TokenStream, name: &str, trait_name: &str) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("derive({trait_name}) on `{name}`: expected variant, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!(
                "derive({trait_name}) on `{name}`: data-carrying or discriminant variants \
                 are not supported by the offline serde stub ({other:?})"
            ),
            None => break,
        }
    }
    variants
}

/// Derives value-tree serialization.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse_input(input, "Serialize");
    let mut body = String::new();
    match &shape {
        Shape::Named(fields) => {
            body.push_str("::serde::Value::Object(::std::vec![");
            for f in fields {
                write!(
                    body,
                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                )
                .unwrap();
            }
            body.push_str("])");
        }
        Shape::Tuple(1) => body.push_str("::serde::Serialize::to_value(&self.0)"),
        Shape::Tuple(n) => {
            body.push_str("::serde::Value::Array(::std::vec![");
            for i in 0..*n {
                write!(body, "::serde::Serialize::to_value(&self.{i}),").unwrap();
            }
            body.push_str("])");
        }
        Shape::Unit => body.push_str("::serde::Value::Null"),
        Shape::FieldlessEnum(variants) => {
            body.push_str("::serde::Value::Str(::std::string::String::from(match self {");
            for v in variants {
                write!(body, "{name}::{v} => \"{v}\",").unwrap();
            }
            body.push_str("}))");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl parses")
}

/// Derives value-tree deserialization.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse_input(input, "Deserialize");
    let mut body = String::new();
    match &shape {
        Shape::Named(fields) => {
            write!(body, "::std::result::Result::Ok({name} {{").unwrap();
            for f in fields {
                write!(
                    body,
                    "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"
                )
                .unwrap();
            }
            body.push_str("})");
        }
        Shape::Tuple(1) => {
            write!(
                body,
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
            )
            .unwrap();
        }
        Shape::Tuple(n) => {
            write!(
                body,
                "let items = v.elements()?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"expected {n} elements for {name}, got {{}}\", items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}("
            )
            .unwrap();
            for i in 0..*n {
                write!(body, "::serde::Deserialize::from_value(&items[{i}])?,").unwrap();
            }
            body.push_str("))");
        }
        Shape::Unit => write!(body, "::std::result::Result::Ok({name})").unwrap(),
        Shape::FieldlessEnum(variants) => {
            body.push_str("match ::serde::Value::str(v)? {");
            for var in variants {
                write!(body, "\"{var}\" => ::std::result::Result::Ok({name}::{var}),").unwrap();
            }
            write!(
                body,
                "other => ::std::result::Result::Err(::serde::Error::msg(\
                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),"
            )
            .unwrap();
            body.push('}');
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl parses")
}
