//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a zero-copy visitor framework; this stub trades that
//! for a simple self-describing value tree ([`Value`]): `Serialize`
//! converts a type *to* a `Value`, `Deserialize` reconstructs it *from*
//! one. `serde_json` (the sibling stub) renders and parses `Value` as
//! JSON. JSON data semantics match real serde: newtype structs serialize
//! as their inner value, fieldless enum variants as strings, structs as
//! objects.
//!
//! The `#[derive(Serialize, Deserialize)]` macros come from the local
//! `serde_derive` stub, which supports the shapes this workspace uses:
//! named-field structs, tuple structs, and fieldless enums. Attributes
//! such as `#[serde(transparent)]` are accepted and ignored — newtype
//! structs already get transparent JSON semantics.

mod impls;
mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Deserialization error: a path-less description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}
