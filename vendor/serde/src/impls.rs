//! `Serialize`/`Deserialize` implementations for std types.

use crate::value::{Number, Value};
use crate::{Deserialize, Error, Serialize};
use std::collections::{BTreeMap, HashMap};

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.number()?.as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Num(Number::U64(n as u64))
                } else {
                    Value::Num(Number::I64(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.number()?.as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::msg(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                // Non-finite floats serialize as null (JSON has no inf/NaN).
                if let Value::Null = v {
                    return Ok(<$t>::NAN);
                }
                Ok(v.number()?.as_f64() as $t)
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.str()?.to_owned())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.str()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.elements()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|items| {
            Error::msg(format!("expected array of {N}, got {}", items.len()))
        })
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.elements()?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of {expected}, got {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
ser_de_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
