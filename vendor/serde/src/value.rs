//! The self-describing value tree.

use crate::Error;

/// A JSON-shaped number, preserving integer fidelity where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// The value as `f64` (lossy above 2⁵³).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// The value as `u64` if exactly representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as `i64` if exactly representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(n as i64),
            Number::F64(_) => None,
        }
    }
}

/// A serialized value tree with JSON data semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved, as serialized).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object, erroring on misses or non-objects.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// The elements of an array, or an error.
    pub fn elements(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::msg(format!("expected array, got {}", other.kind()))),
        }
    }

    /// The string payload, or an error.
    pub fn str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {}", other.kind()))),
        }
    }

    /// The numeric payload, or an error.
    pub fn number(&self) -> Result<Number, Error> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(Error::msg(format!("expected number, got {}", other.kind()))),
        }
    }

    /// A short name for the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
