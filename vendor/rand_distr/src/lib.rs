//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides [`Normal`] (Box–Muller) and [`Binomial`] (exact Bernoulli sum
//! for small `n`, clamped Gaussian approximation for large `n`), the two
//! distributions the workload models use, over the local `rand` stub.

pub use rand::distributions::Distribution;
use rand::distributions::Standard;
use rand::Rng;

/// A normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Errors from [`Normal::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation negative or non-finite"),
            NormalError::MeanTooSmall => write!(f, "mean non-finite"),
        }
    }
}

impl std::error::Error for NormalError {}

impl Normal<f64> {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms → one normal deviate. The twin deviate
        // is discarded so sampling stays stateless (`&self`).
        let u1 = Distribution::<f64>::sample(&Standard, rng).max(f64::MIN_POSITIVE);
        let u2 = Distribution::<f64>::sample(&Standard, rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// A binomial distribution: successes in `n` trials of probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

/// Errors from [`Binomial::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinomialError {
    /// `p` was outside `[0, 1]` or non-finite.
    ProbabilityTooLarge,
}

impl std::fmt::Display for BinomialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binomial probability outside [0, 1]")
    }
}

impl std::error::Error for BinomialError {}

impl Binomial {
    /// Cutoff below which sampling is an exact Bernoulli sum.
    const EXACT_N: u64 = 64;

    /// A binomial distribution over `n` trials with success probability `p`.
    pub fn new(n: u64, p: f64) -> Result<Self, BinomialError> {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(BinomialError::ProbabilityTooLarge);
        }
        Ok(Binomial { n, p })
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p <= 0.0 || self.n == 0 {
            return 0;
        }
        if self.p >= 1.0 {
            return self.n;
        }
        if self.n <= Self::EXACT_N {
            return (0..self.n)
                .filter(|_| Distribution::<f64>::sample(&Standard, rng) < self.p)
                .count() as u64;
        }
        // Large n: Gaussian approximation with continuity correction,
        // clamped to the support. The page drivers draw counts in the
        // thousands, where the approximation error is far below the noise
        // the models already inject.
        let mean = self.n as f64 * self.p;
        let sd = (mean * (1.0 - self.p)).sqrt();
        let z = Normal::new(0.0, 1.0).unwrap().sample(rng);
        let k = (mean + sd * z + 0.5).floor();
        k.clamp(0.0, self.n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut r = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn binomial_moments_small_and_large() {
        let mut r = StdRng::seed_from_u64(2);
        for &(n, p) in &[(40u64, 0.25f64), (10_000, 0.03)] {
            let d = Binomial::new(n, p).unwrap();
            let draws = 5_000;
            let mean = (0..draws).map(|_| d.sample(&mut r) as f64).sum::<f64>() / draws as f64;
            let expect = n as f64 * p;
            assert!(
                (mean - expect).abs() < expect * 0.05 + 0.5,
                "n={n} p={p} mean {mean} expect {expect}"
            );
            assert!((0..100).all(|_| d.sample(&mut r) <= n));
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let mut r = StdRng::seed_from_u64(3);
        assert_eq!(Binomial::new(100, 0.0).unwrap().sample(&mut r), 0);
        assert_eq!(Binomial::new(100, 1.0).unwrap().sample(&mut r), 100);
        assert!(Binomial::new(10, 1.5).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
