//! Offline stand-in for the `criterion` crate.
//!
//! Provides the calling convention the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with throughput and per-input benches,
//! and [`Bencher::iter`] / [`Bencher::iter_batched`] — backed by a simple
//! wall-clock harness: warm up briefly, time batches until a sampling
//! budget elapses, report the median per-iteration time and derived
//! throughput. No statistics beyond that, no HTML reports, no saved
//! baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the measured time scales per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hints for [`Bencher::iter_batched`]; the stub treats all
/// variants identically (one setup per timed invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id that is just a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The timing engine handed to bench closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by `iter*`.
    ns_per_iter: f64,
}

const WARMUP: Duration = Duration::from_millis(150);
const MEASURE: Duration = Duration::from_millis(600);
const SAMPLES: usize = 11;

impl Bencher {
    /// Times repeated invocations of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and size the batch so one sample lasts ≥ ~1 ms.
        let warm_start = Instant::now();
        let mut iters_in_warmup = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            iters_in_warmup += 1;
        }
        let per_iter = WARMUP.as_secs_f64() / iters_in_warmup.max(1) as f64;
        let batch = ((1e-3 / per_iter).ceil() as u64).max(1);

        let mut samples = Vec::with_capacity(SAMPLES);
        let measure_start = Instant::now();
        while samples.len() < SAMPLES && measure_start.elapsed() < MEASURE {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }

    /// Times `routine` over fresh state from `setup` each invocation;
    /// setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            black_box(routine(input));
        }
        let mut samples = Vec::with_capacity(SAMPLES);
        let measure_start = Instant::now();
        while samples.len() < SAMPLES && measure_start.elapsed() < MEASURE {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2] * 1e9;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let thr = match throughput {
        Some(Throughput::Bytes(b)) => {
            let gib = b as f64 / ns * 1e9 / (1u64 << 30) as f64;
            format!("  thrpt: {gib:.3} GiB/s")
        }
        Some(Throughput::Elements(e)) => {
            let meps = e as f64 / ns * 1e9 / 1e6;
            format!("  thrpt: {meps:.3} Melem/s")
        }
        None => String::new(),
    };
    println!("{name:<48} time: {:>12}{thr}", human_time(ns));
}

/// The top-level harness.
pub struct Criterion {
    _sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            _sample_size: SAMPLES,
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API parity; the stub's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API parity; the stub sizes measurement time itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Declares a group function running each bench with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }
}
