//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses the `serde` stub's [`Value`] tree as JSON. Supports
//! the workspace's surface: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and the [`json!`] macro for literal objects.

use std::fmt::Write as _;

pub use serde::{Error, Number, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as human-indented JSON (2 spaces).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { s: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.i)));
    }
    T::from_value(&v)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from JSON-literal syntax. Supports the object,
/// array, and scalar forms the workspace uses; values are arbitrary
/// serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, level, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Object(entries) => {
            write_seq(out, indent, level, entries.len(), '{', '}', |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, level + 1)
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (level + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(x) => write!(out, "{x}").unwrap(),
        Number::I64(x) => write!(out, "{x}").unwrap(),
        Number::F64(x) if !x.is_finite() => out.push_str("null"),
        Number::F64(x) if x == x.trunc() && x.abs() < 1e15 => {
            // Keep integral floats readable but distinguishable from ints.
            write!(out, "{x:.1}").unwrap()
        }
        Number::F64(x) => write!(out, "{x}").unwrap(),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.i += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        let num = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U64(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I64(i)
            } else {
                Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::msg(format!("bad number `{text}`")))?,
                )
            }
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::msg(format!("bad number `{text}`")))?,
            )
        };
        Ok(Value::Num(num))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.25").unwrap(), 2.25);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn json_macro_and_pretty() {
        let v = json!({ "a": 1u64, "b": [true, false], "c": "x" });
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"a\":1,\"b\":[true,false],\"c\":\"x\"}");
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
