//! The [`Strategy`] trait, primitive strategies, and combinators.

use crate::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
///
/// `generate` returns `None` when a `prop_filter` (or an undersized
/// collection domain) rejects the draw; the runner retries the whole case
/// with fresh randomness.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` on a filter rejection.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing a predicate. The `reason` is
    /// kept for API parity (reported only when rejection exhausts the
    /// retry budget, via the runner's global counter).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            _reason: reason.into(),
            f,
        }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    _reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Retry locally a few times before reporting a rejection, which
        // keeps shallow filters cheap without hiding dead ones.
        for _ in 0..8 {
            if let Some(v) = self.inner.generate(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<O::Value> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Weighted union of boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds the union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof!: all weights zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let mut pick = rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights changed during generation")
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<u8>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

macro_rules! arbitrary_tuples {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )+};
}
arbitrary_tuples!((A), (A, B), (A, B, C), (A, B, C, D));

macro_rules! strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! strategy_for_tuples {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )+};
}
strategy_for_tuples!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Size specifications for collection strategies.
pub trait SizeBounds {
    /// Inclusive `(lo, hi)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeBounds for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}
