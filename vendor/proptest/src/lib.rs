//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the API this workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_filter` /
//! `boxed`, ranges and tuples as strategies, [`any`], [`Just`],
//! `prop_oneof!`, `prop::collection::{vec, hash_set}`, `prop::option::of`,
//! [`ProptestConfig`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs (via
//!   the panic message) but does not minimize them.
//! * **Deterministic seeding.** Case `i` of test `t` derives its RNG seed
//!   from `hash(t) ⊕ i`, so failures reproduce exactly without a
//!   regression file.
//! * `prop_filter` rejections retry with fresh draws, up to a cap, after
//!   which the case is skipped.

use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Maximum filter rejections tolerated across the whole test.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            // Real proptest defaults to 256; 64 keeps the numeric-heavy
            // simulator suites fast while still exploring broadly.
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// A test-case failure (produced by `prop_assert!` or explicitly).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] (real proptest distinguishes
    /// rejections; here both fail the case).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Outcome of one generated case (used by the `proptest!` expansion).
pub enum CaseOutcome {
    /// The body ran and passed.
    Pass,
    /// Generation hit a filter; retry with fresh draws.
    Reject,
    /// The body failed.
    Fail(TestCaseError),
}

/// Runs `cases` deterministic cases of `body`. Called by the `proptest!`
/// expansion; panics (failing the surrounding `#[test]`) on the first
/// failing case, reporting the case number and its RNG seed.
pub fn run_test(config: &ProptestConfig, name: &str, mut body: impl FnMut(&mut TestRng) -> CaseOutcome) {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    name.hash(&mut hasher);
    let base = hasher.finish();
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < config.cases {
        let seed = base ^ u64::from(case) ^ (u64::from(rejects) << 32);
        let mut rng = TestRng::seed_from_u64(seed);
        match body(&mut rng) {
            CaseOutcome::Pass => case += 1,
            CaseOutcome::Reject => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest {name}: too many filter rejections \
                         ({rejects}) after {case} cases"
                    );
                }
            }
            CaseOutcome::Fail(e) => {
                panic!(
                    "proptest {name}: case {case} (seed {seed:#x}) failed: {e}"
                );
            }
        }
    }
}

/// `prop::…` namespace, mirroring the real crate's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::strategy::{SizeBounds, Strategy};
        use super::super::TestRng;
        use std::collections::HashSet;

        /// A strategy producing `Vec`s whose length falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            VecStrategy { element, lo, hi }
        }

        /// See [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                use rand::Rng;
                let len = rng.gen_range(self.lo..=self.hi);
                let mut out = Vec::with_capacity(len);
                for _ in 0..len {
                    out.push(self.element.generate(rng)?);
                }
                Some(out)
            }
        }

        /// A strategy producing `HashSet`s whose size falls in `size`
        /// (subject to element-domain limits).
        pub fn hash_set<S>(element: S, size: impl SizeBounds) -> HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            let (lo, hi) = size.bounds();
            HashSetStrategy { element, lo, hi }
        }

        /// See [`hash_set`].
        #[derive(Debug, Clone)]
        pub struct HashSetStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        impl<S> Strategy for HashSetStrategy<S>
        where
            S: Strategy,
            S::Value: std::hash::Hash + Eq,
        {
            type Value = HashSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                use rand::Rng;
                let target = rng.gen_range(self.lo..=self.hi);
                let mut out = HashSet::with_capacity(target);
                let mut attempts = 0usize;
                while out.len() < target && attempts < target * 20 + 100 {
                    out.insert(self.element.generate(rng)?);
                    attempts += 1;
                }
                if out.len() < self.lo {
                    return None;
                }
                Some(out)
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::strategy::Strategy;
        use super::super::TestRng;

        /// A strategy producing `None` about a quarter of the time and
        /// `Some(inner)` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                use rand::Rng;
                if rng.gen_range(0u32..4) == 0 {
                    Some(None)
                } else {
                    Some(Some(self.inner.generate(rng)?))
                }
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use super::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use super::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestCaseResult,
    };
}

/// The top-level property-test macro. Wraps each `fn name(arg in strategy)
/// { body }` item into a `#[test]` running [`ProptestConfig::cases`]
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands the individual test items. The attribute repetition
/// re-emits `#[test]` and doc comments verbatim.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_test(&config, stringify!($name), |__rng| {
                $(
                    let $pat = match $crate::Strategy::generate(&($strat), __rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => return $crate::CaseOutcome::Reject,
                    };
                )+
                let __result: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => $crate::CaseOutcome::Pass,
                    ::std::result::Result::Err(e) => $crate::CaseOutcome::Fail(e),
                }
            });
        }
    )*};
}

/// Weighted choice between strategies producing the same value type.
/// Arms are `strategy` or `weight => strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(::std::format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} != {:?}: {}", a, b, ::std::format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Ranges respect bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(x in 3u64..10, (a, b) in (0i32..5, any::<bool>())) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..5).contains(&a));
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Vec + map + filter pipelines generate within spec.
        #[test]
        fn collections_compose(
            v in prop::collection::vec((0u8..=9, 1usize..4), 0..8),
            opt in prop::option::of(1u32..5),
            set in prop::collection::hash_set(0u32..100, 2..6),
        ) {
            prop_assert!(v.len() < 8);
            for (d, n) in v {
                prop_assert!(d <= 9 && (1..4).contains(&n));
            }
            if let Some(x) = opt {
                prop_assert!((1..5).contains(&x));
            }
            prop_assert!(set.len() >= 2 && set.len() < 6);
        }
    }

    proptest! {
        /// prop_oneof picks only listed arms, honoring zero-ish weights.
        #[test]
        fn oneof_arms(x in prop_oneof![2 => 0u32..10, 1 => 100u32..110]) {
            prop_assert!((0..10).contains(&x) || (100..110).contains(&x));
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        use super::{run_test, CaseOutcome, ProptestConfig, Strategy};
        let mut first = Vec::new();
        run_test(&ProptestConfig::with_cases(5), "det", |rng| {
            first.push((0u64..1000).generate(rng).unwrap());
            CaseOutcome::Pass
        });
        let mut second = Vec::new();
        run_test(&ProptestConfig::with_cases(5), "det", |rng| {
            second.push((0u64..1000).generate(rng).unwrap());
            CaseOutcome::Pass
        });
        assert_eq!(first, second);
    }
}
