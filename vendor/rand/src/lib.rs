//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses: [`rngs::StdRng`]
//! seeded with [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`, `sample`, `fill`), and the
//! [`distributions`] module with `Standard`, `Uniform`-style ranges and
//! `WeightedIndex`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — *not* the
//! ChaCha12 stream the real `StdRng` uses, so absolute streams differ from
//! upstream `rand`, but every draw is a pure integer function of the seed:
//! results are bit-for-bit reproducible across platforms and runs, which is
//! the property the simulators' determinism contracts rely on.

pub mod distributions;
pub mod rngs;

pub use distributions::Distribution;

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of a standard-distributed type.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        self.gen::<f64>() < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        debug_assert!(
            denominator > 0 && numerator <= denominator,
            "gen_ratio {numerator}/{denominator} out of range"
        );
        self.gen_range(0..denominator) < numerator
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::distributions::WeightedIndex;
    use super::rngs::StdRng;
    use super::{Distribution, Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: u64 = r.gen_range(10..=20);
            assert!((10..=20).contains(&y));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn weighted_index_prefers_heavy_arms() {
        let w = WeightedIndex::new([1.0, 0.0, 9.0]).unwrap();
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 5 * counts[0], "counts {counts:?}");
    }
}
