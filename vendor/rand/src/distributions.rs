//! Distributions: `Standard`, uniform ranges, and `WeightedIndex`.

use crate::Rng;

/// Types that generate values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution for a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Range sampling (`rng.gen_range(lo..hi)` / `lo..=hi`).
    //!
    //! Mirrors the real crate's structure — one blanket `SampleRange`
    //! impl per range shape, keyed on [`SampleUniform`] — because type
    //! inference relies on it: `gen_range(1..8)` must unify the literal's
    //! integer type with the call site's expected output type.

    use super::super::Rng;
    use super::Distribution;
    use std::ops::{Range, RangeInclusive};

    /// Types uniformly sampleable over a half-open or closed interval.
    pub trait SampleUniform: Sized + PartialOrd + Copy {
        /// Uniform draw from `[lo, hi)`.
        fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    }

    /// Ranges that can be sampled directly.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range: empty range");
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty inclusive range");
            T::sample_inclusive(rng, lo, hi)
        }
    }

    /// Maps a 64-bit draw onto `[0, span)` using the widening-multiply
    /// technique (Lemire); bias is ≤ 2⁻⁶⁴ per draw, far below anything the
    /// simulators can observe, and the mapping is a pure function of the
    /// draw, preserving determinism.
    #[inline]
    fn scale(word: u64, span: u64) -> u64 {
        ((word as u128 * span as u128) >> 64) as u64
    }

    macro_rules! uniform_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    (lo as $wide).wrapping_add(scale(rng.next_u64(), span) as $wide) as $t
                }
                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as $wide).wrapping_add(scale(rng.next_u64(), span + 1) as $wide) as $t
                }
            }
        )*};
    }
    uniform_int!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    let u: f64 = super::Standard.sample(rng);
                    let v = lo as f64 + u * (hi as f64 - lo as f64);
                    // Rounding can land exactly on `hi`; nudge back inside.
                    if v >= hi as f64 {
                        <$t>::from_bits(hi.to_bits() - 1)
                    } else {
                        v as $t
                    }
                }
                fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                    let u: f64 = super::Standard.sample(rng);
                    (lo as f64 + u * (hi as f64 - lo as f64)) as $t
                }
            }
        )*};
    }
    uniform_float!(f32, f64);
}

/// Samples indices `0..weights.len()` proportionally to the weights.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
    total: f64,
}

/// Errors from [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were supplied.
    NoItem,
    /// A weight was negative or non-finite.
    InvalidWeight,
    /// All weights were zero.
    AllWeightsZero,
}

impl std::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

impl WeightedIndex {
    /// Builds the sampler from an iterator of non-negative weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: Into<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w: f64 = w.into();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative, total })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = Standard.sample(rng);
        let target = u * self.total;
        // First index whose cumulative weight exceeds the target;
        // zero-weight arms are never selected.
        self.cumulative
            .partition_point(|&c| c <= target)
            .min(self.cumulative.len() - 1)
    }
}
