//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset of the real API this workspace uses: an immutable,
//! cheaply cloneable byte buffer backed by an `Arc<[u8]>`. Reference
//! counting makes `clone` O(1), which is the property the zswap store and
//! zsmalloc arena rely on when they hand out views of stored payloads.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (does not allocate a payload).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "…({} bytes)", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(&[9]).to_vec(), vec![9]);
    }
}
