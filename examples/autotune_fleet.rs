//! The §5.3 loop end to end: collect a fleet trace, run GP-Bandit
//! autotuning against the fast far memory model, and walk the winning
//! configuration through the staged rollout.
//!
//! ```text
//! cargo run --release --example autotune_fleet
//! ```

use sdfm::agent::SloConfig;
use sdfm::autotuner::{RolloutPipeline, RolloutStage};
use sdfm::core::experiments::{collect_fleet_traces, Scale};
use sdfm::core::AutotunePipeline;
use sdfm::model::FarMemoryModel;

fn main() {
    // 1. Telemetry: every job exports 5-minute aggregates of its working
    //    set and histograms (here: two hours from a small synthetic fleet).
    let scale = Scale {
        machines_per_cluster: 3,
        warmup_windows: 0,
        measure_windows: 24,
        seed: 2024,
        threads: 0,
    };
    let traces = collect_fleet_traces(&scale, 24);
    println!(
        "collected {} job traces x {} windows",
        traces.len(),
        traces.first().map(|t| t.len()).unwrap_or(0)
    );

    // 2. The fast far memory model + GP Bandit: ~25 what-if evaluations.
    let model = FarMemoryModel::new(traces);
    let mut pipeline = AutotunePipeline::new(model, SloConfig::default(), 99);
    for i in 1..=25 {
        let trial = pipeline.step();
        println!(
            "trial {i:>2}: K = {:>5.1}, S = {:>5.0}s -> {:>9.0} cold pages, p98 {:.4}%/min {}",
            trial.k_percentile,
            trial.s_warmup_secs,
            trial.cold_pages,
            trial.p98_rate * 100.0,
            if trial.feasible {
                "(feasible)"
            } else {
                "(violates)"
            }
        );
    }
    let tuned = pipeline
        .best_params()
        .expect("the search space contains feasible configurations");
    println!(
        "\nbest feasible: K = {:.1}th percentile, S = {}s",
        tuned.k_percentile,
        tuned.s_warmup.as_secs()
    );

    // 3. Staged rollout: qualification -> canary -> production, with
    //    monitoring at each stage (here every stage reports healthy).
    let current_production = vec![99.3, 2_400.0];
    let mut rollout = RolloutPipeline::new(current_production, 3);
    rollout.propose(vec![tuned.k_percentile, tuned.s_warmup.as_secs() as f64]);
    let mut step = 0;
    while rollout.in_flight() {
        step += 1;
        let stage = rollout.observe(true);
        println!(
            "rollout step {step}: stage {stage:?}, serving {:?}",
            rollout.active()
        );
        if step > 20 {
            break;
        }
    }
    assert_eq!(rollout.stage(), RolloutStage::Qualification); // ready for the next candidate
    println!("\npromoted to production: {:?}", rollout.active());
}
