//! A Borg-like cluster under churn: jobs arrive, exit, and occasionally
//! get evicted, while every machine runs the far-memory control plane.
//! Prints hourly cluster-level memory accounting and the eviction-SLO
//! status.
//!
//! ```text
//! cargo run --release --example cluster_day
//! ```

use rand::{Rng, SeedableRng};
use sdfm::cluster::{BorgCluster, ClusterConfig};
use sdfm::workloads::templates::JobTemplate;

fn main() {
    let mut cluster = BorgCluster::new(ClusterConfig::small_test(), 5);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    // Initial load: a dozen jobs across the templates, shrunk to cluster
    // scale, with shortened lifetimes so churn shows within the day.
    let submit = |cluster: &mut BorgCluster, rng: &mut rand::rngs::StdRng| {
        let template = JobTemplate::ALL[rng.gen_range(0..JobTemplate::ALL.len())];
        let mut profile = template.sample_profile(rng);
        for b in &mut profile.rate_buckets {
            b.pages = (b.pages / 10).max(1);
        }
        profile.lifetime = sdfm::types::time::SimDuration::from_mins(rng.gen_range(90..600));
        cluster.submit(profile);
    };
    for _ in 0..12 {
        submit(&mut cluster, &mut rng);
    }

    println!(
        "{:>5} {:>6} {:>8} {:>12} {:>12} {:>10}",
        "hour", "jobs", "pending", "compressed", "saved pages", "promos/h"
    );
    for hour in 1..=12u64 {
        let mut promos = 0;
        let mut pending = 0;
        for _ in 0..60 {
            // Poisson-ish arrivals keep the cluster busy.
            if rng.gen_bool(0.03) {
                submit(&mut cluster, &mut rng);
            }
            let report = cluster.step_minute();
            promos += report.promotions;
            pending = report.pending;
        }
        let (mut zswapped, mut saved) = (0u64, 0u64);
        for m in cluster.machines() {
            let s = m.kernel().machine_stats();
            zswapped += s.zswapped_pages;
            saved += s.pages_saved().get();
        }
        println!(
            "{:>5} {:>6} {:>8} {:>12} {:>12} {:>10}",
            hour,
            cluster.running_jobs(),
            pending,
            zswapped,
            saved,
            promos
        );
    }

    let ev = cluster.evictions();
    println!(
        "\nevictions: {} over {} of job-time ({} fail-fast OOM kills)",
        ev.evictions(),
        ev.job_time(),
        ev.oom_kills()
    );
    println!(
        "eviction SLO (≤ 0.1/job-day): {}",
        if ev.meets_slo(0.1) { "met" } else { "BREACHED" }
    );
}
