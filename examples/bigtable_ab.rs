//! A miniature §6.4 case study: A/B two machine groups running
//! Bigtable-like serving jobs, one with zswap disabled (control) and one
//! with the full control plane (experiment), and compare coverage and the
//! modeled user-level IPC.
//!
//! ```text
//! cargo run --release --example bigtable_ab
//! ```

use sdfm::core::experiments::bigtable::{figure10, Fig10Config};

fn main() {
    let config = Fig10Config {
        machines_per_group: 4,
        jobs_per_machine: 2,
        hours: 6,
        shrink: 40,
        seed: 11,
    };
    println!(
        "A/B: {} machines per group, {} Bigtable-like jobs each, {} hours\n",
        config.machines_per_group, config.jobs_per_machine, config.hours
    );
    println!("{:>6} {:>12} {:>14}", "hour", "coverage", "IPC delta");
    let points = figure10(&config);
    for p in &points {
        println!(
            "{:>6.0} {:>11.1}% {:>13.2}%",
            p.hour,
            p.coverage * 100.0,
            p.ipc_delta_pct
        );
    }
    let worst = points
        .iter()
        .map(|p| p.ipc_delta_pct.abs())
        .fold(0.0, f64::max);
    println!("\nworst-case IPC delta {worst:.2}% — within the machine-to-machine noise band,");
    println!("matching the paper's conclusion that zswap does not degrade Bigtable.");
}
