//! Quickstart: run software-defined far memory on one simulated machine.
//!
//! Builds a machine with the production control plane (kstaled +
//! kreclaimd + zswap under the node agent), admits two jobs, advances an
//! hour of simulated time, and prints what the far-memory tier saved.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use sdfm::core::{FarMemorySystem, SystemConfig};
use sdfm::workloads::templates::JobTemplate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = FarMemorySystem::new(SystemConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // Sample two jobs from the workload templates, shrunk to fit the
    // default 1 GiB machine comfortably.
    let mut jobs = Vec::new();
    for template in [JobTemplate::Bigtable, JobTemplate::LogProcessor] {
        let mut profile = template.sample_profile(&mut rng);
        for bucket in &mut profile.rate_buckets {
            bucket.pages = (bucket.pages / 4).max(1);
        }
        let id = system.add_job(profile.clone())?;
        println!(
            "admitted {id}: {} ({}, ~{:.0}% expected cold at 120 s)",
            profile.template,
            profile.total_pages(),
            profile.expected_cold_fraction(120.0, 1.0) * 100.0
        );
        jobs.push(id);
    }

    // One simulated hour: accesses flow, kstaled scans every 120 s, the
    // agent re-decides thresholds every minute, kreclaimd compresses.
    for quarter in 1..=4 {
        system.run_minutes(15);
        let stats = system.machine_stats();
        println!(
            "t+{:>2}min: {} resident, {} pages compressed into a {} arena, {} saved",
            quarter * 15,
            stats.resident,
            stats.zswapped_pages,
            stats.zswap_footprint,
            system.memory_saved(),
        );
    }

    println!();
    for id in jobs {
        let js = system.job_stats(id)?;
        println!(
            "{id}: {} resident / {} compressed; {} compressions, {} faults back",
            js.resident_pages, js.zswapped_pages, js.compressions, js.decompressions
        );
    }
    Ok(())
}
