//! Software-defined far memory in warehouse-scale computers.
//!
//! This facade crate re-exports the entire SDFM workspace — a reproduction
//! of Lagar-Cavilla et al., *Software-Defined Far Memory in Warehouse-Scale
//! Computers* (ASPLOS 2019) — as one dependency. See the individual crates
//! for the subsystem documentation:
//!
//! * [`types`] — identifiers, simulated time, histograms, statistics;
//! * [`compress`] — page codecs and the zsmalloc-style compressed arena;
//! * [`kernel`] — the simulated kernel layer (kstaled, kreclaimd, zswap);
//! * [`agent`] — the node agent's cold-age-threshold controller;
//! * [`workloads`] — synthetic WSC job and fleet generators;
//! * [`cluster`] — machines, scheduling, churn, telemetry;
//! * [`model`] — the fast far memory model for offline what-if analysis;
//! * [`autotuner`] — the GP-Bandit parameter autotuner;
//! * [`core`] — end-to-end orchestration, SLOs, and the TCO model.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end single-machine run.

#![warn(missing_docs)]

pub use sdfm_agent as agent;
pub use sdfm_autotuner as autotuner;
pub use sdfm_cluster as cluster;
pub use sdfm_compress as compress;
pub use sdfm_core as core;
pub use sdfm_kernel as kernel;
pub use sdfm_model as model;
pub use sdfm_types as types;
pub use sdfm_workloads as workloads;
