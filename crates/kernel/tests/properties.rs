//! Property tests: kernel page-accounting conservation under arbitrary
//! interleavings of accesses, scans, reclaims, and frees.

use proptest::prelude::*;
use sdfm_kernel::{Kernel, KernelConfig, PageContent, Tier1Config};
use sdfm_types::histogram::PageAge;
use sdfm_types::ids::{JobId, PageId};
use sdfm_types::size::PageCount;

#[derive(Debug, Clone)]
enum Op {
    Touch(u16, bool),
    Scan,
    Reclaim(u8),
    Free(u8),
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), any::<bool>()).prop_map(|(p, w)| Op::Touch(p, w)),
        2 => Just(Op::Scan),
        2 => (1u8..=20).prop_map(Op::Reclaim),
        1 => (1u8..=10).prop_map(Op::Free),
        1 => Just(Op::Compact),
    ]
}

fn check_conservation(kernel: &Kernel, job: JobId, expected_pages: u64) {
    let cg = kernel.memcg(job).expect("job exists");
    let s = cg.stats();
    assert_eq!(
        s.resident_pages + s.zswapped_pages + s.demoted_total(),
        expected_pages,
        "page conservation broken: {s:?}"
    );
    assert_eq!(cg.usage().get(), expected_pages);
    let ms = kernel.machine_stats();
    assert_eq!(ms.resident.get(), s.resident_pages);
    assert_eq!(ms.zswapped_pages, s.zswapped_pages);
    assert_eq!(ms.demoted_pages, s.demoted_pages);
    assert!(ms.resident + ms.zswap_footprint + ms.free == ms.capacity);
    // The zswap arena holds exactly the memcg's compressed pages.
    assert_eq!(kernel.zswap().resident_objects(), s.zswapped_pages);
    // The chain's device residency matches the page tables' view.
    if let Some(chain) = kernel.chain() {
        assert_eq!(chain.device_resident_pages(), s.demoted_total());
        for (i, tier) in chain.stats().iter().enumerate() {
            // Every page a tier accepted is exactly one of: still
            // resident there, faulted back, or discarded.
            assert_eq!(
                tier.stores,
                tier.resident_pages + tier.loads + tier.discards,
                "tier {i} leaked pages: {tier:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-tier kernel: pages are conserved across every operation
    /// interleaving, and machine-level accounting always agrees with the
    /// per-memcg view.
    #[test]
    fn page_accounting_is_conserved(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut kernel = Kernel::new(KernelConfig {
            capacity: PageCount::new(4_000),
            ..KernelConfig::default()
        });
        let job = JobId::new(1);
        kernel.create_memcg(job, PageCount::new(8_000)).unwrap();
        kernel
            .alloc_pages(job, 1_000, |i| {
                PageContent::synthetic_of_len(300 + (i % 12) * 256)
            })
            .unwrap();
        kernel.set_zswap_enabled(job, true).unwrap();
        let mut live = 1_000u64;
        for op in ops {
            match op {
                Op::Touch(p, w) => {
                    if live > 0 {
                        let idx = p as u64 % live;
                        kernel.touch(job, PageId::new(idx), w).unwrap();
                    }
                }
                Op::Scan => {
                    kernel.run_scan();
                }
                Op::Reclaim(t) => {
                    kernel.reclaim_job(job, PageAge::from_scans(t)).unwrap();
                }
                Op::Free(n) => {
                    let n = (n as u64).min(live) as usize;
                    kernel.free_pages(job, n).unwrap();
                    live -= n as u64;
                }
                Op::Compact => {
                    kernel.compact_zswap();
                }
            }
            check_conservation(&kernel, job, live);
        }
        // Teardown releases everything.
        kernel.remove_memcg(job).unwrap();
        prop_assert_eq!(kernel.zswap().resident_objects(), 0);
        prop_assert_eq!(kernel.free_frames(), PageCount::new(4_000));
    }

    /// Two-tier kernel: the same conservation holds with the tiered
    /// reclaim ladder, and the tier-1 device count always matches the sum
    /// of per-memcg tier-1 pages.
    #[test]
    fn tiered_accounting_is_conserved(
        ops in prop::collection::vec(op_strategy(), 1..60),
        nvm in 50u64..500,
    ) {
        let mut kernel = Kernel::new(KernelConfig {
            capacity: PageCount::new(4_000),
            ..KernelConfig::default()
        });
        kernel.enable_tier1(Tier1Config::nvm_like(PageCount::new(nvm)));
        let job = JobId::new(1);
        kernel.create_memcg(job, PageCount::new(8_000)).unwrap();
        kernel
            .alloc_pages(job, 800, |i| PageContent::synthetic_of_len(300 + (i % 12) * 256))
            .unwrap();
        kernel.set_zswap_enabled(job, true).unwrap();
        let mut live = 800u64;
        for op in ops {
            match op {
                Op::Touch(p, w) => {
                    if live > 0 {
                        kernel.touch(job, PageId::new(p as u64 % live), w).unwrap();
                    }
                }
                Op::Scan => {
                    kernel.run_scan();
                }
                Op::Reclaim(t) => {
                    let t1 = PageAge::from_scans(t.clamp(1, 250));
                    let t2 = PageAge::from_scans(t.clamp(1, 250).saturating_add(4));
                    kernel.reclaim_job_tiered(job, t1, t2).unwrap();
                }
                Op::Free(n) => {
                    let n = (n as u64).min(live) as usize;
                    kernel.free_pages(job, n).unwrap();
                    live -= n as u64;
                }
                Op::Compact => {
                    kernel.compact_zswap();
                }
            }
            check_conservation(&kernel, job, live);
            let tier1 = kernel.tier1_stats().expect("device attached");
            prop_assert_eq!(
                tier1.resident,
                kernel.memcg(job).unwrap().stats().demoted_total()
            );
            prop_assert!(tier1.resident <= nvm, "device overfilled");
        }
        kernel.remove_memcg(job).unwrap();
        prop_assert_eq!(kernel.tier1_stats().unwrap().resident, 0);
    }

    /// Three-tier kernel (zswap → SSD → remote): conservation holds across
    /// interleavings of demotion ticks, faults, and frees; capacity-full
    /// SSD rejections overflow to the remote tier and are counted.
    #[test]
    fn chain_accounting_is_conserved(
        ops in prop::collection::vec(op_strategy(), 1..60),
        ssd in 10u64..120,
    ) {
        use sdfm_kernel::{BackendConfig, StorePressure};
        let mut kernel = Kernel::new(KernelConfig {
            capacity: PageCount::new(4_000),
            ..KernelConfig::default()
        });
        kernel.enable_chain(&[
            BackendConfig::compressed_ram(),
            BackendConfig::ssd(PageCount::new(ssd)),
            BackendConfig::remote(),
        ]);
        let job = JobId::new(1);
        kernel.create_memcg(job, PageCount::new(8_000)).unwrap();
        kernel
            .alloc_pages(job, 800, |i| PageContent::synthetic_of_len(300 + (i % 12) * 256))
            .unwrap();
        kernel.set_zswap_enabled(job, true).unwrap();
        let mut live = 800u64;
        for op in ops {
            match op {
                Op::Touch(p, w) => {
                    if live > 0 {
                        kernel.touch(job, PageId::new(p as u64 % live), w).unwrap();
                    }
                }
                Op::Scan => {
                    kernel.run_scan();
                }
                Op::Reclaim(t) => {
                    // Compress the cold mass, then push one decay window
                    // of the coldest compressed pages down the chain.
                    kernel.reclaim_job(job, PageAge::from_scans(t.clamp(1, 250))).unwrap();
                    let zswapped = kernel.memcg(job).unwrap().stats().zswapped_pages;
                    let budget = StorePressure::PAPER_DEFAULT.decay_step(zswapped);
                    kernel.demote_job(job, budget).unwrap();
                }
                Op::Free(n) => {
                    let n = (n as u64).min(live) as usize;
                    kernel.free_pages(job, n).unwrap();
                    live -= n as u64;
                }
                Op::Compact => {
                    kernel.compact_zswap();
                }
            }
            check_conservation(&kernel, job, live);
            let stats = kernel.chain_stats().expect("chain attached");
            // The SSD never overfills; demand past its capacity lands on
            // the remote tier (and each spill counts a rejection).
            prop_assert!(stats[1].resident_pages <= ssd, "SSD overfilled");
            if stats[2].stores > 0 {
                prop_assert!(
                    stats[1].full_rejections >= stats[2].stores,
                    "remote stores without SSD rejections: {stats:?}"
                );
            }
        }
        kernel.remove_memcg(job).unwrap();
        let stats = kernel.chain_stats().unwrap();
        prop_assert_eq!(kernel.chain().unwrap().device_resident_pages(), 0);
        // Teardown closes the books: everything stored was loaded back or
        // discarded.
        for tier in &stats {
            prop_assert_eq!(tier.stores, tier.loads + tier.discards);
        }
    }

    /// Faulted pages always come back with identical content (real pages,
    /// random touch/reclaim interleavings).
    #[test]
    fn real_content_is_never_corrupted(
        seed in any::<u64>(),
        ops in prop::collection::vec(op_strategy(), 1..30),
    ) {
        use sdfm_compress::gen::{CompressibilityMix, PageGenerator};
        let mut g = PageGenerator::new(seed);
        let mix = CompressibilityMix::fleet_default();
        let mut kernel = Kernel::new(KernelConfig {
            capacity: PageCount::new(500),
            ..KernelConfig::default()
        });
        let job = JobId::new(1);
        kernel.create_memcg(job, PageCount::new(1_000)).unwrap();
        let pages: Vec<bytes::Bytes> =
            (0..40).map(|_| bytes::Bytes::from(g.generate_from_mix(&mix).1)).collect();
        let contents = pages.clone();
        kernel
            .alloc_pages(job, 40, |i| PageContent::Real(contents[i].clone()))
            .unwrap();
        kernel.set_zswap_enabled(job, true).unwrap();
        for op in ops {
            match op {
                Op::Touch(p, w) => {
                    // touch() itself asserts content equality on fault.
                    kernel.touch(job, PageId::new(p as u64 % 40), w).unwrap();
                }
                Op::Scan => { kernel.run_scan(); }
                Op::Reclaim(t) => {
                    kernel
                        .reclaim_job(job, PageAge::from_scans(t.clamp(1, 255)))
                        .unwrap();
                }
                Op::Free(_) | Op::Compact => { kernel.compact_zswap(); }
            }
        }
        // Fault everything back and let touch() verify byte equality.
        for i in 0..40 {
            kernel.touch(job, PageId::new(i), false).unwrap();
        }
    }
}
