//! SoA-vs-AoS equivalence: the struct-of-arrays [`PageTable`] must be
//! observationally identical to the array-of-structs model it replaced.
//!
//! The reference model here is a plain `Vec<Page>` driven by the original
//! per-page scan rules (reset-on-access, saturating aging, dirty clears
//! the incompressible mark) and the original split-before-swap semantics.
//! A seeded random schedule of touches, splits, pushes, pops, and scans
//! runs against both; after every scan the table's ages, flags, live
//! histogram, promotion histogram, and reclaim/demote victim sets must
//! all match the reference exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdfm_kernel::page_table::PageTable;
use sdfm_kernel::{Page, PageContent};
use sdfm_types::histogram::{ColdAgeHistogram, PageAge, PromotionHistogram};

/// The pre-SoA representation: one struct per entry, full rebuilds.
struct ReferenceModel {
    pages: Vec<Page>,
}

impl ReferenceModel {
    fn scan(&mut self, promo: &mut PromotionHistogram) {
        for p in &mut self.pages {
            if p.flags.accessed {
                if p.age > PageAge::HOT {
                    promo.record_promotion(p.age, p.span as u64);
                }
                p.age = PageAge::HOT;
                p.flags.accessed = false;
                if p.flags.dirty {
                    p.flags.incompressible = false;
                    p.flags.dirty = false;
                }
            } else {
                p.age = p.age.incremented();
            }
        }
    }

    fn histogram(&self) -> ColdAgeHistogram {
        let mut h = ColdAgeHistogram::new();
        for p in &self.pages {
            h.record_page(p.age, p.span as u64);
        }
        h
    }

    fn split(&mut self, idx: usize) -> bool {
        if self.pages[idx].span <= 1 {
            return false;
        }
        let clones = (self.pages[idx].span - 1) as usize;
        self.pages[idx].span = 1;
        for _ in 0..clones {
            let clone = self.pages[idx].clone();
            self.pages.push(clone);
        }
        true
    }
}

fn random_page(rng: &mut StdRng) -> Page {
    let mut p = if rng.gen_bool(0.1) {
        Page::new_huge(PageContent::synthetic_of_len(rng.gen_range(100..2000)))
    } else {
        Page::new(PageContent::synthetic_of_len(rng.gen_range(100..2000)))
    };
    p.flags.accessed = rng.gen_bool(0.5);
    p.flags.dirty = rng.gen_bool(0.2);
    p.flags.unevictable = rng.gen_bool(0.05);
    p.flags.incompressible = rng.gen_bool(0.1);
    p.age = PageAge::from_scans(rng.gen_range(0..20));
    p
}

fn assert_equivalent(pt: &PageTable, reference: &ReferenceModel, round: usize) {
    assert_eq!(pt.len(), reference.pages.len(), "round {round}: length");
    for (i, rp) in reference.pages.iter().enumerate() {
        let sp = pt.page(i).unwrap();
        assert_eq!(sp.age, rp.age, "round {round}, entry {i}: age");
        assert_eq!(sp.flags, rp.flags, "round {round}, entry {i}: flags");
        assert_eq!(sp.span, rp.span, "round {round}, entry {i}: span");
        assert_eq!(sp.state, rp.state, "round {round}, entry {i}: state");
        assert_eq!(sp.content, rp.content, "round {round}, entry {i}: content");
    }
    assert_eq!(
        pt.live_histogram(),
        &reference.histogram(),
        "round {round}: live histogram diverged from the AoS rebuild"
    );
    for t in [1u8, 3, 8, 200] {
        let t = PageAge::from_scans(t);
        let soa: Vec<usize> = (0..pt.len()).filter(|&i| pt.reclaim_eligible(i, t)).collect();
        let aos: Vec<usize> = reference
            .pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.reclaim_eligible(t))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(soa, aos, "round {round}: reclaim victims at threshold {t:?}");
        let soa: Vec<usize> = (0..pt.len()).filter(|&i| pt.demote_eligible(i, t)).collect();
        let aos: Vec<usize> = reference
            .pages
            .iter()
            .enumerate()
            .filter(|(_, p)| p.demote_eligible(t))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(soa, aos, "round {round}: demote victims at threshold {t:?}");
    }
}

#[test]
fn soa_table_matches_aos_reference_under_random_schedules() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pt = PageTable::new();
        let mut reference = ReferenceModel { pages: Vec::new() };
        let mut soa_promo = PromotionHistogram::new();
        let mut aos_promo = PromotionHistogram::new();
        for _ in 0..30 {
            let p = random_page(&mut rng);
            pt.push(p.clone());
            reference.pages.push(p);
        }
        for round in 0..60 {
            // Random touches (with occasional writes).
            for i in 0..pt.len() {
                if rng.gen_bool(0.3) {
                    pt.set_accessed(i, true);
                    reference.pages[i].flags.accessed = true;
                    if rng.gen_bool(0.3) {
                        pt.set_dirty(i, true);
                        reference.pages[i].flags.dirty = true;
                    }
                }
            }
            // Occasional structural churn.
            match rng.gen_range(0..5) {
                0 => {
                    let p = random_page(&mut rng);
                    pt.push(p.clone());
                    reference.pages.push(p);
                }
                1 if pt.len() > 1 => {
                    let back = pt.pop().unwrap();
                    let rback = reference.pages.pop().unwrap();
                    assert_eq!(back.age, rback.age);
                    assert_eq!(back.flags, rback.flags);
                    assert_eq!(back.span, rback.span);
                }
                2 => {
                    let idx = rng.gen_range(0..pt.len());
                    assert_eq!(pt.split_huge(idx), reference.split(idx));
                }
                _ => {}
            }
            pt.sweep(&mut soa_promo);
            reference.scan(&mut aos_promo);
            assert_eq!(soa_promo, aos_promo, "round {round}: promotion histogram");
            assert_equivalent(&pt, &reference, round);
        }
    }
}
