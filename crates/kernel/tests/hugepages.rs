//! Huge-page behavior: coarse access tracking, split-before-swap, and the
//! interleaving penalty §7 alludes to ("fragmentation can limit huge
//! pages").

use sdfm_kernel::page::HUGE_SPAN;
use sdfm_kernel::{Kernel, KernelConfig, PageContent};
use sdfm_types::histogram::PageAge;
use sdfm_types::ids::{JobId, PageId};
use sdfm_types::size::PageCount;

fn kernel(capacity: u64) -> (Kernel, JobId) {
    let mut k = Kernel::new(KernelConfig {
        capacity: PageCount::new(capacity),
        ..KernelConfig::default()
    });
    let job = JobId::new(1);
    k.create_memcg(job, PageCount::new(capacity)).unwrap();
    (k, job)
}

#[test]
fn huge_pages_charge_full_span() {
    let (mut k, job) = kernel(10_000);
    k.alloc_huge_pages(job, 4, |_| PageContent::synthetic_of_len(700))
        .unwrap();
    let cg = k.memcg(job).unwrap();
    assert_eq!(cg.usage().get(), 4 * HUGE_SPAN as u64);
    assert_eq!(k.machine_stats().resident.get(), 4 * HUGE_SPAN as u64);
    assert_eq!(k.free_frames().get(), 10_000 - 4 * 512);
}

#[test]
fn huge_page_allocation_respects_limits() {
    let (mut k, _) = kernel(1_000);
    let job2 = JobId::new(2);
    k.create_memcg(job2, PageCount::new(600)).unwrap();
    // One huge page (512 frames) fits the memcg limit; two do not.
    k.alloc_huge_pages(job2, 1, |_| PageContent::synthetic_of_len(700))
        .unwrap();
    assert!(k
        .alloc_huge_pages(job2, 1, |_| PageContent::synthetic_of_len(700))
        .is_err());
}

#[test]
fn cold_huge_page_splits_then_compresses() {
    let (mut k, job) = kernel(10_000);
    k.alloc_huge_pages(job, 2, |_| PageContent::synthetic_of_len(700))
        .unwrap();
    k.set_zswap_enabled(job, true).unwrap();
    for _ in 0..4 {
        k.run_scan();
    }
    // Histograms see frames, not entries: 1024 cold frames.
    assert_eq!(
        k.memcg(job)
            .unwrap()
            .cold_pages(PageAge::from_scans(2))
            .get(),
        2 * HUGE_SPAN as u64
    );
    let o = k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
    assert_eq!(o.huge_splits, 2);
    let stats = k.memcg(job).unwrap().stats();
    // The compressible share (~69%) of the 1024 base pages stores; the
    // rest is marked incompressible. Either way nothing huge remains
    // resident beyond the incompressible leftovers.
    assert_eq!(
        stats.zswapped_pages + stats.incompressible_marked,
        2 * HUGE_SPAN as u64
    );
    assert!(stats.zswapped_pages > 500);
    // Frame conservation.
    assert_eq!(
        stats.resident_pages + stats.zswapped_pages,
        2 * HUGE_SPAN as u64
    );
}

#[test]
fn touching_a_huge_page_keeps_all_its_frames_hot() {
    let (mut k, job) = kernel(10_000);
    k.alloc_huge_pages(job, 2, |_| PageContent::synthetic_of_len(700))
        .unwrap();
    k.set_zswap_enabled(job, true).unwrap();
    k.run_scan();
    for _ in 0..3 {
        // Touch only huge page 0 each scan period: one PMD access keeps
        // all 512 frames young.
        k.touch(job, PageId::new(0), false).unwrap();
        k.run_scan();
    }
    let cg = k.memcg(job).unwrap();
    // Page 1's frames are cold; page 0's are not.
    assert_eq!(
        cg.cold_pages(PageAge::from_scans(2)).get(),
        HUGE_SPAN as u64
    );
    assert_eq!(
        cg.working_set(PageAge::from_scans(1)).get(),
        HUGE_SPAN as u64
    );
    // Reclaim compresses only the idle huge page.
    let o = k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
    assert_eq!(o.huge_splits, 1);
}

#[test]
fn interleaved_hot_frames_pin_huge_pages_in_dram() {
    // The §7 point, demonstrated: the same 4 MiB of memory with one hot
    // 4 KiB region per 2 MiB saves nothing under huge pages (the hot
    // frame keeps the whole PMD young), but saves almost everything when
    // mapped as base pages.
    let (mut k_huge, job) = kernel(10_000);
    k_huge
        .alloc_huge_pages(job, 2, |_| PageContent::synthetic_of_len(700))
        .unwrap();
    k_huge.set_zswap_enabled(job, true).unwrap();

    let (mut k_base, job_b) = kernel(10_000);
    k_base
        .alloc_pages(job_b, 2 * HUGE_SPAN as usize, |_| {
            PageContent::synthetic_of_len(700)
        })
        .unwrap();
    k_base.set_zswap_enabled(job_b, true).unwrap();

    for _ in 0..4 {
        // One hot 4 KiB location inside each 2 MiB region.
        k_huge.touch(job, PageId::new(0), false).unwrap();
        k_huge.touch(job, PageId::new(1), false).unwrap();
        k_base.touch(job_b, PageId::new(0), false).unwrap();
        k_base
            .touch(job_b, PageId::new(HUGE_SPAN as u64), false)
            .unwrap();
        k_huge.run_scan();
        k_base.run_scan();
    }
    let t = PageAge::from_scans(2);
    k_huge.reclaim_job(job, t).unwrap();
    k_base.reclaim_job(job_b, t).unwrap();

    let huge_saved = k_huge.memcg(job).unwrap().stats().zswapped_pages;
    let base_saved = k_base.memcg(job_b).unwrap().stats().zswapped_pages;
    assert_eq!(huge_saved, 0, "hot frames must pin whole huge pages");
    assert!(
        base_saved > 600,
        "base pages should compress the cold bulk, got {base_saved}"
    );
}

#[test]
fn split_preserves_page_ids_and_frees_cleanly() {
    let (mut k, job) = kernel(10_000);
    k.alloc_huge_pages(job, 1, |_| PageContent::synthetic_of_len(700))
        .unwrap();
    k.set_zswap_enabled(job, true).unwrap();
    for _ in 0..3 {
        k.run_scan();
    }
    k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
    // Page id 0 still resolves (now a base page, possibly compressed).
    k.touch(job, PageId::new(0), false).unwrap();
    // Freeing everything returns the machine to a clean state.
    k.free_pages(job, HUGE_SPAN as usize).unwrap();
    assert_eq!(k.memcg(job).unwrap().usage(), PageCount::ZERO);
    assert_eq!(k.zswap().resident_objects(), 0);
    assert_eq!(k.free_frames().get(), 10_000);
}

#[test]
fn tiered_reclaim_splits_huge_pages_before_either_tier() {
    use sdfm_kernel::Tier1Config;
    let (mut k, job) = kernel(10_000);
    k.enable_tier1(Tier1Config::nvm_like(PageCount::new(600)));
    k.alloc_huge_pages(job, 2, |_| PageContent::synthetic_of_len(700))
        .unwrap();
    k.set_zswap_enabled(job, true).unwrap();
    for _ in 0..4 {
        k.run_scan();
    }
    let o = k
        .reclaim_job_tiered(job, PageAge::from_scans(2), PageAge::from_scans(40))
        .unwrap();
    assert_eq!(o.huge_splits, 2);
    let s = k.memcg(job).unwrap().stats();
    // Warm-cold frames fill the 600-page device; the rest stays resident
    // (they are younger than the 40-scan zswap threshold).
    assert_eq!(s.demoted_total(), 600);
    assert_eq!(k.tier1_stats().unwrap().resident, 600);
    assert_eq!(
        s.resident_pages + s.demoted_total() + s.zswapped_pages,
        2 * HUGE_SPAN as u64,
        "frame conservation through tiered split"
    );
}

#[test]
fn direct_reclaim_splits_huge_pages_under_pressure() {
    // Machine has 1200 frames; the memcg limit is roomier so the second
    // allocation exercises machine pressure, not the fail-fast path.
    let mut k = Kernel::new(KernelConfig {
        capacity: PageCount::new(1_200),
        ..KernelConfig::default()
    });
    let job = JobId::new(1);
    k.create_memcg(job, PageCount::new(5_000)).unwrap();
    k.alloc_huge_pages(job, 2, |_| PageContent::synthetic_of_len(700))
        .unwrap();
    for _ in 0..3 {
        k.run_scan();
    }
    // 1024 of 1200 frames used; ask for 300 more: direct reclaim must
    // split and compress huge-page frames to make room.
    k.alloc_pages(job, 300, |_| PageContent::synthetic_of_len(700))
        .unwrap();
    let s = k.memcg(job).unwrap().stats();
    assert!(s.zswapped_pages > 0, "nothing compressed under pressure");
    assert_eq!(
        s.resident_pages + s.zswapped_pages,
        2 * HUGE_SPAN as u64 + 300,
        "frame conservation through direct-reclaim split"
    );
}
