//! Store lifecycle: writeback and decay of the zswap store under pressure.
//!
//! The paper's store is filled by kreclaimd and drained by promotion
//! faults, but a real kernel also *shrinks* it without an access: when a
//! memcg's zswap is disabled its compressed pages are dead weight, when the
//! agent raises a soft limit the protected working set must come back to
//! DRAM, and under host-side memory pressure the kernel writes back LRU
//! compressed objects and compacts the arena. [`StorePressure`] is the
//! policy for all three sources; the writeback walkers here apply it by
//! decompressing-and-dropping handles, with every decompression charged
//! through [`CostModel`] so CPU accounting stays honest.
//!
//! # Determinism contract
//!
//! The decay schedule is pure integer arithmetic on the store size — no
//! RNG, no wall clock — so the statistical fleet simulator
//! (`sdfm-core::fleet_sim`) and the offline model (`sdfm-model::replay`)
//! can mirror the page-level trajectory exactly: the same
//! [`StorePressure`] value produces the same per-window writeback counts
//! in all three layers. Victim selection orders pages by `(age, index)`,
//! both of which are simulation state, so a writeback pass is a pure
//! function of the memcg.

use serde::{Deserialize, Serialize};

use crate::backend::DemotionChain;
use crate::cost::{CostModel, CpuAccounting};
use sdfm_types::arith::permille_of;
use crate::error::KernelError;
use crate::memcg::MemCgroup;
use crate::page::PageState;
use crate::zswap::ZswapStore;
use sdfm_types::histogram::PageAge;
use sdfm_types::size::PageCount;

/// Why the store is being shrunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StorePressureSource {
    /// The job's zswap was disabled: its compressed pages are dead handles
    /// that decay back to DRAM at the policy rate.
    ZswapDisabled,
    /// The job's soft limit rose above its resident pages: part of the
    /// protected working set is sitting compressed and must come back.
    SoftLimitBreach,
    /// The machine overcommitted: the kernel drops dead handles and
    /// compacts the arena before the cluster starts killing jobs.
    HostPressure,
}

/// The store-lifecycle policy: how fast a dead store decays.
///
/// Decay is geometric with an integer floor plus a minimum step, so any
/// finite store reaches exactly zero in finitely many windows (a pure
/// `resident * per_mille / 1000` floor would asymptote above zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorePressure {
    /// Fraction (per mille) of a dead store written back per control
    /// window.
    pub decay_per_mille: u32,
    /// Minimum pages written back per window while the store is nonempty,
    /// so the geometric tail terminates.
    pub min_decay_pages: u64,
}

impl StorePressure {
    /// The default lifecycle: 12.5 % of a dead store decays per 5-minute
    /// control window (a ~35-minute half-life, the order of magnitude of
    /// kswapd-driven zswap writeback under mild pressure), at least one
    /// page per window.
    pub const PAPER_DEFAULT: StorePressure = StorePressure {
        decay_per_mille: 125,
        min_decay_pages: 1,
    };

    /// Pages to write back this window from a store of `resident` pages.
    /// Always `<= resident`, and positive whenever `resident > 0`.
    pub const fn decay_step(&self, resident: u64) -> u64 {
        let geometric = permille_of(resident, self.decay_per_mille as u64);
        let step = if geometric < self.min_decay_pages {
            self.min_decay_pages
        } else {
            geometric
        };
        if step > resident {
            resident
        } else {
            step
        }
    }

    /// The store size after one window of decay.
    pub const fn store_after_window(&self, resident: u64) -> u64 {
        resident - self.decay_step(resident)
    }

    /// Windows until a store of `resident` pages drains to zero under
    /// this policy (exact, by running the integer recurrence).
    pub fn windows_to_drain(&self, mut resident: u64) -> u64 {
        let mut windows = 0;
        while resident > 0 {
            resident = self.store_after_window(resident);
            windows += 1;
        }
        windows
    }
}

impl Default for StorePressure {
    fn default() -> Self {
        StorePressure::PAPER_DEFAULT
    }
}

/// Counters from one writeback pass over one memcg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WritebackOutcome {
    /// Compressed pages decompressed-and-dropped back to DRAM.
    pub written_back: u64,
    /// Compressed candidates examined.
    pub examined: u64,
    /// Arena payload bytes released (frames return on compaction).
    pub bytes_freed: u64,
}

impl WritebackOutcome {
    /// Accumulates another pass into this one.
    pub fn merge(&mut self, other: WritebackOutcome) {
        self.written_back += other.written_back;
        self.examined += other.examined;
        self.bytes_freed += other.bytes_freed;
    }
}

/// Counters from one demotion pass over one memcg (zswap → device tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DemotionOutcome {
    /// Compressed pages moved down the chain to a device tier.
    pub demoted: u64,
    /// Compressed candidates examined.
    pub examined: u64,
    /// Victims left compressed because every tier below was full.
    pub rejected: u64,
    /// Arena payload bytes released (frames return on compaction).
    pub bytes_freed: u64,
}

impl DemotionOutcome {
    /// Accumulates another pass into this one.
    pub fn merge(&mut self, other: DemotionOutcome) {
        self.demoted += other.demoted;
        self.examined += other.examined;
        self.rejected += other.rejected;
        self.bytes_freed += other.bytes_freed;
    }
}

/// What one store-lifecycle tick achieved. A tick shrinks the store one
/// of two ways: plain writeback to DRAM (no chain, or no tier below
/// compressed RAM) or demotion down the chain — so exactly one of the two
/// outcomes is nonzero per tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LifecycleOutcome {
    /// Compressed pages written back to DRAM.
    pub writeback: WritebackOutcome,
    /// Compressed pages demoted to a device tier.
    pub demotion: DemotionOutcome,
}

impl LifecycleOutcome {
    /// Accumulates another tick into this one.
    pub fn merge(&mut self, other: LifecycleOutcome) {
        self.writeback.merge(other.writeback);
        self.demotion.merge(other.demotion);
    }
}

/// What one host-pressure relief pass achieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HostPressureOutcome {
    /// Dead-handle writeback across disabled memcgs.
    pub writeback: WritebackOutcome,
    /// Dead-handle demotion down the chain across disabled memcgs (when a
    /// tier below compressed RAM is attached).
    pub demotion: DemotionOutcome,
    /// Physical frames released by arena compaction.
    pub compacted: PageCount,
}

/// Victim order for a writeback pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VictimOrder {
    /// Oldest (LRU) compressed pages first — store decay and host
    /// pressure, where the coldest objects are the deadest.
    OldestFirst,
    /// Youngest compressed pages first — soft-limit restoration, where the
    /// most recently compressed pages are the likeliest working-set
    /// members.
    YoungestFirst,
}

/// Writes back the oldest (LRU) compressed pages of `cg`, up to `budget`
/// pages: each victim is decompressed (charged to `cpu`), its handle
/// freed, and the page made resident again with its age intact — so a
/// later re-enable recompresses exactly the decayed mass.
///
/// # Errors
///
/// [`KernelError::StaleHandle`] / [`KernelError::StoreCorrupt`] when the
/// store and the page tables disagree; the pass stops at the first
/// inconsistency.
pub fn writeback_coldest(
    cg: &mut MemCgroup,
    store: &mut ZswapStore,
    budget: u64,
    cost: &CostModel,
    cpu: &mut CpuAccounting,
) -> Result<WritebackOutcome, KernelError> {
    writeback_pass(cg, store, budget, VictimOrder::OldestFirst, false, cost, cpu)
}

/// Writes back the youngest compressed pages of `cg` (up to `budget`),
/// resetting their age to hot: they are presumed members of the protected
/// working set the soft limit covers, so they must not be re-reclaimed on
/// the next kreclaimd pass.
///
/// # Errors
///
/// As [`writeback_coldest`].
pub fn writeback_youngest(
    cg: &mut MemCgroup,
    store: &mut ZswapStore,
    budget: u64,
    cost: &CostModel,
    cpu: &mut CpuAccounting,
) -> Result<WritebackOutcome, KernelError> {
    writeback_pass(cg, store, budget, VictimOrder::YoungestFirst, true, cost, cpu)
}

/// Demotes the oldest (LRU) compressed pages of `cg` down the chain, up
/// to `budget` pages: each victim is decompressed out of the store
/// (charged to `cpu` like a writeback), then stored into the first device
/// tier below the chain's compressed-RAM tier, overflowing past full
/// tiers (each full tier counts a `full_rejections`; the backend's per-op
/// cost is charged to `cpu` as tier I/O). When every tier below is full
/// the victim stays compressed and the pass stops.
///
/// A no-op (all counters zero) when the chain has no tier below
/// compressed RAM — the two-tier configuration decays by plain writeback
/// instead.
///
/// # Errors
///
/// [`KernelError::StaleHandle`] / [`KernelError::StoreCorrupt`] when the
/// store and the page tables disagree; the pass stops at the first
/// inconsistency.
pub fn demote_coldest(
    cg: &mut MemCgroup,
    store: &mut ZswapStore,
    chain: &mut DemotionChain,
    budget: u64,
    cost: &CostModel,
    cpu: &mut CpuAccounting,
) -> Result<DemotionOutcome, KernelError> {
    let mut outcome = DemotionOutcome::default();
    let Some(start) = chain.device_below_compressed() else {
        return Ok(outcome);
    };
    if budget == 0 {
        return Ok(outcome);
    }
    let mut victims: Vec<(PageAge, usize)> = (0..cg.pages.len())
        .filter(|&i| cg.pages.is_zswapped(i))
        .map(|i| (cg.pages.age(i), i))
        .collect();
    outcome.examined = victims.len() as u64;
    victims.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, idx) in victims.into_iter().take(budget as usize) {
        let PageState::Zswapped(handle) = cg.pages.state(idx) else {
            return Err(KernelError::StoreCorrupt {
                detail: "demotion victim left the store mid-pass",
            });
        };
        // Capacity check before touching the store, so a full ladder
        // leaves the page compressed rather than orphaned.
        if chain.accepting_device_from(start).is_none() {
            // One store attempt records the stranding on every full tier.
            chain.store_with_overflow(start);
            outcome.rejected += 1;
            break;
        }
        let size = store.stored_size(handle).ok_or(KernelError::StaleHandle)? as u64;
        // Moving a page out of zswap decompresses it (real writeback
        // decompresses before handing the page to the device).
        store.load(handle)?;
        cpu.charge_decompress(cost);
        let Some((tier, op_ns)) = chain.store_with_overflow(start) else {
            return Err(KernelError::StoreCorrupt {
                detail: "accepting tier filled mid-pass",
            });
        };
        cpu.charge_tier_io(op_ns);
        cg.pages.set_state(idx, PageState::Demoted(tier as u8));
        cg.stats.zswapped_pages -= 1;
        cg.stats.zswapped_bytes -= size;
        cg.stats.demoted_pages[tier] += 1;
        cg.stats.demotions += 1;
        outcome.demoted += 1;
        outcome.bytes_freed += size;
    }
    Ok(outcome)
}

fn writeback_pass(
    cg: &mut MemCgroup,
    store: &mut ZswapStore,
    budget: u64,
    order: VictimOrder,
    restore_hot: bool,
    cost: &CostModel,
    cpu: &mut CpuAccounting,
) -> Result<WritebackOutcome, KernelError> {
    let mut outcome = WritebackOutcome::default();
    if budget == 0 {
        return Ok(outcome);
    }
    // Deterministic victim list: (age, index) is pure simulation state.
    let mut victims: Vec<(PageAge, usize)> = (0..cg.pages.len())
        .filter(|&i| cg.pages.is_zswapped(i))
        .map(|i| (cg.pages.age(i), i))
        .collect();
    outcome.examined = victims.len() as u64;
    match order {
        VictimOrder::OldestFirst => {
            victims.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)))
        }
        VictimOrder::YoungestFirst => victims.sort_unstable(),
    }
    for (_, idx) in victims.into_iter().take(budget as usize) {
        let PageState::Zswapped(handle) = cg.pages.state(idx) else {
            return Err(KernelError::StoreCorrupt {
                detail: "victim left the store mid-pass",
            });
        };
        let size = store.stored_size(handle).ok_or(KernelError::StaleHandle)? as u64;
        // Decompress-and-drop: the load frees the slot; real contents are
        // already mirrored in the page, synthetic ones have none.
        store.load(handle)?;
        cpu.charge_decompress(cost);
        cg.pages.set_state(idx, PageState::Resident);
        if restore_hot {
            // Through set_age, not a raw array write: the page table's
            // live histogram must see the move to HOT.
            cg.pages.set_age(idx, PageAge::HOT);
        }
        cg.stats.zswapped_pages -= 1;
        cg.stats.zswapped_bytes -= size;
        cg.stats.resident_pages += 1;
        cg.stats.writebacks += 1;
        outcome.written_back += 1;
        outcome.bytes_freed += size;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kstaled::scan_memcg;
    use crate::kreclaimd::reclaim_memcg;
    use crate::page::{Page, PageContent};
    use sdfm_compress::codec::CodecKind;
    use sdfm_types::ids::JobId;

    fn compressed_memcg(n: usize) -> (MemCgroup, ZswapStore, CpuAccounting) {
        let mut cg = MemCgroup::new(JobId::new(1), PageCount::new(1 << 20));
        cg.set_zswap_enabled(true);
        for _ in 0..n {
            cg.pages
                .push(Page::new(PageContent::synthetic_of_len(600)));
            cg.stats.resident_pages += 1;
        }
        let mut store = ZswapStore::new(CodecKind::Lzo);
        let mut cpu = CpuAccounting::default();
        for _ in 0..4 {
            scan_memcg(&mut cg);
        }
        reclaim_memcg(
            &mut cg,
            &mut store,
            PageAge::from_scans(2),
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(cg.stats().zswapped_pages, n as u64);
        (cg, store, CpuAccounting::default())
    }

    #[test]
    fn decay_step_is_positive_and_bounded() {
        let p = StorePressure::PAPER_DEFAULT;
        assert_eq!(p.decay_step(0), 0);
        assert_eq!(p.decay_step(1), 1);
        assert_eq!(p.decay_step(1000), 125);
        // The minimum step keeps the geometric tail finite.
        assert_eq!(p.decay_step(7), 1);
        for n in [1u64, 5, 100, 10_000, 1_000_000] {
            assert!(p.decay_step(n) <= n);
            assert!(p.decay_step(n) > 0);
        }
    }

    #[test]
    fn decay_step_survives_saturated_stores() {
        // `resident * 125` wrapped above u64::MAX / 125 in the old
        // formulation; the widened permille_of keeps the step exact and
        // bounded by the store all the way to u64::MAX.
        let p = StorePressure::PAPER_DEFAULT;
        assert_eq!(p.decay_step(u64::MAX), u64::MAX / 8);
    }

    #[test]
    fn every_store_drains_to_zero_in_finite_windows() {
        let p = StorePressure::PAPER_DEFAULT;
        for n in [1u64, 9, 1_000, 250_000] {
            let w = p.windows_to_drain(n);
            assert!(w > 0);
            // Geometric phase ~ log(n)/log(8/7), then a short linear tail.
            assert!(w < 200, "{n} pages took {w} windows");
            let mut resident = n;
            for _ in 0..w {
                resident = p.store_after_window(resident);
            }
            assert_eq!(resident, 0);
        }
    }

    #[test]
    fn coldest_first_writeback_targets_lru_and_charges_cpu() {
        let (mut cg, mut store, mut cpu) = compressed_memcg(10);
        // Ages currently uniform; make page 3 the coldest.
        cg.pages.set_age(3, PageAge::from_scans(50));
        let o = writeback_coldest(
            &mut cg,
            &mut store,
            1,
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.written_back, 1);
        assert_eq!(o.examined, 10);
        assert!(o.bytes_freed > 0);
        assert_eq!(cg.pages.state(3), PageState::Resident);
        // Store decay keeps the age: a re-enable recompresses the page.
        assert_eq!(cg.pages.age(3), PageAge::from_scans(50));
        assert_eq!(cg.stats().zswapped_pages, 9);
        assert_eq!(cg.stats().resident_pages, 1);
        assert_eq!(cg.stats().writebacks, 1);
        assert_eq!(cpu.decompress_events, 1);
        assert!(cpu.decompress_ns > 0);
    }

    #[test]
    fn youngest_first_writeback_restores_working_set_hot() {
        let (mut cg, mut store, mut cpu) = compressed_memcg(6);
        cg.pages.set_age(2, PageAge::from_scans(1)); // the youngest
        let o = writeback_youngest(
            &mut cg,
            &mut store,
            1,
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.written_back, 1);
        assert_eq!(cg.pages.state(2), PageState::Resident);
        assert_eq!(
            cg.pages.age(2),
            PageAge::HOT,
            "restored working-set pages must not re-reclaim immediately"
        );
    }

    #[test]
    fn budget_zero_is_a_no_op() {
        let (mut cg, mut store, mut cpu) = compressed_memcg(4);
        let o = writeback_coldest(
            &mut cg,
            &mut store,
            0,
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o, WritebackOutcome::default());
        assert_eq!(cg.stats().zswapped_pages, 4);
    }

    #[test]
    fn over_budget_drains_everything_once() {
        let (mut cg, mut store, mut cpu) = compressed_memcg(5);
        let o = writeback_coldest(
            &mut cg,
            &mut store,
            1_000,
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.written_back, 5);
        assert_eq!(cg.stats().zswapped_pages, 0);
        assert_eq!(store.resident_objects(), 0);
        assert_eq!(cpu.decompress_events, 5);
    }

    #[test]
    fn demotion_moves_lru_victims_down_the_chain() {
        use crate::backend::BackendConfig;
        let (mut cg, mut store, mut cpu) = compressed_memcg(10);
        let mut chain = DemotionChain::from_configs(&[
            BackendConfig::compressed_ram(),
            BackendConfig::ssd(PageCount::new(3)),
            BackendConfig::remote(),
        ]);
        let o = demote_coldest(
            &mut cg,
            &mut store,
            &mut chain,
            5,
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.demoted, 5);
        assert_eq!(o.examined, 10);
        assert_eq!(o.rejected, 0);
        assert!(o.bytes_freed > 0);
        // 3 landed on the SSD, the overflow went remote.
        assert_eq!(cg.stats().demoted_pages[1], 3);
        assert_eq!(cg.stats().demoted_pages[2], 2);
        assert_eq!(cg.stats().demotions, 5);
        assert_eq!(cg.stats().zswapped_pages, 5);
        let stats = chain.stats();
        assert_eq!(stats[1].resident_pages, 3);
        assert_eq!(stats[2].resident_pages, 2);
        // Every move decompressed once and charged the backend op.
        assert_eq!(cpu.decompress_events, 5);
        assert_eq!(cpu.tier_io_events, 5);
        assert_eq!(cpu.tier_io_ns, chain.total_ns_charged());
    }

    #[test]
    fn full_ladder_leaves_victims_compressed_and_counts_rejection() {
        use crate::backend::BackendConfig;
        let (mut cg, mut store, mut cpu) = compressed_memcg(4);
        let mut chain = DemotionChain::from_configs(&[
            BackendConfig::compressed_ram(),
            BackendConfig::ssd(PageCount::new(1)),
        ]);
        let o = demote_coldest(
            &mut cg,
            &mut store,
            &mut chain,
            3,
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.demoted, 1);
        assert_eq!(o.rejected, 1, "pass stops at the first full ladder");
        assert_eq!(cg.stats().zswapped_pages, 3);
        assert_eq!(chain.stats()[1].full_rejections, 1);
        assert_eq!(store.resident_objects(), 3, "rejected victims stay stored");
    }

    #[test]
    fn demotion_is_a_noop_without_a_tier_below_compressed() {
        use crate::backend::BackendConfig;
        let (mut cg, mut store, mut cpu) = compressed_memcg(4);
        let mut chain = DemotionChain::from_configs(&[
            BackendConfig::ssd(PageCount::new(8)),
            BackendConfig::compressed_ram(),
        ]);
        let o = demote_coldest(
            &mut cg,
            &mut store,
            &mut chain,
            10,
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o, DemotionOutcome::default());
        assert_eq!(cg.stats().zswapped_pages, 4);
    }

    #[test]
    fn outcome_merge_sums() {
        let mut a = WritebackOutcome {
            written_back: 1,
            examined: 2,
            bytes_freed: 3,
        };
        a.merge(WritebackOutcome {
            written_back: 10,
            examined: 20,
            bytes_freed: 30,
        });
        assert_eq!(a.written_back, 11);
        assert_eq!(a.examined, 22);
        assert_eq!(a.bytes_freed, 33);
    }
}
