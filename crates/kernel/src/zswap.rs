//! The zswap store: compressed far memory backed by the zsmalloc arena.
//!
//! One store exists per machine (the paper found per-memcg arenas fragment
//! badly, §5.1). Pages enter through [`ZswapStore::store`] — which applies
//! the 2990-byte incompressible cutoff — and leave through
//! [`ZswapStore::load`] on access (promotion) or [`ZswapStore::discard`]
//! when the owning job exits.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::KernelError;
use crate::page::PageContent;
use sdfm_compress::codec::{CodecKind, PageCodec};
use sdfm_compress::page::MAX_COMPRESSED_PAYLOAD;
use sdfm_compress::zsmalloc::{ZsHandle, ZsmallocArena, ZsmallocStats};
use sdfm_types::size::{PageCount, PAGE_SIZE};

/// The result of offering a page to the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The page was compressed and stored under this handle.
    Stored(ZsHandle),
    /// The payload would exceed the cutoff; the caller must mark the page
    /// incompressible (§5.1).
    Rejected {
        /// The payload size that was rejected.
        would_be_len: usize,
    },
}

/// Cumulative store counters (monotone; the agent takes deltas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ZswapStats {
    /// Pages offered to the store.
    pub store_attempts: u64,
    /// Pages accepted and compressed.
    pub stores: u64,
    /// Pages rejected as incompressible.
    pub rejections: u64,
    /// Pages decompressed back out on access.
    pub loads: u64,
    /// Sum of stored payload bytes (across all stores ever).
    pub bytes_stored: u64,
}

/// The per-machine compressed store.
#[derive(Debug)]
pub struct ZswapStore {
    codec: Box<dyn PageCodec>,
    arena: ZsmallocArena,
    stats: ZswapStats,
    scratch: Vec<u8>,
}

impl ZswapStore {
    /// Creates a store using the given codec (the paper deploys lzo).
    pub fn new(kind: CodecKind) -> Self {
        ZswapStore {
            codec: kind.build(),
            arena: ZsmallocArena::new(),
            stats: ZswapStats::default(),
            scratch: Vec::with_capacity(PAGE_SIZE + PAGE_SIZE.div_ceil(8)),
        }
    }

    /// The codec in use.
    pub fn codec_kind(&self) -> CodecKind {
        self.codec.kind()
    }

    /// Attempts to store a page. Real content is actually compressed;
    /// synthetic content uses its pre-sampled payload length.
    ///
    /// # Errors
    ///
    /// [`KernelError::StoreCorrupt`] when a payload under the cutoff fails
    /// to fit the arena — the store's own bookkeeping is inconsistent.
    pub fn store(&mut self, content: &PageContent) -> Result<StoreOutcome, KernelError> {
        self.stats.store_attempts += 1;
        let outcome = match content {
            PageContent::Real(bytes) => {
                debug_assert_eq!(bytes.len(), PAGE_SIZE, "zswap stores whole pages");
                self.codec.compress(bytes, &mut self.scratch);
                if self.scratch.len() > MAX_COMPRESSED_PAYLOAD {
                    StoreOutcome::Rejected {
                        would_be_len: self.scratch.len(),
                    }
                } else {
                    let handle = self
                        .arena
                        .alloc(Bytes::copy_from_slice(&self.scratch))
                        .map_err(|_| KernelError::StoreCorrupt {
                            detail: "compressed payload under the cutoff did not fit the arena",
                        })?;
                    StoreOutcome::Stored(handle)
                }
            }
            PageContent::Synthetic { payload_len, .. } => {
                let len = *payload_len as usize;
                if len > MAX_COMPRESSED_PAYLOAD {
                    StoreOutcome::Rejected { would_be_len: len }
                } else {
                    let handle = self.arena.alloc_uninit(len.max(1)).map_err(|_| {
                        KernelError::StoreCorrupt {
                            detail: "synthetic payload under the cutoff did not fit the arena",
                        }
                    })?;
                    StoreOutcome::Stored(handle)
                }
            }
        };
        match outcome {
            StoreOutcome::Stored(h) => {
                self.stats.stores += 1;
                self.stats.bytes_stored +=
                    self.arena
                        .size_of(h)
                        .ok_or(KernelError::StoreCorrupt {
                            detail: "freshly stored handle has no size",
                        })? as u64;
            }
            StoreOutcome::Rejected { .. } => self.stats.rejections += 1,
        }
        Ok(outcome)
    }

    /// Promotes a page out of the store: decompresses real payloads and
    /// frees the slot. Returns the decompressed bytes for real content,
    /// `None` for synthetic.
    ///
    /// # Errors
    ///
    /// [`KernelError::StaleHandle`] if `handle` does not resolve (the
    /// kernel owns every live handle, so the store and the page tables
    /// disagree); [`KernelError::StoreCorrupt`] if a stored payload fails
    /// to decompress (the store wrote it itself).
    pub fn load(&mut self, handle: ZsHandle) -> Result<Option<Bytes>, KernelError> {
        self.stats.loads += 1;
        let payload = self.arena.get(handle).ok_or(KernelError::StaleHandle)?;
        let out = if payload.is_empty() {
            None
        } else {
            let mut buf = Vec::with_capacity(PAGE_SIZE);
            self.codec
                .decompress(payload, &mut buf)
                .map_err(|_| KernelError::StoreCorrupt {
                    detail: "stored payload did not round-trip through the codec",
                })?;
            Some(Bytes::from(buf))
        };
        self.arena
            .free(handle)
            .map_err(|_| KernelError::StaleHandle)?;
        Ok(out)
    }

    /// Drops a stored page without decompressing (job exit, page free).
    ///
    /// # Errors
    ///
    /// [`KernelError::StaleHandle`] — see [`ZswapStore::load`].
    pub fn discard(&mut self, handle: ZsHandle) -> Result<(), KernelError> {
        self.arena
            .free(handle)
            .map_err(|_| KernelError::StaleHandle)
    }

    /// Payload size stored under `handle`.
    pub fn stored_size(&self, handle: ZsHandle) -> Option<usize> {
        self.arena.size_of(handle)
    }

    /// Runs zsmalloc compaction (node-agent triggered, §5.1); returns the
    /// physical pages reclaimed.
    pub fn compact(&mut self) -> PageCount {
        self.arena.compact()
    }

    /// Cumulative event counters.
    pub fn stats(&self) -> ZswapStats {
        self.stats
    }

    /// Current arena occupancy/fragmentation.
    pub fn arena_stats(&self) -> ZsmallocStats {
        self.arena.stats()
    }

    /// Physical DRAM pages the compressed pool occupies right now.
    pub fn footprint_pages(&self) -> PageCount {
        PageCount::new(self.arena.stats().zspage_pages)
    }

    /// Live compressed pages.
    pub fn resident_objects(&self) -> u64 {
        self.arena.stats().objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfm_compress::gen::{PageClass, PageGenerator};

    #[test]
    fn store_and_load_real_content() {
        let mut store = ZswapStore::new(CodecKind::Lzo);
        let mut g = PageGenerator::new(1);
        let page = Bytes::from(g.generate(PageClass::Text));
        let content = PageContent::Real(page.clone());
        match store.store(&content).unwrap() {
            StoreOutcome::Stored(h) => {
                assert!(store.stored_size(h).unwrap() <= MAX_COMPRESSED_PAYLOAD);
                let back = store
                    .load(h)
                    .unwrap()
                    .expect("real content returns bytes");
                assert_eq!(back, page);
            }
            StoreOutcome::Rejected { .. } => panic!("text page must store"),
        }
        let s = store.stats();
        assert_eq!(
            (s.store_attempts, s.stores, s.loads, s.rejections),
            (1, 1, 1, 0)
        );
        assert_eq!(store.resident_objects(), 0);
    }

    #[test]
    fn incompressible_real_content_rejected() {
        let mut store = ZswapStore::new(CodecKind::Lzo);
        let mut g = PageGenerator::new(2);
        let page = PageContent::Real(Bytes::from(g.generate(PageClass::Encrypted)));
        match store.store(&page).unwrap() {
            StoreOutcome::Rejected { would_be_len } => {
                assert!(would_be_len > MAX_COMPRESSED_PAYLOAD)
            }
            StoreOutcome::Stored(_) => panic!("encrypted page must reject"),
        }
        assert_eq!(store.stats().rejections, 1);
        assert_eq!(store.footprint_pages().get(), 0);
    }

    #[test]
    fn synthetic_content_respects_cutoff() {
        let mut store = ZswapStore::new(CodecKind::Lzo);
        assert!(matches!(
            store.store(&PageContent::synthetic_of_len(2990)).unwrap(),
            StoreOutcome::Stored(_)
        ));
        assert!(matches!(
            store.store(&PageContent::synthetic_of_len(2991)).unwrap(),
            StoreOutcome::Rejected { would_be_len: 2991 }
        ));
    }

    /// Pins the §5.1 cutoff boundary for synthetic content: the cutoff is
    /// *inclusive* — a payload of exactly [`MAX_COMPRESSED_PAYLOAD`]
    /// (2990 bytes, 73% of a 4 KiB page) still stores; rejection starts
    /// one byte above.
    #[test]
    fn synthetic_cutoff_boundary_2989_2990_2991() {
        assert_eq!(MAX_COMPRESSED_PAYLOAD, 2990, "§5.1 cutoff moved");
        let mut store = ZswapStore::new(CodecKind::Lzo);
        for (len, stored) in [(2989usize, true), (2990, true), (2991, false)] {
            let outcome = store.store(&PageContent::synthetic_of_len(len)).unwrap();
            match outcome {
                StoreOutcome::Stored(h) => {
                    assert!(stored, "synthetic {len} must reject");
                    assert_eq!(store.stored_size(h), Some(len));
                }
                StoreOutcome::Rejected { would_be_len } => {
                    assert!(!stored, "synthetic {len} must store");
                    assert_eq!(would_be_len, len);
                }
            }
        }
        let s = store.stats();
        assert_eq!((s.store_attempts, s.stores, s.rejections), (3, 2, 1));
    }

    /// Builds a real 4 KiB page whose LZO payload is exactly `target`
    /// bytes: an incompressible random prefix of `k` bytes followed by
    /// zeros. The payload length is (weakly) monotone in `k` and steps by
    /// 1–2 bytes, so scanning `k` (over a few seeds, in case a 2-byte step
    /// lands on `target`) finds an exact hit.
    fn real_page_with_payload_len(target: usize) -> Bytes {
        let codec = CodecKind::Lzo.build();
        let mut buf = Vec::new();
        for seed in 0..8u64 {
            let mut g = PageGenerator::new(0xB0DA + seed);
            let noise = g.generate(PageClass::Encrypted);
            // A first probe brackets the k range; then walk it linearly.
            for k in 2500..=3100usize {
                let mut page = vec![0u8; PAGE_SIZE];
                page[..k].copy_from_slice(&noise[..k]);
                codec.compress(&page, &mut buf);
                match buf.len().cmp(&target) {
                    std::cmp::Ordering::Equal => return Bytes::from(page),
                    std::cmp::Ordering::Greater => break, // monotone: overshot
                    std::cmp::Ordering::Less => {}
                }
            }
        }
        panic!("no page found with payload length {target}");
    }

    /// Pins the §5.1 cutoff boundary for *real* content, with the real
    /// codec in the loop: exactly-2990 stores, 2991 rejects and reports
    /// the offending length.
    #[test]
    fn real_cutoff_boundary_2989_2990_2991() {
        let mut store = ZswapStore::new(CodecKind::Lzo);
        for (target, stored) in [(2989usize, true), (2990, true), (2991, false)] {
            let page = real_page_with_payload_len(target);
            match store.store(&PageContent::Real(page)).unwrap() {
                StoreOutcome::Stored(h) => {
                    assert!(stored, "real payload {target} must reject");
                    assert_eq!(store.stored_size(h), Some(target));
                    // Boundary payloads round-trip like any other.
                    let back = store.load(h).unwrap().expect("real content");
                    assert_eq!(back.len(), PAGE_SIZE);
                }
                StoreOutcome::Rejected { would_be_len } => {
                    assert!(!stored, "real payload {target} must store");
                    assert_eq!(would_be_len, target);
                }
            }
        }
        let s = store.stats();
        assert_eq!((s.stores, s.rejections), (2, 1));
    }

    #[test]
    fn synthetic_load_returns_none_and_frees() {
        let mut store = ZswapStore::new(CodecKind::Lzo);
        let h = match store.store(&PageContent::synthetic_of_len(700)).unwrap() {
            StoreOutcome::Stored(h) => h,
            _ => unreachable!(),
        };
        assert_eq!(store.resident_objects(), 1);
        assert!(store.load(h).unwrap().is_none());
        assert_eq!(store.resident_objects(), 0);
    }

    #[test]
    fn discard_frees_without_counting_a_load() {
        let mut store = ZswapStore::new(CodecKind::Lzo);
        let h = match store.store(&PageContent::synthetic_of_len(700)).unwrap() {
            StoreOutcome::Stored(h) => h,
            _ => unreachable!(),
        };
        store.discard(h).unwrap();
        assert_eq!(store.stats().loads, 0);
        assert_eq!(store.resident_objects(), 0);
        assert_eq!(store.discard(h), Err(KernelError::StaleHandle));
        assert_eq!(store.load(h), Err(KernelError::StaleHandle));
    }

    #[test]
    fn footprint_grows_with_stores_and_compacts() {
        let mut store = ZswapStore::new(CodecKind::Lzo);
        let handles: Vec<_> = (0..256)
            .map(
                |_| match store.store(&PageContent::synthetic_of_len(512)).unwrap() {
                    StoreOutcome::Stored(h) => h,
                    _ => unreachable!(),
                },
            )
            .collect();
        let full = store.footprint_pages();
        assert!(full.get() > 0);
        for (i, h) in handles.iter().enumerate() {
            if i % 8 != 0 {
                store.discard(*h).unwrap();
            }
        }
        store.compact();
        assert!(store.footprint_pages() < full);
    }
}
