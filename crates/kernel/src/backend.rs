//! Pluggable far-memory backends and the demotion chain (§8).
//!
//! The paper's end state is "multiple tiers of far memory (sub-µs tier-1
//! and single-µs tier-2), all managed intelligently". PR 5's writeback
//! still meant "decompress back to DRAM or discard"; this module gives
//! cold compressed pages somewhere *slower* to go instead: a
//! [`DemotionChain`] of [`FarBackend`] tiers ordered warmest → coldest.
//!
//! Three deterministic backend implementations ship with the kernel:
//!
//! * [`CompressedRamBackend`] — today's zswap store as the identity
//!   backend: elastic capacity, no transfer cost. Inside a [`Kernel`]
//!   chain this tier is *positional* — the real pages live in the
//!   [`ZswapStore`](crate::ZswapStore) as `PageState::Zswapped` and their
//!   CPU costs are charged through [`CostModel`](crate::CostModel); the
//!   backend's own counters are exercised directly by the `backends`
//!   bench.
//! * [`SsdBackend`] — queue-depth-limited bandwidth, per-op latency,
//!   **finite capacity** (the §2.1 stranding risk).
//! * [`RemoteBackend`] — higher latency, unbounded capacity, per-byte
//!   transfer cost accounted for TCO.
//!
//! Every backend is a pure integer state machine: page movements are
//! tracked by count, per-op costs derive from the [`BackendConfig`] with
//! `div_ceil` arithmetic, and no wall clock or RNG is involved — the D1/D2
//! determinism contract holds, so fleet runs are bit-identical at any
//! thread count.
//!
//! [`Kernel`]: crate::Kernel

use serde::{Deserialize, Serialize};

use sdfm_types::arith::div_ceil_u64;
use sdfm_types::size::{PageCount, PAGE_SIZE};

/// Upper bound on chain length; per-tier stat arrays are sized by this so
/// they stay `Copy` and serializable without allocation.
pub const MAX_TIERS: usize = 4;

/// The three shipped backend families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// Compressed RAM (zswap): the identity backend — pages stay in DRAM,
    /// just smaller.
    CompressedRam,
    /// A simulated local SSD / NVM-class device: finite capacity, per-op
    /// latency, queue-depth-limited bandwidth.
    SimulatedSsd,
    /// A simulated remote-memory tier: unbounded capacity, higher latency,
    /// per-byte transfer cost.
    SimulatedRemote,
}

impl BackendKind {
    /// Short stable name used in reports and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::CompressedRam => "compressed_ram",
            BackendKind::SimulatedSsd => "simulated_ssd",
            BackendKind::SimulatedRemote => "simulated_remote",
        }
    }
}

/// Deterministic cost/capacity parameters for one backend tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendConfig {
    /// Which backend family this configures.
    pub kind: BackendKind,
    /// Device capacity in pages. `PageCount::new(u64::MAX)` means
    /// unbounded (compressed RAM's elastic arena, the remote pool).
    pub capacity: PageCount,
    /// Per-operation load (fault-back) latency in nanoseconds, excluding
    /// transfer time.
    pub load_ns: u64,
    /// Per-operation store (demotion) latency in nanoseconds, excluding
    /// transfer time.
    pub store_ns: u64,
    /// Device bandwidth in bytes per microsecond (`0` = infinite, e.g.
    /// RAM-resident tiers). One 4 KiB page at 2000 B/µs adds ~2 µs of
    /// transfer time per op.
    pub bandwidth_bytes_per_us: u64,
    /// Operations the device pipelines concurrently; latency amortizes
    /// across the queue but transfer bandwidth does not.
    pub queue_depth: u32,
    /// Dollar cost of moving one byte over the tier's interconnect, in
    /// nano-cents (10⁻⁹ ¢). Zero for local tiers; the remote tier's
    /// per-byte cost feeds the TCO model.
    pub cost_nanocents_per_byte: u64,
}

impl BackendConfig {
    /// Sentinel capacity for unbounded tiers.
    pub const UNBOUNDED: PageCount = PageCount::new(u64::MAX);

    /// The compressed-RAM identity backend. Latencies mirror the paper's
    /// measured zswap costs (§6.3): ~10 µs compress, ~6.4 µs decompress.
    pub fn compressed_ram() -> Self {
        BackendConfig {
            kind: BackendKind::CompressedRam,
            capacity: Self::UNBOUNDED,
            load_ns: 6_400,
            store_ns: 10_000,
            bandwidth_bytes_per_us: 0,
            queue_depth: 1,
            cost_nanocents_per_byte: 0,
        }
    }

    /// A plausible datacenter NVMe SSD tier: tens-of-µs latency class,
    /// ~2 GB/s of device bandwidth shared across a queue depth of 8, and
    /// a hard capacity.
    pub fn ssd(capacity: PageCount) -> Self {
        BackendConfig {
            kind: BackendKind::SimulatedSsd,
            capacity,
            load_ns: 20_000,
            store_ns: 30_000,
            bandwidth_bytes_per_us: 2_000,
            queue_depth: 8,
            cost_nanocents_per_byte: 0,
        }
    }

    /// A remote-memory tier: ~100 µs round trips, unbounded pool behind
    /// the fabric, and a per-byte transfer cost that the TCO model charges
    /// against the DRAM it displaces.
    pub fn remote() -> Self {
        BackendConfig {
            kind: BackendKind::SimulatedRemote,
            capacity: Self::UNBOUNDED,
            load_ns: 100_000,
            store_ns: 100_000,
            bandwidth_bytes_per_us: 1_000,
            queue_depth: 16,
            cost_nanocents_per_byte: 2,
        }
    }

    /// Whether the configured capacity is the unbounded sentinel.
    pub fn is_unbounded(&self) -> bool {
        self.capacity == Self::UNBOUNDED
    }

    /// Nanoseconds to move one 4 KiB page across the tier's interconnect
    /// (`0` when bandwidth is infinite).
    pub fn transfer_ns(&self) -> u64 {
        if self.bandwidth_bytes_per_us == 0 {
            return 0;
        }
        // bytes / (bytes/µs) µs → ns; ceil so a slow link never rounds to
        // free.
        div_ceil_u64(PAGE_SIZE as u64 * 1_000, self.bandwidth_bytes_per_us)
    }

    /// Full fault-back latency for one page: device load plus transfer.
    pub fn fault_ns(&self) -> u64 {
        self.load_ns + self.transfer_ns()
    }

    /// Full demotion latency for one page: device store plus transfer.
    pub fn store_op_ns(&self) -> u64 {
        self.store_ns + self.transfer_ns()
    }

    /// Throughput charge per operation: with `queue_depth` ops in flight
    /// the per-op *latency* pipelines, but transfer bandwidth is a shared
    /// resource — the device cannot stream pages faster than the link.
    pub fn occupancy_ns(&self) -> u64 {
        let pipelined_ns = div_ceil_u64(self.fault_ns(), self.queue_depth.max(1) as u64);
        self.transfer_ns().max(pipelined_ns)
    }

    /// Deterministic fault latency for the op at `queue_position`: the
    /// first op in a queue burst sees the raw fault latency, later ops
    /// queue behind one occupancy slot each. Gives the bench a latency
    /// *distribution* without an RNG.
    pub fn queued_fault_ns(&self, queue_position: u64) -> u64 {
        let pos = queue_position % self.queue_depth.max(1) as u64;
        self.fault_ns() + pos * self.occupancy_ns()
    }

    /// Builds the backend this config describes.
    pub fn build(&self) -> Box<dyn FarBackend + Send> {
        match self.kind {
            BackendKind::CompressedRam => Box::new(CompressedRamBackend::new(*self)),
            BackendKind::SimulatedSsd => Box::new(SsdBackend::new(*self)),
            BackendKind::SimulatedRemote => Box::new(RemoteBackend::new(*self)),
        }
    }
}

/// Cumulative counters for one backend tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BackendStats {
    /// Pages currently stored in the tier.
    pub resident_pages: u64,
    /// Demotions accepted into the tier.
    pub stores: u64,
    /// Fault-backs out of the tier.
    pub loads: u64,
    /// Pages dropped without a fault (job exit, demotion further down).
    pub discards: u64,
    /// Demotions refused because the tier was full (stranding events).
    pub full_rejections: u64,
    /// Nanoseconds charged to the tier's traffic (stores + loads,
    /// including transfer time).
    pub ns_charged: u64,
    /// Bytes moved over the tier's interconnect (stores + loads).
    pub bytes_transferred: u64,
}

/// Statistical demotion policy for the fast models (the fleet simulator
/// and trace replay), mirroring the page-level chain without per-page
/// state: a [`StorePressure`]-shaped decay moves a job's coldest stored
/// pages down the chain each window, each job may park at most
/// `ssd_quota_pages` on the finite SSD tier before overflowing to the
/// remote tier, and the two [`BackendConfig`]s price the traffic for the
/// CPU/TCO ledgers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainPolicy {
    /// How many of a job's stored pages demote per window (reusing the
    /// store-lifecycle decay arithmetic).
    pub demote: crate::writeback::StorePressure,
    /// Per-job SSD residency cap, in pages; excess lands on remote.
    pub ssd_quota_pages: u64,
    /// The SSD tier's latency/bandwidth parameters.
    pub ssd: BackendConfig,
    /// The remote tier's latency/cost parameters.
    pub remote: BackendConfig,
}

impl ChainPolicy {
    /// The default three-tier policy: paper-default decay, the shipped
    /// SSD/remote parameters, and the given per-job SSD quota.
    pub fn paper_default(ssd_quota_pages: u64) -> Self {
        ChainPolicy {
            demote: crate::writeback::StorePressure::PAPER_DEFAULT,
            ssd_quota_pages,
            ssd: BackendConfig::ssd(PageCount::new(ssd_quota_pages)),
            remote: BackendConfig::remote(),
        }
    }
}

/// One pluggable far-memory tier.
///
/// Backends track pages **by count** — the kernel owns per-page state
/// ([`crate::PageState::Demoted`] carries the chain index). All methods
/// are deterministic integer updates.
pub trait FarBackend: std::fmt::Debug {
    /// The backend family.
    fn kind(&self) -> BackendKind;

    /// The configuration the backend was built with.
    fn config(&self) -> BackendConfig;

    /// Cumulative counters.
    fn stats(&self) -> BackendStats;

    /// Free capacity in pages (unbounded tiers report the sentinel gap).
    fn free(&self) -> PageCount;

    /// Whether a store would be accepted right now.
    fn has_room(&self) -> bool;

    /// Attempts to store one page. Returns the nanoseconds charged, or
    /// `None` when the tier is full (counted in
    /// [`BackendStats::full_rejections`]).
    fn store_page(&mut self) -> Option<u64>;

    /// Loads (removes) one page on fault-back; returns the nanoseconds
    /// charged.
    ///
    /// # Panics
    ///
    /// Panics if the tier is empty — the kernel only loads pages it
    /// stored (a caller bug, not a machine state).
    fn load_page(&mut self) -> u64;

    /// Drops one page without a fault (job exit / demotion down-chain).
    ///
    /// # Panics
    ///
    /// Panics if the tier is empty.
    fn discard_page(&mut self);

    /// Records that demand existed while the tier was full, without an
    /// actual store attempt (callers gate attempts and report stranding
    /// once per reclaim pass).
    fn record_stranding(&mut self);
}

/// Shared count-based device state: every shipped backend is this integer
/// machine parameterized by its config.
#[derive(Debug, Clone)]
struct DeviceCore {
    config: BackendConfig,
    stats: BackendStats,
}

impl DeviceCore {
    fn new(config: BackendConfig) -> Self {
        DeviceCore {
            config,
            stats: BackendStats::default(),
        }
    }

    fn free(&self) -> PageCount {
        self.config
            .capacity
            .saturating_sub(PageCount::new(self.stats.resident_pages))
    }

    fn has_room(&self) -> bool {
        self.stats.resident_pages < self.config.capacity.get()
    }

    fn store_page(&mut self) -> Option<u64> {
        if !self.has_room() {
            self.stats.full_rejections += 1;
            return None;
        }
        let ns = self.config.store_op_ns();
        self.stats.resident_pages += 1;
        self.stats.stores += 1;
        self.stats.ns_charged += ns;
        self.stats.bytes_transferred += PAGE_SIZE as u64;
        Some(ns)
    }

    fn load_page(&mut self) -> u64 {
        assert!(
            self.stats.resident_pages > 0,
            "far-backend load from empty device"
        );
        let ns = self.config.fault_ns();
        self.stats.resident_pages -= 1;
        self.stats.loads += 1;
        self.stats.ns_charged += ns;
        self.stats.bytes_transferred += PAGE_SIZE as u64;
        ns
    }

    fn discard_page(&mut self) {
        assert!(
            self.stats.resident_pages > 0,
            "far-backend discard from empty device"
        );
        self.stats.resident_pages -= 1;
        self.stats.discards += 1;
    }
}

macro_rules! delegate_backend {
    ($ty:ident, $kind:expr) => {
        impl $ty {
            /// Builds the backend from its config (the `kind` field is
            /// overridden to this backend's family).
            pub fn new(mut config: BackendConfig) -> Self {
                config.kind = $kind;
                $ty(DeviceCore::new(config))
            }
        }

        impl FarBackend for $ty {
            fn kind(&self) -> BackendKind {
                $kind
            }
            fn config(&self) -> BackendConfig {
                self.0.config
            }
            fn stats(&self) -> BackendStats {
                self.0.stats
            }
            fn free(&self) -> PageCount {
                self.0.free()
            }
            fn has_room(&self) -> bool {
                self.0.has_room()
            }
            fn store_page(&mut self) -> Option<u64> {
                self.0.store_page()
            }
            fn load_page(&mut self) -> u64 {
                self.0.load_page()
            }
            fn discard_page(&mut self) {
                self.0.discard_page()
            }
            fn record_stranding(&mut self) {
                self.0.stats.full_rejections += 1;
            }
        }
    };
}

/// The identity backend: compressed RAM (zswap).
#[derive(Debug, Clone)]
pub struct CompressedRamBackend(DeviceCore);
delegate_backend!(CompressedRamBackend, BackendKind::CompressedRam);

/// The simulated SSD tier: finite capacity, queue-depth-limited bandwidth.
#[derive(Debug, Clone)]
pub struct SsdBackend(DeviceCore);
delegate_backend!(SsdBackend, BackendKind::SimulatedSsd);

/// The simulated remote-memory tier: unbounded, slow, charged per byte.
#[derive(Debug, Clone)]
pub struct RemoteBackend(DeviceCore);
delegate_backend!(RemoteBackend, BackendKind::SimulatedRemote);

/// An ordered ladder of far-memory tiers, warmest first.
///
/// The chain generalizes the old hard-coded `Tier1Store` ladder: the
/// two-tier configuration is `[ssd-like device, compressed RAM]` (the
/// device is *warmer* than zswap, as in the original §8 sketch), the
/// three-tier configuration is `[compressed RAM, SSD, remote]` (each tier
/// colder and cheaper than the last). A full tier overflows demotions to
/// the next tier down; the rejection is counted on the full tier.
#[derive(Debug)]
pub struct DemotionChain {
    tiers: Vec<Box<dyn FarBackend + Send>>,
}

impl DemotionChain {
    /// Builds a chain from per-tier configs, warmest first.
    ///
    /// # Panics
    ///
    /// Panics when more than [`MAX_TIERS`] configs are given or the list
    /// is empty (a construction-time caller bug).
    pub fn from_configs(configs: &[BackendConfig]) -> Self {
        assert!(
            !configs.is_empty() && configs.len() <= MAX_TIERS,
            "demotion chain must have 1..=MAX_TIERS tiers"
        );
        DemotionChain {
            tiers: configs.iter().map(|c| c.build()).collect(),
        }
    }

    /// Number of tiers.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// Whether the chain has no tiers (never true for a built chain).
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// The tier at `index`.
    pub fn tier(&self, index: usize) -> Option<&(dyn FarBackend + Send + 'static)> {
        self.tiers.get(index).map(|t| t.as_ref())
    }

    /// Mutable access to the tier at `index`.
    pub fn tier_mut(&mut self, index: usize) -> Option<&mut (dyn FarBackend + Send + 'static)> {
        self.tiers.get_mut(index).map(|t| t.as_mut())
    }

    /// Per-tier configs, in chain order.
    pub fn configs(&self) -> Vec<BackendConfig> {
        self.tiers.iter().map(|t| t.config()).collect()
    }

    /// Per-tier counters, in chain order.
    pub fn stats(&self) -> Vec<BackendStats> {
        self.tiers.iter().map(|t| t.stats()).collect()
    }

    /// Index of the compressed-RAM tier, if the chain has one.
    pub fn compressed_index(&self) -> Option<usize> {
        self.tiers
            .iter()
            .position(|t| t.kind() == BackendKind::CompressedRam)
    }

    /// Index of the first *device* tier (anything that is not compressed
    /// RAM) — the tier the two-tier compat surface calls "tier-1".
    pub fn first_device_index(&self) -> Option<usize> {
        self.tiers
            .iter()
            .position(|t| t.kind() != BackendKind::CompressedRam)
    }

    /// The first device tier *warmer* than (before) the compressed-RAM
    /// tier — the §8 "tier-1" that tiered reclaim demotes warm-cold DRAM
    /// pages into. For an all-device chain the first tier qualifies;
    /// `None` when every device sits below compressed RAM.
    pub fn warm_device_index(&self) -> Option<usize> {
        let first = self.first_device_index()?;
        match self.compressed_index() {
            Some(c) if first > c => None,
            _ => Some(first),
        }
    }

    /// The first device tier strictly below the compressed-RAM tier —
    /// where zswap victims demote to. `None` when the chain has no
    /// compressed tier or nothing colder than it.
    pub fn device_below_compressed(&self) -> Option<usize> {
        let start = self.compressed_index()? + 1;
        self.tiers[start..]
            .iter()
            .position(|t| t.kind() != BackendKind::CompressedRam)
            .map(|offset| start + offset)
    }

    /// The first device tier at or below `start` with room, checked
    /// without mutating anything. Skips compressed-RAM tiers (those hold
    /// `Zswapped` pages, not `Demoted` ones).
    pub fn accepting_device_from(&self, start: usize) -> Option<usize> {
        (start..self.tiers.len()).find(|&i| {
            self.tiers[i].kind() != BackendKind::CompressedRam && self.tiers[i].has_room()
        })
    }

    /// Stores one page at the first device tier at or below `start`,
    /// overflowing past full tiers (each full tier counts one
    /// `full_rejections`). Returns `(tier_index, ns_charged)` for the
    /// accepting tier, or `None` when every tier from `start` down is
    /// full.
    pub fn store_with_overflow(&mut self, start: usize) -> Option<(usize, u64)> {
        for i in start..self.tiers.len() {
            if self.tiers[i].kind() == BackendKind::CompressedRam {
                continue;
            }
            if let Some(ns) = self.tiers[i].store_page() {
                return Some((i, ns));
            }
        }
        None
    }

    /// Pages resident across all device tiers (compressed-RAM tiers are
    /// positional inside a kernel; their residency is the zswap store's).
    pub fn device_resident_pages(&self) -> u64 {
        self.tiers
            .iter()
            .filter(|t| t.kind() != BackendKind::CompressedRam)
            .map(|t| t.stats().resident_pages)
            .sum()
    }

    /// Total nanoseconds charged across every tier.
    pub fn total_ns_charged(&self) -> u64 {
        self.tiers.iter().map(|t| t.stats().ns_charged).sum()
    }

    /// Total interconnect dollar cost across every tier, in nano-cents
    /// (bytes moved × per-byte price). The remote tier is typically the
    /// only non-zero contributor.
    pub fn transfer_cost_nanocents(&self) -> u64 {
        self.tiers
            .iter()
            .map(|t| t.stats().bytes_transferred * t.config().cost_nanocents_per_byte)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_capacity_is_hard_and_counted() {
        let mut ssd = SsdBackend::new(BackendConfig::ssd(PageCount::new(2)));
        assert!(ssd.store_page().is_some());
        assert!(ssd.store_page().is_some());
        assert!(ssd.store_page().is_none(), "third store must reject");
        assert_eq!(ssd.stats().full_rejections, 1);
        assert_eq!(ssd.free(), PageCount::ZERO);
        assert!(!ssd.has_room());
    }

    #[test]
    fn remote_is_unbounded() {
        let mut remote = RemoteBackend::new(BackendConfig::remote());
        for _ in 0..10_000 {
            assert!(remote.store_page().is_some());
        }
        assert!(remote.has_room());
        assert_eq!(remote.stats().resident_pages, 10_000);
        assert_eq!(remote.stats().full_rejections, 0);
    }

    #[test]
    fn load_and_discard_release_capacity() {
        let mut ssd = SsdBackend::new(BackendConfig::ssd(PageCount::new(4)));
        ssd.store_page();
        ssd.store_page();
        ssd.load_page();
        assert_eq!(ssd.stats().resident_pages, 1);
        assert_eq!(ssd.stats().loads, 1);
        ssd.discard_page();
        assert_eq!(ssd.stats().resident_pages, 0);
        assert_eq!(ssd.stats().discards, 1);
        assert_eq!(ssd.free(), PageCount::new(4));
    }

    #[test]
    fn per_op_costs_are_deterministic_integers() {
        let cfg = BackendConfig::ssd(PageCount::new(100));
        // 4096 B at 2000 B/µs = 2.048 µs → ceil 2048 ns of transfer.
        assert_eq!(cfg.transfer_ns(), 2_048);
        assert_eq!(cfg.fault_ns(), 20_000 + 2_048);
        assert_eq!(cfg.store_op_ns(), 30_000 + 2_048);
        // Queue depth 8 pipelines latency; bandwidth stays the floor.
        assert_eq!(cfg.occupancy_ns(), div_ceil_u64(22_048, 8).max(2_048));
        // Infinite-bandwidth tiers transfer for free.
        assert_eq!(BackendConfig::compressed_ram().transfer_ns(), 0);
    }

    #[test]
    fn queued_fault_latency_is_a_deterministic_distribution() {
        let cfg = BackendConfig::ssd(PageCount::new(100));
        let base = cfg.fault_ns();
        assert_eq!(cfg.queued_fault_ns(0), base);
        assert_eq!(cfg.queued_fault_ns(1), base + cfg.occupancy_ns());
        // Position wraps at the queue depth.
        assert_eq!(cfg.queued_fault_ns(8), base);
        // Two identical configs agree everywhere (pure function).
        for i in 0..64 {
            assert_eq!(cfg.queued_fault_ns(i), cfg.queued_fault_ns(i));
        }
    }

    #[test]
    fn ns_charged_accumulates_store_and_load() {
        let cfg = BackendConfig {
            kind: BackendKind::SimulatedSsd,
            capacity: PageCount::new(10),
            load_ns: 300,
            store_ns: 700,
            bandwidth_bytes_per_us: 0,
            queue_depth: 1,
            cost_nanocents_per_byte: 0,
        };
        let mut dev = SsdBackend::new(cfg);
        dev.store_page();
        dev.load_page();
        assert_eq!(dev.stats().ns_charged, 1_000);
        assert_eq!(dev.stats().bytes_transferred, 2 * PAGE_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "empty device")]
    fn load_from_empty_panics() {
        let mut ssd = SsdBackend::new(BackendConfig::ssd(PageCount::new(1)));
        ssd.load_page();
    }

    #[test]
    fn chain_indices_and_overflow() {
        // Three-tier: compressed RAM, a 2-page SSD, unbounded remote.
        let mut chain = DemotionChain::from_configs(&[
            BackendConfig::compressed_ram(),
            BackendConfig::ssd(PageCount::new(2)),
            BackendConfig::remote(),
        ]);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.compressed_index(), Some(0));
        assert_eq!(chain.first_device_index(), Some(1));
        assert_eq!(chain.device_below_compressed(), Some(1));
        // Overflow: the first two land on the SSD, the rest spill to the
        // remote tier, each spill counting one rejection on the SSD.
        let mut placements = Vec::new();
        for _ in 0..4 {
            let (tier, _ns) = chain.store_with_overflow(1).unwrap();
            placements.push(tier);
        }
        assert_eq!(placements, vec![1, 1, 2, 2]);
        let stats = chain.stats();
        assert_eq!(stats[1].resident_pages, 2);
        assert_eq!(stats[1].full_rejections, 2);
        assert_eq!(stats[2].resident_pages, 2);
        assert_eq!(chain.device_resident_pages(), 4);
        // The remote tier charges per byte; the SSD does not.
        assert_eq!(
            chain.transfer_cost_nanocents(),
            stats[2].bytes_transferred * 2
        );
    }

    #[test]
    fn two_tier_chain_has_no_tier_below_compressed() {
        let chain = DemotionChain::from_configs(&[
            BackendConfig::ssd(PageCount::new(8)),
            BackendConfig::compressed_ram(),
        ]);
        assert_eq!(chain.compressed_index(), Some(1));
        assert_eq!(chain.first_device_index(), Some(0));
        assert_eq!(chain.warm_device_index(), Some(0));
        assert_eq!(chain.device_below_compressed(), None);
    }

    #[test]
    fn three_tier_chain_has_no_warm_device() {
        let chain = DemotionChain::from_configs(&[
            BackendConfig::compressed_ram(),
            BackendConfig::ssd(PageCount::new(8)),
            BackendConfig::remote(),
        ]);
        assert_eq!(chain.warm_device_index(), None);
        // An all-device chain treats its warmest tier as tier-1.
        let all_dev = DemotionChain::from_configs(&[
            BackendConfig::ssd(PageCount::new(8)),
            BackendConfig::remote(),
        ]);
        assert_eq!(all_dev.warm_device_index(), Some(0));
    }

    #[test]
    fn accepting_device_skips_full_and_compressed_tiers() {
        let mut chain = DemotionChain::from_configs(&[
            BackendConfig::compressed_ram(),
            BackendConfig::ssd(PageCount::new(1)),
            BackendConfig::remote(),
        ]);
        assert_eq!(chain.accepting_device_from(1), Some(1));
        chain.store_with_overflow(1);
        assert_eq!(chain.accepting_device_from(1), Some(2));
        assert_eq!(chain.accepting_device_from(0), Some(2));
    }

    #[test]
    #[should_panic(expected = "1..=MAX_TIERS")]
    fn oversized_chain_is_a_caller_bug() {
        let cfgs = vec![BackendConfig::remote(); MAX_TIERS + 1];
        DemotionChain::from_configs(&cfgs);
    }
}
