//! Two-tier compatibility surface over the generalized demotion chain.
//!
//! "An exciting end state would be one where the system uses both hardware
//! and software approaches and multiple tiers of far memory (sub-µs tier-1
//! and single-µs tier-2), all managed intelligently." (§8)
//!
//! The original `Tier1Store` modeled exactly one NVM-like device tier in
//! front of zswap. That hard-coded ladder is now the two-backend special
//! case of [`DemotionChain`](crate::backend::DemotionChain): an NVM/SSD
//! device (warmest) followed by compressed RAM. [`Tier1Config`] and
//! [`Tier1Stats`] remain the stable two-tier vocabulary —
//! [`Kernel::enable_tier1`](crate::Kernel::enable_tier1) builds the
//! equivalent chain and [`Kernel::tier1_stats`](crate::Kernel::tier1_stats)
//! projects the first device tier's [`BackendStats`] back into
//! [`Tier1Stats`].

use serde::{Deserialize, Serialize};

use crate::backend::{BackendConfig, BackendKind, BackendStats};
use sdfm_types::size::PageCount;

/// Configuration for the NVM-like first tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tier1Config {
    /// Device capacity in base-page *frames* — fixed at provisioning
    /// time, unlike zswap's elastic footprint. Frames, not page-table
    /// entries: a huge page is one [`PageTable`](crate::page_table::PageTable)
    /// entry but demotes frame-by-frame after splitting, so device
    /// occupancy is always counted in frames (the same entries-vs-frames
    /// distinction `ScanOutcome` pins for scan counters).
    pub capacity: PageCount,
    /// Load (fault-back) cost in nanoseconds (sub-µs class: ~300 ns).
    pub load_ns: u64,
    /// Store (demotion) cost in nanoseconds.
    pub store_ns: u64,
}

impl Tier1Config {
    /// A plausible Optane-DIMM-like device: sub-µs loads.
    pub fn nvm_like(capacity: PageCount) -> Self {
        Tier1Config {
            capacity,
            load_ns: 300,
            store_ns: 700,
        }
    }

    /// The equivalent backend config: a device tier with ideal (infinite)
    /// bandwidth and no queueing, so per-op costs are exactly `load_ns`
    /// and `store_ns` as before.
    pub fn backend(&self) -> BackendConfig {
        BackendConfig {
            kind: BackendKind::SimulatedSsd,
            capacity: self.capacity,
            load_ns: self.load_ns,
            store_ns: self.store_ns,
            bandwidth_bytes_per_us: 0,
            queue_depth: 1,
            cost_nanocents_per_byte: 0,
        }
    }
}

/// Cumulative tier-1 counters (projected from the first device tier of
/// the chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Tier1Stats {
    /// Pages currently stored.
    pub resident: u64,
    /// Demotions into the tier.
    pub stores: u64,
    /// Fault-backs out of the tier.
    pub loads: u64,
    /// Demotions refused because the device was full (stranding events).
    pub full_rejections: u64,
    /// Nanoseconds charged to tier-1 traffic.
    pub ns_charged: u64,
}

impl From<BackendStats> for Tier1Stats {
    fn from(s: BackendStats) -> Self {
        Tier1Stats {
            resident: s.resident_pages,
            stores: s.stores,
            loads: s.loads,
            full_rejections: s.full_rejections,
            ns_charged: s.ns_charged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvm_like_backend_keeps_exact_per_op_costs() {
        let cfg = Tier1Config::nvm_like(PageCount::new(10)).backend();
        // Infinite bandwidth, queue depth 1: the backend charges exactly
        // the configured latencies, like the old Tier1Store did.
        assert_eq!(cfg.fault_ns(), 300);
        assert_eq!(cfg.store_op_ns(), 700);
        let mut dev = cfg.build();
        dev.store_page();
        dev.load_page();
        assert_eq!(dev.stats().ns_charged, 1_000);
    }

    #[test]
    fn backend_stats_project_into_tier1_stats() {
        let mut dev = Tier1Config::nvm_like(PageCount::new(2)).backend().build();
        dev.store_page();
        dev.store_page();
        assert!(dev.store_page().is_none());
        dev.load_page();
        let t1: Tier1Stats = dev.stats().into();
        assert_eq!(t1.resident, 1);
        assert_eq!(t1.stores, 2);
        assert_eq!(t1.loads, 1);
        assert_eq!(t1.full_rejections, 1);
        assert_eq!(t1.ns_charged, 2 * 700 + 300);
    }

    #[test]
    fn capacity_is_hard() {
        let mut dev = Tier1Config::nvm_like(PageCount::new(2)).backend().build();
        assert!(dev.store_page().is_some());
        assert!(dev.store_page().is_some());
        assert!(dev.store_page().is_none(), "third store must reject");
        assert_eq!(dev.stats().full_rejections, 1);
        assert_eq!(dev.free(), PageCount::ZERO);
    }
}
