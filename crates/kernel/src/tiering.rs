//! Two-tier far memory: the paper's §8 end state.
//!
//! "An exciting end state would be one where the system uses both hardware
//! and software approaches and multiple tiers of far memory (sub-µs tier-1
//! and single-µs tier-2), all managed intelligently."
//!
//! [`Tier1Store`] models an NVM-like device tier: **fixed capacity**
//! (the stranding risk §2.1 warns about), uncompressed page-granular
//! storage, sub-microsecond loads. The zswap store remains tier-2:
//! elastic capacity, ~3× compression, single-digit-µs decompression.
//!
//! The demotion ladder runs DRAM → tier-1 → tier-2: pages past the cold-age
//! threshold go to tier-1 while it has room (fast to fault back); when
//! tier-1 fills, its *oldest* pages overflow into compressed tier-2, and
//! further reclaim bypasses straight to tier-2. See
//! [`Kernel::reclaim_job_tiered`](crate::Kernel::reclaim_job_tiered) and
//! the `two_tier` experiment binary.

use serde::{Deserialize, Serialize};

use sdfm_types::size::PageCount;

/// Configuration for the NVM-like first tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tier1Config {
    /// Device capacity in pages — fixed at provisioning time, unlike
    /// zswap's elastic footprint.
    pub capacity: PageCount,
    /// Load (fault-back) cost in nanoseconds (sub-µs class: ~300 ns).
    pub load_ns: u64,
    /// Store (demotion) cost in nanoseconds.
    pub store_ns: u64,
}

impl Tier1Config {
    /// A plausible Optane-DIMM-like device: sub-µs loads.
    pub fn nvm_like(capacity: PageCount) -> Self {
        Tier1Config {
            capacity,
            load_ns: 300,
            store_ns: 700,
        }
    }
}

/// Cumulative tier-1 counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Tier1Stats {
    /// Pages currently stored.
    pub resident: u64,
    /// Demotions into the tier.
    pub stores: u64,
    /// Fault-backs out of the tier.
    pub loads: u64,
    /// Demotions refused because the device was full (stranding events).
    pub full_rejections: u64,
    /// Nanoseconds charged to tier-1 traffic.
    pub ns_charged: u64,
}

/// The fixed-capacity NVM-like tier. Pages are tracked by count only — the
/// kernel owns per-page state ([`crate::PageState::Tier1`]).
#[derive(Debug)]
pub struct Tier1Store {
    config: Tier1Config,
    stats: Tier1Stats,
}

impl Tier1Store {
    /// Creates an empty device.
    pub fn new(config: Tier1Config) -> Self {
        Tier1Store {
            config,
            stats: Tier1Stats::default(),
        }
    }

    /// The device configuration.
    pub fn config(&self) -> Tier1Config {
        self.config
    }

    /// Free device pages.
    pub fn free(&self) -> PageCount {
        self.config
            .capacity
            .saturating_sub(PageCount::new(self.stats.resident))
    }

    /// Attempts to store one page; `false` when the device is full.
    pub fn store(&mut self) -> bool {
        if self.stats.resident >= self.config.capacity.get() {
            self.stats.full_rejections += 1;
            return false;
        }
        self.stats.resident += 1;
        self.stats.stores += 1;
        self.stats.ns_charged += self.config.store_ns;
        true
    }

    /// Records that demand existed while the device was full, without an
    /// actual store attempt (callers gate attempts and report stranding
    /// once per reclaim pass).
    pub fn record_stranding(&mut self) {
        self.stats.full_rejections += 1;
    }

    /// Loads (removes) one page on fault-back.
    ///
    /// # Panics
    ///
    /// Panics if the device is empty — the kernel only loads pages it
    /// stored.
    pub fn load(&mut self) {
        assert!(self.stats.resident > 0, "tier-1 load from empty device");
        self.stats.resident -= 1;
        self.stats.loads += 1;
        self.stats.ns_charged += self.config.load_ns;
    }

    /// Drops one page without a fault (job exit / demotion to tier-2).
    ///
    /// # Panics
    ///
    /// Panics if the device is empty.
    pub fn discard(&mut self) {
        assert!(self.stats.resident > 0, "tier-1 discard from empty device");
        self.stats.resident -= 1;
    }

    /// Counters.
    pub fn stats(&self) -> Tier1Stats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_hard() {
        let mut t = Tier1Store::new(Tier1Config::nvm_like(PageCount::new(2)));
        assert!(t.store());
        assert!(t.store());
        assert!(!t.store(), "third store must reject");
        assert_eq!(t.stats().full_rejections, 1);
        assert_eq!(t.free(), PageCount::ZERO);
    }

    #[test]
    fn load_and_discard_release_capacity() {
        let mut t = Tier1Store::new(Tier1Config::nvm_like(PageCount::new(4)));
        t.store();
        t.store();
        t.load();
        assert_eq!(t.stats().resident, 1);
        assert_eq!(t.stats().loads, 1);
        t.discard();
        assert_eq!(t.stats().resident, 0);
        assert_eq!(t.free(), PageCount::new(4));
    }

    #[test]
    fn costs_accumulate() {
        let mut t = Tier1Store::new(Tier1Config {
            capacity: PageCount::new(10),
            load_ns: 300,
            store_ns: 700,
        });
        t.store();
        t.load();
        assert_eq!(t.stats().ns_charged, 1_000);
    }

    #[test]
    #[should_panic(expected = "empty device")]
    fn load_from_empty_panics() {
        let mut t = Tier1Store::new(Tier1Config::nvm_like(PageCount::new(1)));
        t.load();
    }
}
