//! The per-machine kernel facade tying memcgs, kstaled, kreclaimd, and the
//! zswap store together.

use std::collections::BTreeMap;

use crate::backend::{BackendConfig, BackendStats, DemotionChain, MAX_TIERS};
use crate::cost::{CostModel, CpuAccounting};
use crate::error::KernelError;
use crate::kreclaimd::{self, ReclaimOutcome};
use crate::kstaled::{self, ScanOutcome};
use crate::memcg::{MemCgroup, MemcgStats};
use crate::page::{Page, PageContent, PageState};
use crate::prefetch::PrefetchConfig;
use crate::tiering::{Tier1Config, Tier1Stats};
use crate::writeback::{
    self, DemotionOutcome, HostPressureOutcome, LifecycleOutcome, StorePressure, WritebackOutcome,
};
use crate::zswap::ZswapStore;
use sdfm_compress::codec::CodecKind;
use sdfm_types::histogram::PageAge;
use sdfm_types::ids::{JobId, PageId};
use sdfm_types::size::{ByteSize, PageCount};
use serde::{Deserialize, Serialize};

/// Machine-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Physical DRAM frames.
    pub capacity: PageCount,
    /// Codec backing the zswap store.
    pub codec: CodecKind,
    /// Per-page compression costs.
    pub cost: CostModel,
    /// Correlation prefetcher configuration (off by default).
    pub prefetch: PrefetchConfig,
}

impl Default for KernelConfig {
    /// One simulated GiB of DRAM with the production lzo-class codec.
    fn default() -> Self {
        KernelConfig {
            capacity: PageCount::new(262_144),
            codec: CodecKind::Lzo,
            cost: CostModel::PAPER_DEFAULT,
            prefetch: PrefetchConfig::default(),
        }
    }
}

/// A machine-level snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineStats {
    /// Physical frames.
    pub capacity: PageCount,
    /// Frames holding resident (uncompressed) job pages.
    pub resident: PageCount,
    /// Frames held by the zswap arena.
    pub zswap_footprint: PageCount,
    /// Pages stored compressed.
    pub zswapped_pages: u64,
    /// Pages resident per device tier of the demotion chain, indexed by
    /// chain position (off-DRAM entirely; compressed-RAM tiers stay zero —
    /// their pages are `zswapped_pages`).
    pub demoted_pages: [u64; MAX_TIERS],
    /// Free frames.
    pub free: PageCount,
    /// Live memcgs.
    pub jobs: usize,
    /// Cumulative prefetched promotions across all memcgs.
    pub prefetch_issued: u64,
    /// Cumulative prefetched pages demand-touched while resident.
    pub prefetch_used: u64,
    /// Cumulative prefetched pages re-reclaimed or freed untouched.
    pub prefetch_wasted: u64,
    /// Cumulative demand faults that beat the prefetch drain.
    pub prefetch_late: u64,
}

impl MachineStats {
    /// DRAM saved by compression right now: pages stored in zswap minus
    /// the arena frames holding them.
    pub fn pages_saved(&self) -> PageCount {
        PageCount::new(self.zswapped_pages).saturating_sub(self.zswap_footprint)
    }

    /// Pages resident across every device tier.
    pub fn demoted_total(&self) -> u64 {
        self.demoted_pages.iter().sum()
    }

    /// DRAM saved including device-tier demotions (demoted pages leave
    /// DRAM wholesale; the device cost is accounted separately in the TCO
    /// model).
    pub fn pages_saved_with_demoted(&self) -> PageCount {
        self.pages_saved() + PageCount::new(self.demoted_total())
    }

    /// Bytes saved.
    pub fn bytes_saved(&self) -> ByteSize {
        self.pages_saved().bytes()
    }
}

/// One simulated machine's kernel.
#[derive(Debug)]
pub struct Kernel {
    config: KernelConfig,
    zswap: ZswapStore,
    chain: Option<DemotionChain>,
    memcgs: BTreeMap<JobId, MemCgroup>,
    cpu: CpuAccounting,
    scans: u64,
}

impl Kernel {
    /// Boots a kernel.
    pub fn new(config: KernelConfig) -> Self {
        Kernel {
            zswap: ZswapStore::new(config.codec),
            chain: None,
            config,
            memcgs: BTreeMap::new(),
            cpu: CpuAccounting::default(),
            scans: 0,
        }
    }

    /// Attaches an NVM-like tier-1 device (two-tier far memory, §8) —
    /// the two-backend special case of [`enable_chain`](Self::enable_chain):
    /// the device (warmest) followed by compressed RAM.
    pub fn enable_tier1(&mut self, config: Tier1Config) {
        self.enable_chain(&[config.backend(), BackendConfig::compressed_ram()]);
    }

    /// Attaches a demotion chain of far-memory tiers, warmest first (e.g.
    /// `[compressed RAM, SSD, remote]` for the three-tier ladder).
    /// Replaces any chain attached earlier; pages already demoted to a
    /// previous chain keep their per-memcg accounting, so swap chains only
    /// on an empty ladder.
    pub fn enable_chain(&mut self, configs: &[BackendConfig]) {
        self.chain = Some(DemotionChain::from_configs(configs));
    }

    /// The attached demotion chain, if any.
    pub fn chain(&self) -> Option<&DemotionChain> {
        self.chain.as_ref()
    }

    /// Per-tier backend counters, in chain order, if a chain is attached.
    pub fn chain_stats(&self) -> Option<Vec<BackendStats>> {
        self.chain.as_ref().map(|c| c.stats())
    }

    /// Tier-1 device counters (the first device tier of the chain), if a
    /// chain with a device tier is attached.
    pub fn tier1_stats(&self) -> Option<Tier1Stats> {
        let chain = self.chain.as_ref()?;
        let first = chain.first_device_index()?;
        chain.tier(first).map(|t| t.stats().into())
    }

    /// The configuration this kernel booted with.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// Creates a memcg for `job` with the given hard limit.
    ///
    /// # Errors
    ///
    /// [`KernelError::MemcgExists`] if the job already has one.
    pub fn create_memcg(&mut self, job: JobId, limit: PageCount) -> Result<(), KernelError> {
        if self.memcgs.contains_key(&job) {
            return Err(KernelError::MemcgExists { job });
        }
        self.memcgs.insert(job, MemCgroup::new(job, limit));
        Ok(())
    }

    /// Tears down `job`'s memcg, discarding its compressed pages, and
    /// returns its final counters.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`] if the job has no memcg;
    /// [`KernelError::StaleHandle`] / [`KernelError::Tier1Missing`] when
    /// the job's page tables reference store state that no longer exists
    /// (the memcg is torn down either way).
    pub fn remove_memcg(&mut self, job: JobId) -> Result<MemcgStats, KernelError> {
        let mut cg = self
            .memcgs
            .remove(&job)
            .ok_or(KernelError::NoSuchMemcg { job })?;
        // Prefetched pages the job never demand-touched resolve as wasted
        // at teardown, closing the used+wasted==issued conservation law.
        for idx in 0..cg.pages.len() {
            if cg.pages.prefetched(idx) {
                cg.stats.prefetch_wasted += 1;
            }
        }
        for state in cg.pages.states() {
            match state {
                PageState::Zswapped(h) => self.zswap.discard(h)?,
                PageState::Demoted(t) => self
                    .chain
                    .as_mut()
                    .ok_or(KernelError::Tier1Missing)?
                    .tier_mut(t as usize)
                    .ok_or(KernelError::StoreCorrupt {
                        detail: "page demoted to a tier the chain does not have",
                    })?
                    .discard_page(),
                PageState::Resident => {}
            }
        }
        Ok(cg.stats())
    }

    /// Immutable access to a job's memcg.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`] if the job has no memcg.
    pub fn memcg(&self, job: JobId) -> Result<&MemCgroup, KernelError> {
        self.memcgs
            .get(&job)
            .ok_or(KernelError::NoSuchMemcg { job })
    }

    fn memcg_mut(&mut self, job: JobId) -> Result<&mut MemCgroup, KernelError> {
        self.memcgs
            .get_mut(&job)
            .ok_or(KernelError::NoSuchMemcg { job })
    }

    /// Mutable memcg access for out-of-band instrumentation (e.g. the
    /// Thermostat sampling baseline, which poisons pages directly). Not
    /// part of the control-plane surface.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`] if the job has no memcg.
    pub fn memcg_mut_for_experiments(&mut self, job: JobId) -> Result<&mut MemCgroup, KernelError> {
        self.memcg_mut(job)
    }

    /// Jobs with live memcgs.
    pub fn jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.memcgs.keys().copied()
    }

    /// Sets a job's soft limit (working-set protection).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`] if the job has no memcg.
    pub fn set_soft_limit(&mut self, job: JobId, pages: PageCount) -> Result<(), KernelError> {
        self.memcg_mut(job)?.set_soft_limit(pages);
        Ok(())
    }

    /// Enables/disables proactive zswap for a job.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`] if the job has no memcg.
    pub fn set_zswap_enabled(&mut self, job: JobId, enabled: bool) -> Result<(), KernelError> {
        self.memcg_mut(job)?.set_zswap_enabled(enabled);
        Ok(())
    }

    /// Allocates `n` pages to `job`, with contents supplied per page index.
    /// Runs direct reclaim if the machine is short on frames.
    ///
    /// # Errors
    ///
    /// * [`KernelError::MemcgOverLimit`] — the job would exceed its limit;
    ///   per the fail-fast policy this also disables the job's zswap;
    /// * [`KernelError::OutOfMemory`] — the machine cannot free enough
    ///   frames even with direct reclaim.
    pub fn alloc_pages(
        &mut self,
        job: JobId,
        n: usize,
        mut content: impl FnMut(usize) -> PageContent,
    ) -> Result<(), KernelError> {
        let limit = self.memcg(job)?.limit();
        let usage = self.memcg(job)?.usage();
        let attempted = usage + PageCount::new(n as u64);
        if attempted > limit {
            self.memcg_mut(job)?.set_zswap_enabled(false);
            return Err(KernelError::MemcgOverLimit {
                job,
                limit,
                attempted,
            });
        }
        let needed = PageCount::new(n as u64);
        if self.free_frames() < needed {
            let shortfall = needed.saturating_sub(self.free_frames());
            self.direct_reclaim(shortfall)?;
        }
        if self.free_frames() < needed {
            return Err(KernelError::OutOfMemory {
                requested: needed,
                free: self.free_frames(),
            });
        }
        let cg = self.memcg_mut(job)?;
        for i in 0..n {
            cg.pages.push(Page::new(content(i)));
        }
        cg.stats.resident_pages += n as u64;
        Ok(())
    }

    /// Allocates `n_huge` 2 MiB huge pages to `job` (each maps
    /// [`crate::page::HUGE_SPAN`] frames). Huge pages age and reclaim at
    /// 2 MiB granularity until kreclaimd splits them.
    ///
    /// # Errors
    ///
    /// Same as [`alloc_pages`](Self::alloc_pages).
    pub fn alloc_huge_pages(
        &mut self,
        job: JobId,
        n_huge: usize,
        mut content: impl FnMut(usize) -> PageContent,
    ) -> Result<(), KernelError> {
        let span = crate::page::HUGE_SPAN as u64;
        let frames = PageCount::new(n_huge as u64 * span);
        let limit = self.memcg(job)?.limit();
        let usage = self.memcg(job)?.usage();
        let attempted = usage + frames;
        if attempted > limit {
            self.memcg_mut(job)?.set_zswap_enabled(false);
            return Err(KernelError::MemcgOverLimit {
                job,
                limit,
                attempted,
            });
        }
        if self.free_frames() < frames {
            let shortfall = frames.saturating_sub(self.free_frames());
            self.direct_reclaim(shortfall)?;
        }
        if self.free_frames() < frames {
            return Err(KernelError::OutOfMemory {
                requested: frames,
                free: self.free_frames(),
            });
        }
        let cg = self.memcg_mut(job)?;
        for i in 0..n_huge {
            cg.pages.push(Page::new_huge(content(i)));
        }
        cg.stats.resident_pages += n_huge as u64 * span;
        Ok(())
    }

    /// Frees the job's `n` most recently allocated pages.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`] if the job has no memcg. Freeing more
    /// pages than the job holds frees them all.
    pub fn free_pages(&mut self, job: JobId, n: usize) -> Result<(), KernelError> {
        // Split borrows: take pages out, then discard handles.
        let cg = self
            .memcgs
            .get_mut(&job)
            .ok_or(KernelError::NoSuchMemcg { job })?;
        let n = n.min(cg.pages.len());
        for _ in 0..n {
            // The prefetched-pending mark is SoA-only and does not survive
            // `pop`; read it before the entry leaves the table.
            let was_prefetched = cg
                .pages
                .len()
                .checked_sub(1)
                .is_some_and(|last| cg.pages.prefetched(last));
            let Some(page) = cg.pages.pop() else { break };
            if was_prefetched {
                cg.stats.prefetch_wasted += 1;
            }
            match page.state {
                PageState::Zswapped(h) => {
                    cg.stats.zswapped_pages -= 1;
                    cg.stats.zswapped_bytes -=
                        self.zswap.stored_size(h).ok_or(KernelError::StaleHandle)? as u64;
                    self.zswap.discard(h)?;
                }
                PageState::Demoted(t) => {
                    cg.stats.demoted_pages[t as usize] -= 1;
                    self.chain
                        .as_mut()
                        .ok_or(KernelError::Tier1Missing)?
                        .tier_mut(t as usize)
                        .ok_or(KernelError::StoreCorrupt {
                            detail: "page demoted to a tier the chain does not have",
                        })?
                        .discard_page();
                }
                PageState::Resident => cg.stats.resident_pages -= page.span as u64,
            }
            if page.flags.incompressible {
                cg.stats.incompressible_marked = cg.stats.incompressible_marked.saturating_sub(1);
            }
        }
        Ok(())
    }

    /// Simulates an access to a page. Returns `true` when the access
    /// faulted on a compressed page (an actual promotion: the page is
    /// decompressed and made resident, and decompression cost is charged).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`] / [`KernelError::NoSuchPage`].
    pub fn touch(&mut self, job: JobId, page: PageId, write: bool) -> Result<bool, KernelError> {
        let cost = self.config.cost;
        let prefetch = self.config.prefetch;
        let cg = self
            .memcgs
            .get_mut(&job)
            .ok_or(KernelError::NoSuchMemcg { job })?;
        let idx = page.index();
        let state = cg
            .pages
            .get_state(idx)
            .ok_or(KernelError::NoSuchPage { job, page })?;
        let promoted = match state {
            PageState::Zswapped(h) => {
                let size = self.zswap.stored_size(h).ok_or(KernelError::StaleHandle)? as u64;
                let bytes = self.zswap.load(h)?;
                if let (Some(loaded), PageContent::Real(original)) = (&bytes, cg.pages.content(idx))
                {
                    if loaded != original {
                        return Err(KernelError::StoreCorrupt {
                            detail: "zswap corrupted page contents",
                        });
                    }
                }
                cg.pages.set_state(idx, PageState::Resident);
                cg.stats.zswapped_pages -= 1;
                cg.stats.zswapped_bytes -= size;
                // Frames, not entries: a (directly constructed) huge
                // zswapped entry re-residents its whole span, consistent
                // with `huge_page_scan_counts_entries_but_promotes_frames`.
                cg.stats.resident_pages += cg.pages.span(idx) as u64;
                cg.stats.decompressions += 1;
                self.cpu.charge_decompress(&cost);
                true
            }
            PageState::Demoted(t) => {
                let ns = self
                    .chain
                    .as_mut()
                    .ok_or(KernelError::Tier1Missing)?
                    .tier_mut(t as usize)
                    .ok_or(KernelError::StoreCorrupt {
                        detail: "page demoted to a tier the chain does not have",
                    })?
                    .load_page();
                // Fault-back I/O is CPU-visible wait time, charged like
                // writeback decompressions are.
                self.cpu.charge_tier_io(ns);
                cg.pages.set_state(idx, PageState::Resident);
                cg.stats.demoted_pages[t as usize] -= 1;
                cg.stats.resident_pages += cg.pages.span(idx) as u64;
                cg.stats.demoted_loads[t as usize] += 1;
                true
            }
            PageState::Resident => {
                if cg.pages.prefetched(idx) {
                    // The prefetched page got its demand touch: the stall
                    // was fully hidden.
                    cg.pages.set_prefetched(idx, false);
                    cg.stats.prefetch_used += 1;
                }
                false
            }
        };
        if promoted && cg.prefetcher.cancel(idx as u64) {
            // Predicted correctly, but the demand fault arrived before the
            // scan-cadence drain issued it.
            cg.stats.prefetch_late += 1;
        }
        cg.prefetcher.record(idx as u64, &prefetch);
        cg.pages.set_accessed(idx, true);
        if write {
            cg.pages.set_dirty(idx, true);
        }
        if cg.pages.poisoned(idx) {
            // Thermostat-style sampling: the poisoned page soft-faulted.
            cg.pages.set_poisoned(idx, false);
            cg.pages.set_sample_faulted(idx, true);
        }
        Ok(promoted)
    }

    /// Runs one kstaled scan over every memcg, then drains each memcg's
    /// prefetch queue (predicted promotions ride the scan cadence, so the
    /// prefetcher issues exactly once per scan period).
    pub fn run_scan(&mut self) -> ScanOutcome {
        self.scans += 1;
        let mut total = ScanOutcome::default();
        for cg in self.memcgs.values_mut() {
            let o = kstaled::scan_memcg(cg);
            total.pages_scanned += o.pages_scanned;
            total.pages_accessed += o.pages_accessed;
            total.would_be_promotions += o.would_be_promotions;
            total.incompressible_cleared += o.incompressible_cleared;
            total.incompressible_marked += o.incompressible_marked;
        }
        if self.config.prefetch.enabled() {
            let jobs: Vec<JobId> = self.memcgs.keys().copied().collect();
            for job in jobs {
                self.drain_prefetch(job);
            }
        }
        total
    }

    /// Promotes one memcg's queued predictions, up to the configured
    /// drain budget. Each issued page pays exactly what a demand fault
    /// pays — a charged decompression out of zswap or charged tier I/O
    /// out of a device — but lands *before* the demand touch. The page
    /// comes back hot (it is expected imminently) carrying the
    /// prefetched-pending mark until a demand touch (used) or a later
    /// reclaim (wasted) resolves it. Predictions that no longer point at
    /// far memory, or that the store cannot serve, are dropped without
    /// being counted as issued — a speculative promotion must never turn
    /// into an error or a phantom counter.
    fn drain_prefetch(&mut self, job: JobId) {
        let cost = self.config.cost;
        let budget = self.config.prefetch.drain_budget();
        if budget == 0 {
            return;
        }
        let mut free = self.free_frames().get();
        let Some(cg) = self.memcgs.get_mut(&job) else {
            return;
        };
        for idx64 in cg.prefetcher.drain(budget) {
            let idx = idx64 as usize;
            let Some(state) = cg.pages.get_state(idx) else {
                continue;
            };
            let span = cg.pages.span(idx) as u64;
            if free < span {
                // Prefetching must never create memory pressure: stop
                // issuing when the machine is out of frames.
                break;
            }
            match state {
                PageState::Zswapped(h) => {
                    let Some(size) = self.zswap.stored_size(h) else {
                        continue;
                    };
                    if self.zswap.load(h).is_err() {
                        continue;
                    }
                    cg.pages.set_state(idx, PageState::Resident);
                    cg.stats.zswapped_pages -= 1;
                    cg.stats.zswapped_bytes -= size as u64;
                    cg.stats.resident_pages += span;
                    cg.stats.decompressions += 1;
                    self.cpu.charge_decompress(&cost);
                }
                PageState::Demoted(t) => {
                    let Some(tier) = self.chain.as_mut().and_then(|c| c.tier_mut(t as usize))
                    else {
                        continue;
                    };
                    let ns = tier.load_page();
                    self.cpu.charge_tier_io(ns);
                    cg.pages.set_state(idx, PageState::Resident);
                    cg.stats.demoted_pages[t as usize] -= 1;
                    cg.stats.resident_pages += span;
                    cg.stats.demoted_loads[t as usize] += 1;
                }
                PageState::Resident => continue,
            }
            free = free.saturating_sub(span);
            cg.stats.prefetch_issued += 1;
            cg.pages.set_prefetched(idx, true);
            cg.pages.set_age(idx, PageAge::HOT);
        }
    }

    /// Number of kstaled scans run.
    pub fn scan_count(&self) -> u64 {
        self.scans
    }

    /// Runs kreclaimd for one job at the given threshold.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`] if the job has no memcg, or any store
    /// inconsistency kreclaimd hits mid-pass.
    pub fn reclaim_job(
        &mut self,
        job: JobId,
        threshold: PageAge,
    ) -> Result<ReclaimOutcome, KernelError> {
        let cost = self.config.cost;
        let cg = self
            .memcgs
            .get_mut(&job)
            .ok_or(KernelError::NoSuchMemcg { job })?;
        kreclaimd::reclaim_memcg(cg, &mut self.zswap, threshold, &cost, &mut self.cpu)
    }

    /// Two-tier reclaim (§8): pages at age ≥ `t2_threshold` compress into
    /// zswap; pages at age ≥ `t1_threshold` (but younger than `t2`) demote
    /// uncompressed into the chain's warm device tier while it has room.
    /// Warm-device residents that age past `t2_threshold` overflow into
    /// zswap, keeping the fixed device available for the warm end of the
    /// cold spectrum.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`] if the job has no memcg;
    /// [`KernelError::Tier1Missing`] if no chain with a device tier
    /// warmer than compressed RAM is attached (call
    /// [`enable_tier1`](Self::enable_tier1) or
    /// [`enable_chain`](Self::enable_chain) first — chains whose devices
    /// all sit *below* compressed RAM demote via
    /// [`demote_job`](Self::demote_job) instead).
    ///
    /// # Panics
    ///
    /// Panics if `t1_threshold > t2_threshold` (a caller bug, not a
    /// machine state).
    pub fn reclaim_job_tiered(
        &mut self,
        job: JobId,
        t1_threshold: PageAge,
        t2_threshold: PageAge,
    ) -> Result<ReclaimOutcome, KernelError> {
        assert!(
            t1_threshold <= t2_threshold,
            "tier-1 threshold must not exceed tier-2's"
        );
        let cost = self.config.cost;
        let chain = self.chain.as_mut().ok_or(KernelError::Tier1Missing)?;
        let dev = chain.warm_device_index().ok_or(KernelError::Tier1Missing)?;
        let cg = self
            .memcgs
            .get_mut(&job)
            .ok_or(KernelError::NoSuchMemcg { job })?;
        let mut outcome = ReclaimOutcome::default();
        if !cg.zswap_enabled() || t1_threshold == PageAge::HOT {
            return Ok(outcome);
        }
        let mut stranded_this_pass = false;
        let mut i = 0;
        while i < cg.pages.len() {
            // Huge pages split before entering either tier (neither the
            // zswap store nor the page-granular device takes a 2 MiB
            // mapping whole).
            if cg.pages.is_huge(i)
                && cg.pages.demote_eligible(i, t1_threshold)
                && cg.split_huge_page(i)
            {
                outcome.huge_splits += 1;
            }
            let idx = i;
            i += 1;
            outcome.examined += 1;
            // Overflow: warm-device residents that aged past the zswap
            // threshold.
            if cg.pages.state(idx) == PageState::Demoted(dev as u8)
                && cg.pages.age(idx) >= t2_threshold
            {
                cg.stats.compressions += 1;
                match self.zswap.store(cg.pages.content(idx))? {
                    crate::zswap::StoreOutcome::Stored(h) => {
                        self.cpu.charge_compress(&cost);
                        let tier = chain.tier_mut(dev).ok_or(KernelError::StoreCorrupt {
                            detail: "warm device tier vanished mid-pass",
                        })?;
                        tier.discard_page();
                        cg.pages.set_state(idx, PageState::Zswapped(h));
                        cg.stats.demoted_pages[dev] -= 1;
                        cg.stats.zswapped_pages += 1;
                        cg.stats.zswapped_bytes +=
                            self.zswap.stored_size(h).ok_or(KernelError::StaleHandle)? as u64;
                        outcome.reclaimed += 1;
                    }
                    crate::zswap::StoreOutcome::Rejected { .. } => {
                        // Incompressible: it stays on the device (which
                        // holds raw pages happily) — but the failed attempt
                        // burned the same compression cycles (§5.1).
                        self.cpu.charge_rejected_compress(&cost);
                        cg.stats.rejections += 1;
                        outcome.rejected += 1;
                    }
                }
                continue;
            }
            // DRAM → zswap for the deep-cold.
            if cg.pages.reclaim_eligible(idx, t2_threshold) {
                cg.stats.compressions += 1;
                match self.zswap.store(cg.pages.content(idx))? {
                    crate::zswap::StoreOutcome::Stored(h) => {
                        self.cpu.charge_compress(&cost);
                        if cg.pages.prefetched(idx) {
                            cg.pages.set_prefetched(idx, false);
                            cg.stats.prefetch_wasted += 1;
                        }
                        cg.pages.set_state(idx, PageState::Zswapped(h));
                        cg.stats.resident_pages -= 1;
                        cg.stats.zswapped_pages += 1;
                        cg.stats.zswapped_bytes +=
                            self.zswap.stored_size(h).ok_or(KernelError::StaleHandle)? as u64;
                        outcome.reclaimed += 1;
                    }
                    crate::zswap::StoreOutcome::Rejected { .. } => {
                        self.cpu.charge_rejected_compress(&cost);
                        cg.pages.set_incompressible(idx, true);
                        cg.stats.incompressible_marked += 1;
                        cg.stats.rejections += 1;
                        outcome.rejected += 1;
                    }
                }
                continue;
            }
            // DRAM → warm device for the warm-cold, capacity permitting.
            if cg.pages.demote_eligible(idx, t1_threshold) {
                let tier = chain.tier_mut(dev).ok_or(KernelError::StoreCorrupt {
                    detail: "warm device tier vanished mid-pass",
                })?;
                if tier.has_room() {
                    let ns = tier.store_page().ok_or(KernelError::StoreCorrupt {
                        detail: "warm device tier filled mid-check",
                    })?;
                    self.cpu.charge_tier_io(ns);
                    if cg.pages.prefetched(idx) {
                        cg.pages.set_prefetched(idx, false);
                        cg.stats.prefetch_wasted += 1;
                    }
                    cg.pages.set_state(idx, PageState::Demoted(dev as u8));
                    cg.stats.resident_pages -= 1;
                    cg.stats.demoted_pages[dev] += 1;
                    cg.stats.demotions += 1;
                    outcome.reclaimed += 1;
                } else if !stranded_this_pass {
                    // Demand exists but the fixed device is full: one
                    // stranding event per pass (§2.1's provisioning risk).
                    tier.record_stranding();
                    stranded_this_pass = true;
                }
            }
        }
        Ok(outcome)
    }

    /// Demotes up to `budget` of `job`'s coldest compressed pages down the
    /// chain (zswap → SSD → remote), overflowing past full tiers. A no-op
    /// (all counters zero) when no chain is attached or the chain has no
    /// device tier below compressed RAM — the two-tier configuration keeps
    /// its cold pages compressed.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`], or a store inconsistency mid-pass.
    pub fn demote_job(&mut self, job: JobId, budget: u64) -> Result<DemotionOutcome, KernelError> {
        let cost = self.config.cost;
        let Some(chain) = self.chain.as_mut() else {
            return Ok(DemotionOutcome::default());
        };
        let cg = self
            .memcgs
            .get_mut(&job)
            .ok_or(KernelError::NoSuchMemcg { job })?;
        writeback::demote_coldest(cg, &mut self.zswap, chain, budget, &cost, &mut self.cpu)
    }

    /// Direct reclaim under machine memory pressure: compresses the oldest
    /// eligible pages of each memcg — never pushing a memcg below its soft
    /// limit — until `needed` frames are free or candidates run out.
    /// Returns the frames actually freed.
    ///
    /// # Errors
    ///
    /// Store inconsistencies surfaced mid-pass; frames freed before the
    /// failure stay freed.
    pub fn direct_reclaim(&mut self, needed: PageCount) -> Result<PageCount, KernelError> {
        let before = self.free_frames();
        let cost = self.config.cost;
        let jobs: Vec<JobId> = self.memcgs.keys().copied().collect();
        'outer: for job in jobs {
            loop {
                if self.free_frames() >= before + needed {
                    break 'outer;
                }
                let Some(cg) = self.memcgs.get_mut(&job) else {
                    break;
                };
                if PageCount::new(cg.stats.resident_pages) <= cg.soft_limit() {
                    break;
                }
                // Oldest eligible resident page (direct reclaim reuses the
                // ages kstaled already reaped, §5.1).
                let candidate = (0..cg.pages.len())
                    .filter(|&i| cg.pages.reclaim_eligible(i, PageAge::from_scans(1)))
                    .max_by_key(|&i| cg.pages.age(i));
                let Some(idx) = candidate else { break };
                // Direct reclaim splits huge pages like the swap path does.
                cg.split_huge_page(idx);
                cg.stats.compressions += 1;
                match self.zswap.store(cg.pages.content(idx))? {
                    crate::zswap::StoreOutcome::Stored(h) => {
                        self.cpu.charge_compress(&cost);
                        if cg.pages.prefetched(idx) {
                            cg.pages.set_prefetched(idx, false);
                            cg.stats.prefetch_wasted += 1;
                        }
                        cg.pages.set_state(idx, PageState::Zswapped(h));
                        cg.stats.resident_pages -= 1;
                        cg.stats.zswapped_pages += 1;
                        cg.stats.zswapped_bytes +=
                            self.zswap.stored_size(h).ok_or(KernelError::StaleHandle)? as u64;
                    }
                    crate::zswap::StoreOutcome::Rejected { .. } => {
                        self.cpu.charge_rejected_compress(&cost);
                        cg.pages.set_incompressible(idx, true);
                        cg.stats.incompressible_marked += 1;
                        cg.stats.rejections += 1;
                    }
                }
            }
        }
        Ok(self.free_frames().saturating_sub(before))
    }

    /// Compacts the zswap arena; returns frames reclaimed.
    pub fn compact_zswap(&mut self) -> PageCount {
        self.zswap.compact()
    }

    /// Writes back up to `budget` of `job`'s coldest compressed pages to
    /// DRAM (LRU writeback; each page keeps its age, so a later re-enable
    /// recompresses exactly the written-back mass). Decompressions are
    /// charged to CPU accounting.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`], or a store inconsistency mid-pass.
    pub fn writeback_job(
        &mut self,
        job: JobId,
        budget: u64,
    ) -> Result<WritebackOutcome, KernelError> {
        let cost = self.config.cost;
        let cg = self
            .memcgs
            .get_mut(&job)
            .ok_or(KernelError::NoSuchMemcg { job })?;
        writeback::writeback_coldest(cg, &mut self.zswap, budget, &cost, &mut self.cpu)
    }

    /// One store-lifecycle control tick for `job` (the node agent calls
    /// this once per control window):
    ///
    /// * zswap disabled with a nonempty store — the dead store decays by
    ///   [`StorePressure::decay_step`] pages: demoted down the chain when
    ///   a tier below compressed RAM is attached, written back to DRAM
    ///   otherwise (LRU order, ages kept either way);
    /// * zswap enabled but the soft limit exceeds resident pages — part of
    ///   the protected working set sits compressed; the youngest
    ///   compressed pages come back hot until the deficit closes;
    /// * otherwise a no-op.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchMemcg`], or a store inconsistency mid-pass.
    pub fn store_lifecycle_tick(
        &mut self,
        job: JobId,
        policy: &StorePressure,
    ) -> Result<LifecycleOutcome, KernelError> {
        let cost = self.config.cost;
        let cg = self
            .memcgs
            .get_mut(&job)
            .ok_or(KernelError::NoSuchMemcg { job })?;
        let zswapped = cg.stats.zswapped_pages;
        if zswapped == 0 {
            return Ok(LifecycleOutcome::default());
        }
        if cg.zswap_enabled() {
            let deficit = cg
                .soft_limit()
                .get()
                .saturating_sub(cg.stats.resident_pages)
                .min(zswapped);
            let writeback =
                writeback::writeback_youngest(cg, &mut self.zswap, deficit, &cost, &mut self.cpu)?;
            return Ok(LifecycleOutcome {
                writeback,
                ..LifecycleOutcome::default()
            });
        }
        let budget = policy.decay_step(zswapped);
        if let Some(chain) = self
            .chain
            .as_mut()
            .filter(|c| c.device_below_compressed().is_some())
        {
            let demotion =
                writeback::demote_coldest(cg, &mut self.zswap, chain, budget, &cost, &mut self.cpu)?;
            return Ok(LifecycleOutcome {
                demotion,
                ..LifecycleOutcome::default()
            });
        }
        let writeback =
            writeback::writeback_coldest(cg, &mut self.zswap, budget, &cost, &mut self.cpu)?;
        Ok(LifecycleOutcome {
            writeback,
            ..LifecycleOutcome::default()
        })
    }

    /// Decays every disabled job's store by one window of `policy`
    /// (demotion down the chain when a tier below compressed RAM is
    /// attached, LRU writeback otherwise; ages kept). Walks memcgs in
    /// `JobId` order, so the pass is deterministic.
    ///
    /// # Errors
    ///
    /// The first store inconsistency hit; earlier jobs stay decayed.
    pub fn decay_disabled_stores(
        &mut self,
        policy: &StorePressure,
    ) -> Result<LifecycleOutcome, KernelError> {
        let cost = self.config.cost;
        let mut total = LifecycleOutcome::default();
        let mut chain = self
            .chain
            .as_mut()
            .filter(|c| c.device_below_compressed().is_some());
        for cg in self.memcgs.values_mut() {
            if cg.zswap_enabled() || cg.stats.zswapped_pages == 0 {
                continue;
            }
            let budget = policy.decay_step(cg.stats.zswapped_pages);
            if let Some(chain) = chain.as_deref_mut() {
                total.demotion.merge(writeback::demote_coldest(
                    cg,
                    &mut self.zswap,
                    chain,
                    budget,
                    &cost,
                    &mut self.cpu,
                )?);
            } else {
                total.writeback.merge(writeback::writeback_coldest(
                    cg,
                    &mut self.zswap,
                    budget,
                    &cost,
                    &mut self.cpu,
                )?);
            }
        }
        Ok(total)
    }

    /// Host-side pressure relief: decays disabled stores one window and
    /// compacts the arena, returning frames to the machine. Writing back
    /// alone makes overcommit *worse* (one more resident page, arena bytes
    /// merely freed), so the compaction is part of the operation, not a
    /// follow-up.
    ///
    /// # Errors
    ///
    /// As [`decay_disabled_stores`](Self::decay_disabled_stores); the
    /// arena still compacts on the error path's partial progress only if
    /// the decay succeeded.
    pub fn relieve_host_pressure(
        &mut self,
        policy: &StorePressure,
    ) -> Result<HostPressureOutcome, KernelError> {
        let lifecycle = self.decay_disabled_stores(policy)?;
        let compacted = self.zswap.compact();
        Ok(HostPressureOutcome {
            writeback: lifecycle.writeback,
            demotion: lifecycle.demotion,
            compacted,
        })
    }

    /// Free physical frames right now.
    pub fn free_frames(&self) -> PageCount {
        let resident: u64 = self
            .memcgs
            .values()
            .map(|cg| cg.stats().resident_pages)
            .sum();
        let used = resident + self.zswap.footprint_pages().get();
        self.config.capacity.saturating_sub(PageCount::new(used))
    }

    /// Machine-level snapshot.
    pub fn machine_stats(&self) -> MachineStats {
        let resident: u64 = self
            .memcgs
            .values()
            .map(|cg| cg.stats().resident_pages)
            .sum();
        let zswapped: u64 = self
            .memcgs
            .values()
            .map(|cg| cg.stats().zswapped_pages)
            .sum();
        let mut demoted_pages = [0u64; MAX_TIERS];
        let mut prefetch = [0u64; 4];
        for cg in self.memcgs.values() {
            for (sum, tier) in demoted_pages.iter_mut().zip(cg.stats().demoted_pages) {
                *sum += tier;
            }
            let s = cg.stats();
            prefetch[0] += s.prefetch_issued;
            prefetch[1] += s.prefetch_used;
            prefetch[2] += s.prefetch_wasted;
            prefetch[3] += s.prefetch_late;
        }
        MachineStats {
            capacity: self.config.capacity,
            resident: PageCount::new(resident),
            zswap_footprint: self.zswap.footprint_pages(),
            zswapped_pages: zswapped,
            demoted_pages,
            free: self.free_frames(),
            jobs: self.memcgs.len(),
            prefetch_issued: prefetch[0],
            prefetch_used: prefetch[1],
            prefetch_wasted: prefetch[2],
            prefetch_late: prefetch[3],
        }
    }

    /// Machine-level CPU time charged to compression work.
    pub fn cpu_accounting(&self) -> CpuAccounting {
        self.cpu
    }

    /// The zswap store (read access for stats and experiments).
    pub fn zswap(&self) -> &ZswapStore {
        &self.zswap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_with_job(capacity: u64, limit: u64) -> (Kernel, JobId) {
        let mut k = Kernel::new(KernelConfig {
            capacity: PageCount::new(capacity),
            ..KernelConfig::default()
        });
        let job = JobId::new(1);
        k.create_memcg(job, PageCount::new(limit)).unwrap();
        (k, job)
    }

    #[test]
    fn memcg_lifecycle() {
        let (mut k, job) = kernel_with_job(1000, 100);
        assert!(matches!(
            k.create_memcg(job, PageCount::new(5)),
            Err(KernelError::MemcgExists { .. })
        ));
        k.alloc_pages(job, 10, |_| PageContent::synthetic_of_len(500))
            .unwrap();
        let stats = k.remove_memcg(job).unwrap();
        assert_eq!(stats.resident_pages, 10);
        assert!(matches!(
            k.remove_memcg(job),
            Err(KernelError::NoSuchMemcg { .. })
        ));
    }

    #[test]
    fn memcg_limit_fails_fast_and_disables_zswap() {
        let (mut k, job) = kernel_with_job(1000, 8);
        k.set_zswap_enabled(job, true).unwrap();
        k.alloc_pages(job, 8, |_| PageContent::synthetic_of_len(500))
            .unwrap();
        let err = k
            .alloc_pages(job, 1, |_| PageContent::synthetic_of_len(500))
            .unwrap_err();
        assert!(matches!(err, KernelError::MemcgOverLimit { .. }));
        assert!(!k.memcg(job).unwrap().zswap_enabled());
    }

    #[test]
    fn touch_faults_promote_compressed_pages() {
        let (mut k, job) = kernel_with_job(10_000, 10_000);
        k.set_zswap_enabled(job, true).unwrap();
        k.alloc_pages(job, 4, |_| PageContent::synthetic_of_len(700))
            .unwrap();
        for _ in 0..4 {
            k.run_scan();
        }
        let o = k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
        assert_eq!(o.reclaimed, 4);
        assert_eq!(k.memcg(job).unwrap().stats().zswapped_pages, 4);

        let promoted = k.touch(job, PageId::new(0), false).unwrap();
        assert!(promoted);
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.zswapped_pages, 3);
        assert_eq!(s.decompressions, 1);
        assert_eq!(k.cpu_accounting().decompress_events, 1);
        // Second touch on the same page is a plain access.
        assert!(!k.touch(job, PageId::new(0), false).unwrap());
    }

    #[test]
    fn touch_errors() {
        let (mut k, job) = kernel_with_job(100, 100);
        assert!(matches!(
            k.touch(JobId::new(9), PageId::new(0), false),
            Err(KernelError::NoSuchMemcg { .. })
        ));
        assert!(matches!(
            k.touch(job, PageId::new(0), false),
            Err(KernelError::NoSuchPage { .. })
        ));
    }

    #[test]
    fn free_pages_releases_zswap_slots() {
        let (mut k, job) = kernel_with_job(10_000, 10_000);
        k.set_zswap_enabled(job, true).unwrap();
        k.alloc_pages(job, 10, |_| PageContent::synthetic_of_len(700))
            .unwrap();
        for _ in 0..3 {
            k.run_scan();
        }
        k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
        assert_eq!(k.zswap().resident_objects(), 10);
        k.free_pages(job, 10).unwrap();
        assert_eq!(k.zswap().resident_objects(), 0);
        assert_eq!(k.memcg(job).unwrap().usage(), PageCount::ZERO);
    }

    #[test]
    fn machine_stats_account_compression_savings() {
        let (mut k, job) = kernel_with_job(10_000, 10_000);
        k.set_zswap_enabled(job, true).unwrap();
        k.alloc_pages(job, 100, |_| PageContent::synthetic_of_len(400))
            .unwrap();
        let before = k.machine_stats();
        assert_eq!(before.resident.get(), 100);
        assert_eq!(before.free.get(), 10_000 - 100);
        for _ in 0..3 {
            k.run_scan();
        }
        k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
        let after = k.machine_stats();
        assert_eq!(after.resident.get(), 0);
        assert_eq!(after.zswapped_pages, 100);
        // ~100 pages × 400 B ≈ 10 frames of arena vs 100 frames freed.
        assert!(after.zswap_footprint.get() < 20);
        assert!(after.free > before.free);
        assert!(after.pages_saved().get() >= 80);
    }

    #[test]
    fn direct_reclaim_respects_soft_limits() {
        let (mut k, job) = kernel_with_job(10_000, 10_000);
        // Direct reclaim works even when proactive zswap is off.
        k.alloc_pages(job, 100, |_| PageContent::synthetic_of_len(400))
            .unwrap();
        k.set_soft_limit(job, PageCount::new(90)).unwrap();
        for _ in 0..3 {
            k.run_scan();
        }
        let freed = k.direct_reclaim(PageCount::new(50)).unwrap();
        assert!(freed.get() > 0);
        let s = k.memcg(job).unwrap().stats();
        assert!(
            s.resident_pages >= 90,
            "direct reclaim went below the soft limit: {}",
            s.resident_pages
        );
    }

    #[test]
    fn alloc_triggers_direct_reclaim_before_oom() {
        let mut k = Kernel::new(KernelConfig {
            capacity: PageCount::new(120),
            ..KernelConfig::default()
        });
        let job = JobId::new(1);
        k.create_memcg(job, PageCount::new(1_000)).unwrap();
        k.alloc_pages(job, 100, |_| PageContent::synthetic_of_len(200))
            .unwrap();
        for _ in 0..3 {
            k.run_scan();
        }
        // 20 frames free, requesting 40: direct reclaim must kick in and
        // compress cold pages to make room.
        k.alloc_pages(job, 40, |_| PageContent::synthetic_of_len(200))
            .unwrap();
        let s = k.memcg(job).unwrap().stats();
        assert!(s.zswapped_pages > 0, "direct reclaim compressed nothing");
    }

    #[test]
    fn oom_when_nothing_reclaimable() {
        let mut k = Kernel::new(KernelConfig {
            capacity: PageCount::new(50),
            ..KernelConfig::default()
        });
        let job = JobId::new(1);
        k.create_memcg(job, PageCount::new(1_000)).unwrap();
        k.alloc_pages(job, 50, |_| PageContent::synthetic_of_len(200))
            .unwrap();
        // Pages are hot (just allocated, never scanned): nothing to reclaim.
        let err = k
            .alloc_pages(job, 10, |_| PageContent::synthetic_of_len(200))
            .unwrap_err();
        assert!(matches!(err, KernelError::OutOfMemory { .. }));
    }

    fn compressed_job(n: usize) -> (Kernel, JobId) {
        let (mut k, job) = kernel_with_job(10_000, 10_000);
        k.set_zswap_enabled(job, true).unwrap();
        k.alloc_pages(job, n, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        for _ in 0..4 {
            k.run_scan();
        }
        k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
        assert_eq!(k.memcg(job).unwrap().stats().zswapped_pages, n as u64);
        (k, job)
    }

    #[test]
    fn disabled_store_decays_to_zero_under_lifecycle_ticks() {
        let (mut k, job) = compressed_job(100);
        k.set_zswap_enabled(job, false).unwrap();
        let policy = StorePressure::PAPER_DEFAULT;
        let mut expected = 100u64;
        let mut windows = 0;
        while k.memcg(job).unwrap().stats().zswapped_pages > 0 {
            let o = k.store_lifecycle_tick(job, &policy).unwrap();
            assert_eq!(o.writeback.written_back, policy.decay_step(expected));
            expected = policy.store_after_window(expected);
            assert_eq!(k.memcg(job).unwrap().stats().zswapped_pages, expected);
            windows += 1;
            assert!(windows <= policy.windows_to_drain(100));
        }
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.writebacks, 100);
        assert_eq!(s.resident_pages, 100);
        // Every writeback decompression was charged.
        assert_eq!(k.cpu_accounting().decompress_events, 100);
        // The pages kept their cold ages: a re-enable would recompress.
        k.set_zswap_enabled(job, true).unwrap();
        let o = k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
        assert_eq!(o.reclaimed, 100);
    }

    #[test]
    fn lifecycle_tick_restores_soft_limited_working_set() {
        let (mut k, job) = compressed_job(50);
        // The agent raised the soft limit: 30 pages of the protected
        // working set are sitting compressed.
        k.set_soft_limit(job, PageCount::new(30)).unwrap();
        let o = k
            .store_lifecycle_tick(job, &StorePressure::PAPER_DEFAULT)
            .unwrap();
        assert_eq!(o.writeback.written_back, 30);
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.resident_pages, 30);
        assert_eq!(s.zswapped_pages, 20);
        // Restored pages come back hot: the next reclaim pass skips them.
        let o = k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
        assert_eq!(o.reclaimed, 0);
    }

    #[test]
    fn lifecycle_tick_is_noop_when_store_healthy() {
        let (mut k, job) = compressed_job(10);
        let o = k
            .store_lifecycle_tick(job, &StorePressure::PAPER_DEFAULT)
            .unwrap();
        assert_eq!(o, LifecycleOutcome::default());
        assert_eq!(k.memcg(job).unwrap().stats().zswapped_pages, 10);
    }

    #[test]
    fn host_pressure_decays_disabled_stores_and_compacts() {
        let (mut k, job) = compressed_job(200);
        k.set_zswap_enabled(job, false).unwrap();
        let enabled = JobId::new(2);
        k.create_memcg(enabled, PageCount::new(1000)).unwrap();
        k.set_zswap_enabled(enabled, true).unwrap();
        k.alloc_pages(enabled, 20, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        for _ in 0..4 {
            k.run_scan();
        }
        k.reclaim_job(enabled, PageAge::from_scans(2)).unwrap();
        let live_before = k.memcg(enabled).unwrap().stats().zswapped_pages;
        let o = k
            .relieve_host_pressure(&StorePressure::PAPER_DEFAULT)
            .unwrap();
        assert_eq!(o.writeback.written_back, 25, "12.5% of the 200 dead pages");
        // The enabled job's store is untouched by host pressure.
        assert_eq!(k.memcg(enabled).unwrap().stats().zswapped_pages, live_before);
        // Draining the whole dead store and compacting returns frames.
        while k.memcg(job).unwrap().stats().zswapped_pages > 0 {
            k.relieve_host_pressure(&StorePressure::PAPER_DEFAULT)
                .unwrap();
        }
        assert_eq!(k.memcg(job).unwrap().stats().writebacks, 200);
    }

    #[test]
    fn tiered_reclaim_without_device_is_a_typed_error() {
        let (mut k, job) = kernel_with_job(1000, 1000);
        assert_eq!(
            k.reclaim_job_tiered(job, PageAge::from_scans(1), PageAge::from_scans(2)),
            Err(KernelError::Tier1Missing)
        );
        // A chain whose only device sits *below* compressed RAM has no
        // warm tier-1 either.
        k.enable_chain(&[
            crate::BackendConfig::compressed_ram(),
            crate::BackendConfig::ssd(PageCount::new(100)),
        ]);
        assert_eq!(
            k.reclaim_job_tiered(job, PageAge::from_scans(1), PageAge::from_scans(2)),
            Err(KernelError::Tier1Missing)
        );
    }

    #[test]
    fn tier_faults_and_demotions_charge_cpu_tier_io() {
        // Regression: Tier1Stats::ns_charged used to accumulate on the
        // device but never flow into CpuAccounting.
        let (mut k, job) = kernel_with_job(10_000, 10_000);
        k.set_zswap_enabled(job, true).unwrap();
        k.enable_tier1(crate::Tier1Config::nvm_like(PageCount::new(100)));
        k.alloc_pages(job, 10, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        for _ in 0..2 {
            k.run_scan();
        }
        // Warm-cold only: everything lands on the device.
        let o = k
            .reclaim_job_tiered(job, PageAge::from_scans(1), PageAge::from_scans(50))
            .unwrap();
        assert_eq!(o.reclaimed, 10);
        let cpu = k.cpu_accounting();
        assert_eq!(cpu.tier_io_events, 10);
        assert_eq!(cpu.tier_io_ns, 10 * 700, "10 stores at nvm_like store_ns");
        // Fault one back: the load is charged too.
        assert!(k.touch(job, PageId::new(0), false).unwrap());
        let cpu = k.cpu_accounting();
        assert_eq!(cpu.tier_io_events, 11);
        assert_eq!(cpu.tier_io_ns, 10 * 700 + 300);
        assert_eq!(
            cpu.tier_io_ns,
            k.chain().unwrap().total_ns_charged(),
            "every device nanosecond reaches CPU accounting"
        );
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.demoted_loads_total(), 1);
        assert_eq!(s.demoted_total(), 9);
    }

    #[test]
    fn three_tier_lifecycle_demotes_instead_of_writing_back() {
        let (mut k, job) = compressed_job(100);
        k.enable_chain(&[
            crate::BackendConfig::compressed_ram(),
            crate::BackendConfig::ssd(PageCount::new(8)),
            crate::BackendConfig::remote(),
        ]);
        k.set_zswap_enabled(job, false).unwrap();
        let policy = StorePressure::PAPER_DEFAULT;
        let o = k.store_lifecycle_tick(job, &policy).unwrap();
        assert_eq!(o.writeback, WritebackOutcome::default());
        assert_eq!(o.demotion.demoted, policy.decay_step(100));
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.resident_pages, 0, "demotion never re-residents pages");
        assert_eq!(s.zswapped_pages, 100 - o.demotion.demoted);
        // Keep ticking: the SSD fills at 8 pages, the rest overflow remote.
        while k.memcg(job).unwrap().stats().zswapped_pages > 0 {
            k.store_lifecycle_tick(job, &policy).unwrap();
        }
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.demoted_pages[1], 8);
        assert_eq!(s.demoted_pages[2], 92);
        assert_eq!(s.demotions, 100);
        // Machine stats and the chain agree (conservation).
        let ms = k.machine_stats();
        assert_eq!(ms.demoted_total(), 100);
        assert_eq!(k.chain().unwrap().device_resident_pages(), 100);
        assert!(ms.pages_saved_with_demoted().get() >= 100);
        // Faulting a remote page back works and is charged.
        assert!(k.touch(job, PageId::new(0), false).unwrap());
        assert_eq!(k.machine_stats().demoted_total(), 99);
    }

    #[test]
    fn removing_a_memcg_discards_its_demoted_pages() {
        let (mut k, job) = compressed_job(20);
        k.enable_chain(&[
            crate::BackendConfig::compressed_ram(),
            crate::BackendConfig::ssd(PageCount::new(4)),
            crate::BackendConfig::remote(),
        ]);
        k.set_zswap_enabled(job, false).unwrap();
        while k.memcg(job).unwrap().stats().zswapped_pages > 0 {
            k.store_lifecycle_tick(job, &StorePressure::PAPER_DEFAULT)
                .unwrap();
        }
        assert_eq!(k.chain().unwrap().device_resident_pages(), 20);
        k.remove_memcg(job).unwrap();
        assert_eq!(k.chain().unwrap().device_resident_pages(), 0);
        let stats = k.chain_stats().unwrap();
        assert_eq!(stats[1].discards + stats[2].discards, 20);
    }

    fn prefetch_kernel(capacity: u64, mode: crate::PrefetchMode) -> (Kernel, JobId) {
        let mut k = Kernel::new(KernelConfig {
            capacity: PageCount::new(capacity),
            prefetch: crate::PrefetchConfig {
                mode,
                ..crate::PrefetchConfig::default()
            },
            ..KernelConfig::default()
        });
        let job = JobId::new(1);
        k.create_memcg(job, PageCount::new(capacity)).unwrap();
        (k, job)
    }

    /// Forces the job's huge entry at index 0 into zswap *without*
    /// splitting it — direct state surgery the split-first reclaim path
    /// never produces, isolating the entries-vs-frames discipline on the
    /// promotion side.
    fn zswap_huge_entry_whole(k: &mut Kernel, job: JobId) {
        let content = k.memcgs[&job].pages.content(0).clone();
        let h = match k.zswap.store(&content).unwrap() {
            crate::zswap::StoreOutcome::Stored(h) => h,
            o => panic!("synthetic page must fit the store: {o:?}"),
        };
        let size = k.zswap.stored_size(h).unwrap() as u64;
        let cg = k.memcgs.get_mut(&job).unwrap();
        assert!(cg.pages.is_huge(0));
        cg.pages.set_state(0, PageState::Zswapped(h));
        cg.stats.resident_pages -= crate::page::HUGE_SPAN as u64;
        cg.stats.zswapped_pages += 1;
        cg.stats.zswapped_bytes += size;
    }

    /// Satellite regression for the promotion path's side of
    /// `huge_page_scan_counts_entries_but_promotes_frames`: a predicted
    /// huge-page promotion moves [`crate::page::HUGE_SPAN`] frames but
    /// one entry (one issue, one decompression).
    #[test]
    fn prefetched_huge_page_promotion_moves_frames_but_one_entry() {
        let (mut k, job) = prefetch_kernel(10_000, crate::PrefetchMode::Stride);
        k.alloc_huge_pages(job, 1, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        zswap_huge_entry_whole(&mut k, job);
        let cfg = k.config.prefetch;
        k.memcgs
            .get_mut(&job)
            .unwrap()
            .prefetcher
            .enqueue(0, &cfg);
        k.run_scan();
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.prefetch_issued, 1, "one entry issued");
        assert_eq!(s.decompressions, 1, "one decompression");
        assert_eq!(
            s.resident_pages,
            crate::page::HUGE_SPAN as u64,
            "the whole span re-residented"
        );
        assert_eq!(s.zswapped_pages, 0);
        assert_eq!(s.usage(), PageCount::new(crate::page::HUGE_SPAN as u64));
    }

    /// The demand side of the same discipline: a fault on a huge zswapped
    /// entry restores all its frames while counting one decompression.
    #[test]
    fn demand_fault_on_huge_zswapped_entry_restores_frames() {
        let (mut k, job) = prefetch_kernel(10_000, crate::PrefetchMode::Off);
        k.alloc_huge_pages(job, 1, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        zswap_huge_entry_whole(&mut k, job);
        assert!(k.touch(job, PageId::new(0), false).unwrap());
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.resident_pages, crate::page::HUGE_SPAN as u64);
        assert_eq!(s.decompressions, 1);
    }

    fn compressed_prefetch_job(n: usize) -> (Kernel, JobId) {
        let (mut k, job) = prefetch_kernel(10_000, crate::PrefetchMode::Stride);
        k.set_zswap_enabled(job, true).unwrap();
        k.alloc_pages(job, n, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        for _ in 0..4 {
            k.run_scan();
        }
        k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
        assert_eq!(k.memcg(job).unwrap().stats().zswapped_pages, n as u64);
        (k, job)
    }

    /// The accuracy-counter conservation law: once every issued page has
    /// resolved (demand-touched, reclaimed, or torn down),
    /// `prefetch_used + prefetch_wasted == prefetch_issued`.
    #[test]
    fn prefetch_counters_conserve_issued() {
        let (mut k, job) = compressed_prefetch_job(32);
        // Sequential demand faults arm the stride and queue a prediction
        // for page 3.
        for i in 0..3 {
            k.touch(job, PageId::new(i), false).unwrap();
        }
        k.run_scan(); // drain issues page 3
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.prefetch_issued, 1);
        assert_eq!(s.prefetch_late, 0);
        // The demand touch lands on the already-resident prefetched page:
        // the stall was hidden.
        assert!(!k.touch(job, PageId::new(3), false).unwrap());
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.prefetch_used, 1);
        k.run_scan(); // issues the follow-on prediction (page 4)
        let fin = k.remove_memcg(job).unwrap();
        assert_eq!(fin.prefetch_issued, 2);
        assert_eq!(fin.prefetch_used, 1);
        assert_eq!(fin.prefetch_wasted, 1, "page 4 resolved at teardown");
        assert_eq!(
            fin.prefetch_used + fin.prefetch_wasted,
            fin.prefetch_issued,
            "conservation"
        );
    }

    /// A demand fault that beats the scan-cadence drain to a correctly
    /// predicted page counts as late, and the stale queue entry is gone.
    #[test]
    fn demand_fault_beating_drain_counts_late() {
        let (mut k, job) = compressed_prefetch_job(16);
        for i in 0..3 {
            k.touch(job, PageId::new(i), false).unwrap();
        }
        assert!(k.memcgs[&job].prefetcher.is_queued(3));
        // Page 3 is demand-faulted before any scan drains the queue.
        assert!(k.touch(job, PageId::new(3), false).unwrap());
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.prefetch_late, 1);
        assert_eq!(s.prefetch_issued, 0);
        assert!(!k.memcgs[&job].prefetcher.is_queued(3));
        // Machine stats surface the counters.
        let ms = k.machine_stats();
        assert_eq!(ms.prefetch_late, 1);
        assert_eq!(ms.prefetch_issued, 0);
    }

    /// Wasted resolution on the re-reclaim path: an issued page that ages
    /// back out untouched flips to wasted, and the flag is consumed.
    #[test]
    fn untouched_prefetch_resolves_wasted_on_reclaim() {
        let (mut k, job) = compressed_prefetch_job(16);
        for i in 0..3 {
            k.touch(job, PageId::new(i), false).unwrap();
        }
        k.run_scan(); // issues page 4's predecessor (page 3)
        assert_eq!(k.memcg(job).unwrap().stats().prefetch_issued, 1);
        // Never touch page 3 again; age it back past the threshold.
        for _ in 0..4 {
            k.run_scan();
        }
        k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
        let s = k.memcg(job).unwrap().stats();
        assert_eq!(s.prefetch_wasted, 1);
        assert!(s.zswapped_pages >= 1);
        assert_eq!(s.prefetch_used + s.prefetch_wasted, s.prefetch_issued);
    }

    #[test]
    fn real_content_roundtrips_through_fault() {
        use sdfm_compress::gen::{PageClass, PageGenerator};
        let (mut k, job) = kernel_with_job(10_000, 10_000);
        k.set_zswap_enabled(job, true).unwrap();
        let mut g = PageGenerator::new(5);
        let pages: Vec<bytes::Bytes> = (0..4)
            .map(|_| bytes::Bytes::from(g.generate(PageClass::Text)))
            .collect();
        let contents = pages.clone();
        k.alloc_pages(job, 4, |i| PageContent::Real(contents[i].clone()))
            .unwrap();
        for _ in 0..4 {
            k.run_scan();
        }
        k.reclaim_job(job, PageAge::from_scans(2)).unwrap();
        // touch() internally asserts decompressed bytes == original.
        for i in 0..4 {
            assert!(k.touch(job, PageId::new(i), false).unwrap());
        }
    }
}
