//! kstaled: the page-age scanner (§5.1).
//!
//! Every scan period (120 s), kstaled walks each memcg's pages, reads and
//! clears the accessed bit, and updates per-page ages:
//!
//! * accessed since the last scan → record the pre-reset age in the
//!   **promotion histogram** (this is the "age of the page when it is
//!   accessed"), then reset the age to zero. If the page was dirtied, clear
//!   its incompressible mark (its contents changed, so it may compress
//!   now);
//! * untouched → increment the age (saturating at 255 scans).
//!
//! After the walk it rebuilds the **cold-age histogram** from the new ages.
//! Pages already in zswap continue to age (they are unaccessed by
//! construction) and appear in the cold-age histogram — so the coverage
//! metric "zswap size / cold size" is well defined.

use crate::memcg::MemCgroup;
use sdfm_types::histogram::PageAge;

/// Counters from one kstaled pass over one memcg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanOutcome {
    /// Pages walked.
    pub pages_scanned: u64,
    /// Pages observed accessed since the previous scan.
    pub pages_accessed: u64,
    /// Accesses recorded in the promotion histogram (age ≥ 1 at access).
    pub would_be_promotions: u64,
    /// Incompressible marks cleared because the page was dirtied.
    pub incompressible_cleared: u64,
}

/// Runs one kstaled scan over a memcg, updating ages and both histograms.
pub fn scan_memcg(cg: &mut MemCgroup) -> ScanOutcome {
    let mut outcome = ScanOutcome::default();
    cg.cold_hist.clear();
    let mut incompressible_marked = 0u64;
    for page in &mut cg.pages {
        outcome.pages_scanned += 1;
        if page.flags.accessed {
            outcome.pages_accessed += 1;
            if page.age > PageAge::HOT {
                // Huge entries carry one accessed bit for all their
                // frames: an access is span would-be promotions (had the
                // region been split and compressed at base granularity).
                cg.promo_hist.record_promotion(page.age, page.span as u64);
                outcome.would_be_promotions += page.span as u64;
            }
            page.age = PageAge::HOT;
            page.flags.accessed = false;
            if page.flags.dirty {
                if page.flags.incompressible {
                    page.flags.incompressible = false;
                    outcome.incompressible_cleared += 1;
                }
                page.flags.dirty = false;
            }
        } else {
            page.age = page.age.incremented();
        }
        if page.flags.incompressible {
            incompressible_marked += 1;
        }
        cg.cold_hist.record_page(page.age, page.span as u64);
    }
    cg.stats.incompressible_marked = incompressible_marked;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Page, PageContent};
    use sdfm_types::ids::JobId;
    use sdfm_types::size::PageCount;

    fn memcg_with_pages(n: usize) -> MemCgroup {
        let mut cg = MemCgroup::new(JobId::new(1), PageCount::new(1 << 20));
        for _ in 0..n {
            cg.pages.push(Page::new(PageContent::synthetic_of_len(500)));
        }
        cg
    }

    #[test]
    fn untouched_pages_age_one_scan_per_scan() {
        let mut cg = memcg_with_pages(4);
        // First scan: all pages were just allocated (accessed), so they
        // reset to age 0.
        scan_memcg(&mut cg);
        assert_eq!(cg.cold_pages(PageAge::from_scans(1)).get(), 0);
        // Three more scans without accesses: age 3.
        for _ in 0..3 {
            scan_memcg(&mut cg);
        }
        assert_eq!(cg.cold_pages(PageAge::from_scans(3)).get(), 4);
        assert_eq!(cg.cold_pages(PageAge::from_scans(4)).get(), 0);
    }

    #[test]
    fn access_resets_age_and_records_promotion() {
        let mut cg = memcg_with_pages(2);
        scan_memcg(&mut cg);
        for _ in 0..5 {
            scan_memcg(&mut cg);
        }
        // Touch page 0 only.
        cg.pages[0].flags.accessed = true;
        let o = scan_memcg(&mut cg);
        assert_eq!(o.pages_accessed, 1);
        assert_eq!(o.would_be_promotions, 1);
        // The promotion was recorded at age 5.
        assert_eq!(
            cg.promotion_histogram()
                .promotions_colder_than(PageAge::from_scans(5)),
            1
        );
        assert_eq!(
            cg.promotion_histogram()
                .promotions_colder_than(PageAge::from_scans(6)),
            0
        );
        // Page 0 is hot again; page 1 kept aging.
        assert_eq!(cg.cold_pages(PageAge::from_scans(6)).get(), 1);
        assert_eq!(cg.working_set(PageAge::from_scans(1)).get(), 1);
    }

    #[test]
    fn access_at_age_zero_is_not_a_promotion() {
        let mut cg = memcg_with_pages(1);
        scan_memcg(&mut cg); // resets the allocation access
        cg.pages[0].flags.accessed = true; // hot-page access
        let o = scan_memcg(&mut cg);
        assert_eq!(o.pages_accessed, 1);
        assert_eq!(o.would_be_promotions, 0);
        assert!(cg.promotion_histogram().is_empty());
    }

    #[test]
    fn dirty_access_clears_incompressible_mark() {
        let mut cg = memcg_with_pages(1);
        scan_memcg(&mut cg);
        cg.pages[0].flags.incompressible = true;
        // Read access alone does not clear the mark.
        cg.pages[0].flags.accessed = true;
        let o = scan_memcg(&mut cg);
        assert_eq!(o.incompressible_cleared, 0);
        assert!(cg.pages[0].flags.incompressible);
        assert_eq!(cg.stats().incompressible_marked, 1);
        // A write does.
        cg.pages[0].flags.accessed = true;
        cg.pages[0].flags.dirty = true;
        let o = scan_memcg(&mut cg);
        assert_eq!(o.incompressible_cleared, 1);
        assert!(!cg.pages[0].flags.incompressible);
        assert_eq!(cg.stats().incompressible_marked, 0);
    }

    #[test]
    fn ages_saturate_at_255() {
        let mut cg = memcg_with_pages(1);
        for _ in 0..300 {
            scan_memcg(&mut cg);
        }
        assert_eq!(cg.cold_pages(PageAge::MAX).get(), 1);
    }

    #[test]
    fn cold_histogram_is_rebuilt_not_accumulated() {
        let mut cg = memcg_with_pages(3);
        scan_memcg(&mut cg);
        scan_memcg(&mut cg);
        // Total pages in the histogram must equal the page count, not grow.
        assert_eq!(cg.cold_age_histogram().total_pages(), 3);
    }
}
