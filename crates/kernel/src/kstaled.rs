//! kstaled: the page-age scanner (§5.1).
//!
//! Every scan period (120 s), kstaled walks each memcg's pages, reads and
//! clears the accessed bit, and updates per-page ages:
//!
//! * accessed since the last scan → record the pre-reset age in the
//!   **promotion histogram** (this is the "age of the page when it is
//!   accessed"), then reset the age to zero. If the page was dirtied, clear
//!   its incompressible mark (its contents changed, so it may compress
//!   now);
//! * untouched → increment the age (saturating at 255 scans).
//!
//! The cold-age histogram is **not** rebuilt after the walk: the
//! [`crate::page_table::PageTable`] keeps a live histogram that the sweep
//! updates incrementally (one bucket shift for the untouched population,
//! one move-to-HOT delta per accessed entry); the scan publishes a
//! snapshot of it into the memcg, preserving the "as of the last scan"
//! observable semantics. Pages already in zswap continue to age (they are
//! unaccessed by construction) and appear in the cold-age histogram — so
//! the coverage metric "zswap size / cold size" is well defined.

use crate::memcg::MemCgroup;

/// Counters from one kstaled pass over one memcg.
///
/// Units follow the U1 suffix convention: huge pages make *entries* and
/// *frames* diverge. A huge page is one page-table entry mapping
/// [`crate::page::HUGE_SPAN`] base-page frames, and its single accessed
/// bit covers all of them — so the walk counters below are entry-counted
/// while the promotion counter is frame-counted. The regression test
/// `huge_page_scan_counts_entries_but_promotes_frames` pins this split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanOutcome {
    /// Page-table entries walked (**entries**, not frames: a huge page
    /// counts once).
    pub pages_scanned: u64,
    /// Entries observed accessed since the previous scan (**entries**: a
    /// huge page has one accessed bit).
    pub pages_accessed: u64,
    /// Accesses recorded in the promotion histogram, weighted by span
    /// (**frames**: an accessed huge entry at age ≥ 1 contributes
    /// [`crate::page::HUGE_SPAN`] would-be promotions, as if the region
    /// had been split and compressed at base granularity).
    pub would_be_promotions: u64,
    /// Incompressible marks cleared because the page was dirtied
    /// (**entries**).
    pub incompressible_cleared: u64,
    /// Entries carrying the incompressible mark after this scan
    /// (**entries**; published to [`crate::MemcgStats`]).
    pub incompressible_marked: u64,
}

/// Runs one kstaled scan over a memcg, updating ages and both histograms.
pub fn scan_memcg(cg: &mut MemCgroup) -> ScanOutcome {
    let outcome = cg.pages.sweep(&mut cg.promo_hist);
    cg.stats.incompressible_marked = outcome.incompressible_marked;
    cg.cold_hist.clone_from(cg.pages.live_histogram());
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Page, PageContent, HUGE_SPAN};
    use sdfm_types::histogram::PageAge;
    use sdfm_types::ids::JobId;
    use sdfm_types::size::PageCount;

    fn memcg_with_pages(n: usize) -> MemCgroup {
        let mut cg = MemCgroup::new(JobId::new(1), PageCount::new(1 << 20));
        for _ in 0..n {
            cg.pages.push(Page::new(PageContent::synthetic_of_len(500)));
        }
        cg
    }

    #[test]
    fn untouched_pages_age_one_scan_per_scan() {
        let mut cg = memcg_with_pages(4);
        // First scan: all pages were just allocated (accessed), so they
        // reset to age 0.
        scan_memcg(&mut cg);
        assert_eq!(cg.cold_pages(PageAge::from_scans(1)).get(), 0);
        // Three more scans without accesses: age 3.
        for _ in 0..3 {
            scan_memcg(&mut cg);
        }
        assert_eq!(cg.cold_pages(PageAge::from_scans(3)).get(), 4);
        assert_eq!(cg.cold_pages(PageAge::from_scans(4)).get(), 0);
    }

    #[test]
    fn access_resets_age_and_records_promotion() {
        let mut cg = memcg_with_pages(2);
        scan_memcg(&mut cg);
        for _ in 0..5 {
            scan_memcg(&mut cg);
        }
        // Touch page 0 only.
        cg.pages.set_accessed(0, true);
        let o = scan_memcg(&mut cg);
        assert_eq!(o.pages_accessed, 1);
        assert_eq!(o.would_be_promotions, 1);
        // The promotion was recorded at age 5.
        assert_eq!(
            cg.promotion_histogram()
                .promotions_colder_than(PageAge::from_scans(5)),
            1
        );
        assert_eq!(
            cg.promotion_histogram()
                .promotions_colder_than(PageAge::from_scans(6)),
            0
        );
        // Page 0 is hot again; page 1 kept aging.
        assert_eq!(cg.cold_pages(PageAge::from_scans(6)).get(), 1);
        assert_eq!(cg.working_set(PageAge::from_scans(1)).get(), 1);
    }

    #[test]
    fn access_at_age_zero_is_not_a_promotion() {
        let mut cg = memcg_with_pages(1);
        scan_memcg(&mut cg); // resets the allocation access
        cg.pages.set_accessed(0, true); // hot-page access
        let o = scan_memcg(&mut cg);
        assert_eq!(o.pages_accessed, 1);
        assert_eq!(o.would_be_promotions, 0);
        assert!(cg.promotion_histogram().is_empty());
    }

    #[test]
    fn dirty_access_clears_incompressible_mark() {
        let mut cg = memcg_with_pages(1);
        scan_memcg(&mut cg);
        cg.pages.set_incompressible(0, true);
        // Read access alone does not clear the mark.
        cg.pages.set_accessed(0, true);
        let o = scan_memcg(&mut cg);
        assert_eq!(o.incompressible_cleared, 0);
        assert!(cg.pages.incompressible(0));
        assert_eq!(cg.stats().incompressible_marked, 1);
        // A write does.
        cg.pages.set_accessed(0, true);
        cg.pages.set_dirty(0, true);
        let o = scan_memcg(&mut cg);
        assert_eq!(o.incompressible_cleared, 1);
        assert!(!cg.pages.incompressible(0));
        assert_eq!(cg.stats().incompressible_marked, 0);
    }

    #[test]
    fn ages_saturate_at_255() {
        let mut cg = memcg_with_pages(1);
        for _ in 0..300 {
            scan_memcg(&mut cg);
        }
        assert_eq!(cg.cold_pages(PageAge::MAX).get(), 1);
    }

    #[test]
    fn cold_histogram_is_rebuilt_not_accumulated() {
        let mut cg = memcg_with_pages(3);
        scan_memcg(&mut cg);
        scan_memcg(&mut cg);
        // Total pages in the histogram must equal the page count, not grow.
        assert_eq!(cg.cold_age_histogram().total_pages(), 3);
    }

    #[test]
    fn incremental_histogram_matches_full_rebuild_after_every_scan() {
        let mut cg = memcg_with_pages(16);
        cg.pages
            .push(Page::new_huge(PageContent::synthetic_of_len(300)));
        for round in 0..8usize {
            for i in 0..cg.pages.len() {
                if (i + round) % 5 == 0 {
                    cg.pages.set_accessed(i, true);
                }
            }
            scan_memcg(&mut cg);
            assert_eq!(
                cg.cold_age_histogram(),
                &cg.pages.rebuilt_histogram(),
                "round {round}: published histogram diverged from rebuild"
            );
        }
    }

    /// Satellite regression test for the entries-vs-frames unit split
    /// documented on [`ScanOutcome`]: a huge page is scanned as one
    /// *entry* but promotes as [`HUGE_SPAN`] *frames*. The SoA sweep must
    /// not silently change either unit.
    #[test]
    fn huge_page_scan_counts_entries_but_promotes_frames() {
        let mut cg = MemCgroup::new(JobId::new(1), PageCount::new(1 << 20));
        cg.pages.push(Page::new(PageContent::synthetic_of_len(500)));
        cg.pages
            .push(Page::new_huge(PageContent::synthetic_of_len(500)));
        scan_memcg(&mut cg); // clears the allocation accesses
        scan_memcg(&mut cg); // ages both entries to 1
        cg.pages.set_accessed(0, true);
        cg.pages.set_accessed(1, true);
        let o = scan_memcg(&mut cg);
        assert_eq!(o.pages_scanned, 2, "entries, not frames");
        assert_eq!(o.pages_accessed, 2, "one accessed bit per entry");
        assert_eq!(
            o.would_be_promotions,
            1 + HUGE_SPAN as u64,
            "promotions are frame-weighted"
        );
        // The frame weighting flows into the promotion histogram too.
        assert_eq!(
            cg.promotion_histogram()
                .promotions_colder_than(PageAge::from_scans(1)),
            1 + HUGE_SPAN as u64
        );
        // And the cold-age histogram stays frame-weighted throughout.
        assert_eq!(
            cg.cold_age_histogram().total_pages(),
            1 + HUGE_SPAN as u64
        );
    }
}
