//! The simulated kernel memory-management layer.
//!
//! This crate reproduces, as a discrete-event simulation, the kernel half of
//! the paper's control plane (§5.1): per-page age tracking in `struct page`
//! metadata, the `kstaled` scanner that walks accessed bits on a 120 s
//! period and maintains per-job cold-age and promotion histograms, the
//! `kreclaimd` daemon that moves pages past the cold-age threshold into the
//! zswap store, and the zswap/zsmalloc store itself with the 2990-byte
//! incompressible cutoff and fail-fast memcg-limit semantics.
//!
//! The control plane above (the node agent, `sdfm-agent`) only ever observes
//! the kernel through the exported histograms and counters, exactly as in
//! the paper — so the algorithmic surface between the two layers is
//! faithful even though the machine is simulated.
//!
//! # Architecture
//!
//! [`Kernel`] is one machine's kernel. It owns:
//!
//! * a set of [`MemCgroup`]s (one per job) holding the job's pages;
//! * one **global** [`ZswapStore`] (per-machine arena, §5.1);
//! * the scan/reclaim machinery ([`kstaled`], [`kreclaimd`]);
//! * CPU-cost accounting for compression work ([`cost::CpuAccounting`]).
//!
//! Workloads drive it with [`Kernel::touch`] (page accesses) and the
//! cluster layer drives [`Kernel::run_scan`] / [`Kernel::reclaim_job`].
//!
//! # Examples
//!
//! ```
//! use sdfm_kernel::{Kernel, KernelConfig, PageContent};
//! use sdfm_types::prelude::*;
//!
//! let mut kernel = Kernel::new(KernelConfig::default());
//! let job = JobId::new(1);
//! kernel.create_memcg(job, PageCount::new(1024))?;
//! kernel.alloc_pages(job, 16, |_| PageContent::synthetic_of_len(100))?;
//! kernel.touch(job, PageId::new(0), false)?;
//! # Ok::<(), sdfm_kernel::KernelError>(())
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod cost;
mod error;
#[allow(clippy::module_inception)]
mod kernel;
pub mod kreclaimd;
pub mod kstaled;
pub mod memcg;
pub mod page;
pub mod page_table;
pub mod prefetch;
pub mod thermostat;
pub mod tiering;
pub mod writeback;
pub mod zswap;

pub use backend::{
    BackendConfig, BackendKind, BackendStats, ChainPolicy, DemotionChain, FarBackend, MAX_TIERS,
};
pub use cost::{CostModel, CostSource, CpuAccounting};
pub use error::KernelError;
pub use kernel::{Kernel, KernelConfig, MachineStats};
pub use memcg::{MemCgroup, MemcgStats};
pub use page::{Page, PageContent, PageState};
pub use page_table::PageTable;
pub use prefetch::{
    PrefetchConfig, PrefetchMode, PrefetchPolicy, PrefetchWindowCounts, Prefetcher,
};
pub use thermostat::{ThermostatEstimate, ThermostatSampler};
pub use tiering::{Tier1Config, Tier1Stats};
pub use writeback::{
    DemotionOutcome, HostPressureOutcome, LifecycleOutcome, StorePressure, StorePressureSource,
    WritebackOutcome,
};
pub use zswap::{StoreOutcome, ZswapStats, ZswapStore};
