//! Correlation-based prefetch/promotion prediction (ROADMAP item).
//!
//! Every cold-page access in the base system pays the full promotion
//! stall: the faulting job waits for a zswap decompression or a device
//! fault-back. This module adds the missing stage between the demotion
//! chain and the promotion path — a per-memcg predictor that watches the
//! demand access sequence and promotes the pages it expects next *before*
//! they are touched, at kstaled cadence, charging the exact same
//! [`crate::CostModel`] decompression and per-tier I/O costs a demand
//! fault would.
//!
//! Two predictors run behind one queue:
//!
//! * a **stride detector**: two consecutive equal non-zero deltas in the
//!   access sequence arm a stride, and each further access extrapolates
//!   one entry ahead;
//! * a bounded **Markov next-page table**: a `BTreeMap` of observed
//!   `prev → next` transitions (capped at [`MARKOV_EDGE_CAP`] edges,
//!   counts saturating) consulted when no stride is armed.
//!
//! Predictions land in a bounded FIFO queue drained once per kstaled
//! scan. Everything is integer state in ordered containers, so the stage
//! is deterministic and bit-identical under any thread count.
//!
//! # Counters
//!
//! Coverage/accuracy/timeliness flow through [`crate::MemcgStats`]:
//!
//! * `prefetch_issued` — predicted pages actually promoted;
//! * `prefetch_used` — issued pages later demand-touched while resident;
//! * `prefetch_wasted` — issued pages reclaimed, freed, or torn down
//!   before any demand touch;
//! * `prefetch_late` — demand faults on pages that were predicted but
//!   still queued (the prediction was right but the drain lost the race).
//!
//! Once every issued page has resolved, `used + wasted == issued` — the
//! conservation law the accuracy counters are defined by.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use sdfm_types::arith::permille_of;
use serde::{Deserialize, Serialize};

/// Upper bound on stored Markov transitions (`prev → next` edges) per
/// memcg. When full, existing edges keep counting but new edges are
/// dropped — the table degrades to its hottest correlations instead of
/// growing with the job's footprint.
pub const MARKOV_EDGE_CAP: usize = 1024;

/// Consecutive equal non-zero deltas required before the stride detector
/// starts extrapolating.
pub const STRIDE_ARM_STREAK: u32 = 2;

/// Which predictors the prefetcher runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub enum PrefetchMode {
    /// Prefetching disabled: the seed promotion path, every fault pays
    /// the full stall.
    #[default]
    Off,
    /// Stride detection only.
    Stride,
    /// Stride detection with the Markov next-page table as fallback.
    StrideMarkov,
}

/// Kernel-side prefetcher configuration, part of
/// [`crate::KernelConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Predictor selection; [`PrefetchMode::Off`] disables the stage.
    pub mode: PrefetchMode,
    /// How much of the queue one kstaled scan may drain, in per-mille of
    /// `queue_cap` (the autotuner dimension: 0 never issues, 1000 drains
    /// a full queue every scan).
    pub aggressiveness_permille: u32,
    /// Maximum queued predictions per memcg.
    pub queue_cap: u32,
}

impl Default for PrefetchConfig {
    /// Prefetching off (bit-identical to the pre-prefetch kernel).
    fn default() -> Self {
        PrefetchConfig {
            mode: PrefetchMode::Off,
            aggressiveness_permille: 1000,
            queue_cap: 64,
        }
    }
}

impl PrefetchConfig {
    /// Whether the stage does anything at all.
    pub fn enabled(&self) -> bool {
        self.mode != PrefetchMode::Off
    }

    /// Predictions one kstaled scan may promote:
    /// `⌊queue_cap × aggressiveness / 1000⌋` (aggressiveness clamped to
    /// 1000‰).
    pub fn drain_budget(&self) -> u64 {
        permille_of(
            self.queue_cap as u64,
            self.aggressiveness_permille.min(1000) as u64,
        )
    }
}

/// Per-memcg prefetch state: the access-sequence predictors and the
/// bounded prediction queue. All containers are ordered, so iteration is
/// deterministic.
#[derive(Debug, Default)]
pub struct Prefetcher {
    last: Option<u64>,
    last_delta: i64,
    streak: u32,
    markov: BTreeMap<u64, BTreeMap<u64, u32>>,
    markov_edges: usize,
    queue: VecDeque<u64>,
    queued: BTreeSet<u64>,
}

impl Prefetcher {
    /// Empty state: no history, nothing queued.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a demand access to page-table entry `idx`, updating both
    /// predictors and enqueueing at most one prediction. A no-op when the
    /// stage is disabled.
    pub fn record(&mut self, idx: u64, config: &PrefetchConfig) {
        if !config.enabled() {
            return;
        }
        let Some(last) = self.last else {
            self.last = Some(idx);
            return;
        };
        self.last = Some(idx);
        let delta = idx.wrapping_sub(last) as i64;
        if delta != 0 {
            if delta == self.last_delta {
                self.streak = self.streak.saturating_add(1);
            } else {
                self.streak = 1;
                self.last_delta = delta;
            }
            if config.mode == PrefetchMode::StrideMarkov {
                self.record_markov_edge(last, idx);
            }
        }
        let predicted = if delta != 0 && self.streak >= STRIDE_ARM_STREAK {
            idx.checked_add_signed(delta)
        } else if config.mode == PrefetchMode::StrideMarkov {
            self.best_successor(idx)
        } else {
            None
        };
        if let Some(next) = predicted {
            self.enqueue(next, config);
        }
    }

    fn record_markov_edge(&mut self, from: u64, to: u64) {
        if let Some(succ) = self.markov.get_mut(&from) {
            if let Some(count) = succ.get_mut(&to) {
                *count = count.saturating_add(1);
            } else if self.markov_edges < MARKOV_EDGE_CAP {
                succ.insert(to, 1);
                self.markov_edges += 1;
            }
        } else if self.markov_edges < MARKOV_EDGE_CAP {
            self.markov.insert(from, BTreeMap::from([(to, 1)]));
            self.markov_edges += 1;
        }
    }

    /// The most frequent observed successor of `idx`; ties break to the
    /// smallest entry index (BTreeMap order), keeping prediction
    /// deterministic.
    fn best_successor(&self, idx: u64) -> Option<u64> {
        let succ = self.markov.get(&idx)?;
        let mut best: Option<(u64, u32)> = None;
        for (&next, &count) in succ {
            let better = match best {
                Some((_, c)) => count > c,
                None => true,
            };
            if better {
                best = Some((next, count));
            }
        }
        best.map(|(next, _)| next)
    }

    /// Enqueues a prediction, dropping duplicates and anything past the
    /// queue cap (oldest predictions keep priority: timeliness favors the
    /// access history we saw first).
    pub(crate) fn enqueue(&mut self, idx: u64, config: &PrefetchConfig) {
        if self.queue.len() >= config.queue_cap as usize || !self.queued.insert(idx) {
            return;
        }
        self.queue.push_back(idx);
    }

    /// Removes a still-queued prediction for `idx`, returning whether one
    /// existed — the demand fault beat the drain, which the caller counts
    /// as a *late* prefetch.
    pub fn cancel(&mut self, idx: u64) -> bool {
        if !self.queued.remove(&idx) {
            return false;
        }
        self.queue.retain(|&q| q != idx);
        true
    }

    /// Pops up to `budget` queued predictions in FIFO order.
    pub fn drain(&mut self, budget: u64) -> Vec<u64> {
        let n = (budget as usize).min(self.queue.len());
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let Some(idx) = self.queue.pop_front() else {
                break;
            };
            self.queued.remove(&idx);
            out.push(idx);
        }
        out
    }

    /// Queued predictions right now.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether `idx` is currently queued.
    pub fn is_queued(&self, idx: u64) -> bool {
        self.queued.contains(&idx)
    }
}

/// Per-window prefetch counters produced by the statistical recurrence
/// ([`PrefetchPolicy::window_counts`]); the fleet simulator's fast path
/// and the offline model share this exact integer arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefetchWindowCounts {
    /// Predicted pages promoted ahead of demand.
    pub issued: u64,
    /// Issued pages the job demand-touched while still resident.
    pub used: u64,
    /// Issued pages reclaimed again before any demand touch.
    pub wasted: u64,
    /// Demand faults that beat the drain to a correctly predicted page.
    pub late: u64,
}

/// Fleet-model statistical mirror of the prefetcher, the `fleet_sim` /
/// fast-model counterpart of [`PrefetchConfig`] (mirroring how
/// `ChainPolicy` stands in for the page-level demotion chain). Carries no
/// per-page state — just the mode and aggressiveness plus fixed per-mille
/// effectiveness constants calibrated against the page-level kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchPolicy {
    /// Predictor selection, as in [`PrefetchConfig::mode`].
    pub mode: PrefetchMode,
    /// Drain aggressiveness in per-mille, as in
    /// [`PrefetchConfig::aggressiveness_permille`].
    pub aggressiveness_permille: u32,
}

impl PrefetchPolicy {
    /// Share of correctly predicted promotions whose demand fault still
    /// arrives before the scan-cadence drain (timeliness loss).
    pub const LATE_PERMILLE: u64 = 100;

    /// Extra issues per used prefetch that never see a demand touch
    /// (accuracy loss: the mispredictions that were promoted anyway).
    pub const WASTE_PERMILLE: u64 = 150;

    /// A policy with explicit aggressiveness (clamped at use to 1000‰).
    pub fn new(mode: PrefetchMode, aggressiveness_permille: u32) -> Self {
        PrefetchPolicy {
            mode,
            aggressiveness_permille,
        }
    }

    /// Full-aggressiveness policy for `mode`.
    pub fn paper_default(mode: PrefetchMode) -> Self {
        PrefetchPolicy::new(mode, 1000)
    }

    /// Whether the policy issues anything at all.
    pub fn enabled(&self) -> bool {
        self.mode != PrefetchMode::Off && self.aggressiveness_permille > 0
    }

    /// Share of a window's would-be promotions the predictors cover
    /// (coverage ceiling before aggressiveness/timeliness losses).
    pub fn predict_permille(&self) -> u64 {
        match self.mode {
            PrefetchMode::Off => 0,
            PrefetchMode::Stride => 450,
            PrefetchMode::StrideMarkov => 700,
        }
    }

    /// The page-level [`PrefetchConfig`] this policy stands in for, used
    /// when a fleet job runs below the fidelity cutoff.
    pub fn kernel_config(&self) -> PrefetchConfig {
        PrefetchConfig {
            mode: self.mode,
            aggressiveness_permille: self.aggressiveness_permille,
            ..PrefetchConfig::default()
        }
    }

    /// The shared window recurrence: given the window's demand promotion
    /// mass `promos` (what the job would have faulted on with no
    /// prefetching), derive the issued/used/wasted/late split. Exact
    /// integer arithmetic — `used + wasted == issued` by construction,
    /// and `used ≤ promos`, so the caller's demand promotions
    /// (`promos - used`) never underflow.
    pub fn window_counts(&self, promos: u64) -> PrefetchWindowCounts {
        if !self.enabled() {
            return PrefetchWindowCounts::default();
        }
        let predictable = permille_of(promos, self.predict_permille());
        let attempted = permille_of(predictable, self.aggressiveness_permille.min(1000) as u64);
        let late = permille_of(attempted, Self::LATE_PERMILLE);
        let used = attempted - late;
        let wasted = permille_of(used, Self::WASTE_PERMILLE);
        PrefetchWindowCounts {
            issued: used + wasted,
            used,
            wasted,
            late,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mode: PrefetchMode) -> PrefetchConfig {
        PrefetchConfig {
            mode,
            ..PrefetchConfig::default()
        }
    }

    #[test]
    fn stride_arms_after_two_equal_deltas() {
        let mut p = Prefetcher::new();
        let c = cfg(PrefetchMode::Stride);
        p.record(10, &c);
        p.record(12, &c); // delta 2, streak 1
        assert_eq!(p.queue_len(), 0);
        p.record(14, &c); // delta 2, streak 2 → predict 16
        assert_eq!(p.drain(10), vec![16]);
        p.record(16, &c); // streak 3 → predict 18
        assert!(p.is_queued(18));
    }

    #[test]
    fn stride_break_resets_streak() {
        let mut p = Prefetcher::new();
        let c = cfg(PrefetchMode::Stride);
        for idx in [0, 3, 6, 100, 104] {
            p.record(idx, &c);
        }
        // 0→3→6 armed stride 3 (predicting 9); the jump to 100 and the
        // new delta 4 are both single-streak, so nothing else queued.
        assert_eq!(p.drain(10), vec![9]);
    }

    #[test]
    fn markov_predicts_most_frequent_successor() {
        let mut p = Prefetcher::new();
        let c = cfg(PrefetchMode::StrideMarkov);
        // Train 5→7 twice and 5→2 once with alternating jumps that never
        // arm a stride.
        for idx in [5, 7, 40, 5, 7, 41, 5, 2, 43, 5] {
            p.record(idx, &c);
        }
        // The final access to 5 consults the table: successor 7 (count 2)
        // beats 2 (count 1).
        assert!(p.is_queued(7));
        assert!(!p.is_queued(2));
    }

    #[test]
    fn markov_tie_breaks_to_smallest_index() {
        let mut p = Prefetcher::new();
        let c = cfg(PrefetchMode::StrideMarkov);
        for idx in [9, 30, 50, 9, 20, 51] {
            p.record(idx, &c);
        }
        p.drain(10); // discard predictions made during training
        p.record(9, &c);
        // 9→30 and 9→20 both count 1: the smaller successor wins.
        assert_eq!(p.drain(10), vec![20]);
    }

    #[test]
    fn queue_caps_and_dedups() {
        let mut p = Prefetcher::new();
        let c = PrefetchConfig {
            mode: PrefetchMode::Stride,
            queue_cap: 2,
            ..PrefetchConfig::default()
        };
        for i in 0..20u64 {
            p.enqueue(i % 3, &c);
        }
        assert_eq!(p.queue_len(), 2);
        assert_eq!(p.drain(10), vec![0, 1]);
    }

    #[test]
    fn cancel_reports_and_removes_queued_predictions() {
        let mut p = Prefetcher::new();
        let c = cfg(PrefetchMode::Stride);
        p.enqueue(4, &c);
        assert!(p.cancel(4));
        assert!(!p.cancel(4));
        assert_eq!(p.queue_len(), 0);
    }

    #[test]
    fn markov_edge_cap_bounds_the_table() {
        let mut p = Prefetcher::new();
        let c = cfg(PrefetchMode::StrideMarkov);
        // Far more distinct transitions than the cap; deltas vary so no
        // stride arms.
        let mut idx = 0u64;
        for step in 0..(MARKOV_EDGE_CAP as u64 * 3) {
            idx += 1 + (step % 7);
            p.record(idx, &c);
        }
        assert!(p.markov_edges <= MARKOV_EDGE_CAP);
        let edges: usize = p.markov.values().map(|s| s.len()).sum();
        assert_eq!(edges, p.markov_edges);
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut p = Prefetcher::new();
        let c = cfg(PrefetchMode::Off);
        for idx in [1, 2, 3, 4, 5] {
            p.record(idx, &c);
        }
        assert_eq!(p.queue_len(), 0);
        assert!(p.markov.is_empty());
    }

    #[test]
    fn drain_budget_scales_with_aggressiveness() {
        let mut c = cfg(PrefetchMode::Stride);
        assert_eq!(c.drain_budget(), 64);
        c.aggressiveness_permille = 500;
        assert_eq!(c.drain_budget(), 32);
        c.aggressiveness_permille = 0;
        assert_eq!(c.drain_budget(), 0);
        c.aggressiveness_permille = 5000; // clamped
        assert_eq!(c.drain_budget(), 64);
    }

    #[test]
    fn window_counts_conserve_and_scale() {
        let policy = PrefetchPolicy::paper_default(PrefetchMode::StrideMarkov);
        for promos in [0u64, 1, 17, 1000, 123_456] {
            let c = policy.window_counts(promos);
            assert_eq!(c.used + c.wasted, c.issued, "conservation at {promos}");
            assert!(c.used <= promos);
        }
        let half = PrefetchPolicy::new(PrefetchMode::StrideMarkov, 500);
        assert!(half.window_counts(1000).issued < policy.window_counts(1000).issued);
        let off = PrefetchPolicy::paper_default(PrefetchMode::Off);
        assert_eq!(off.window_counts(1000), PrefetchWindowCounts::default());
        let stride = PrefetchPolicy::paper_default(PrefetchMode::Stride);
        assert!(stride.window_counts(1000).issued < policy.window_counts(1000).issued);
    }
}
