//! Per-page metadata: the simulated `struct page`.
//!
//! The paper packs an 8-bit age into the existing `struct page` (§5.1 —
//! "we do not incur any storage overhead for tracking the ages"). Our
//! simulated page descriptor carries the same age plus the flag bits the
//! control plane reads: accessed, dirty, unevictable/mlocked, and the
//! incompressible mark set when zswap rejects a page.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use sdfm_compress::gen::PageClass;
use sdfm_compress::zsmalloc::ZsHandle;
use sdfm_types::histogram::PageAge;

/// Base pages per 2 MiB huge page on x86-64.
pub const HUGE_SPAN: u16 = 512;

/// Where a page's data currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// In DRAM (near memory).
    Resident,
    /// Compressed in the zswap store (far memory); the handle locates the
    /// payload in the zsmalloc arena.
    Zswapped(ZsHandle),
    /// Stored uncompressed in a device tier of the demotion chain (§8
    /// multi-tier configuration); the index names the chain tier holding
    /// the page. Never points at a compressed-RAM tier — those pages are
    /// `Zswapped`.
    Demoted(u8),
}

/// The bytes (or statistical description) backing a page.
///
/// Functional simulations carry real 4 KiB contents so the zswap store
/// actually compresses and decompresses them; fleet-scale simulations carry
/// a synthetic descriptor — the page class and a pre-sampled compressed
/// payload length — so millions of page events stay cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageContent {
    /// Real page contents (must be exactly 4 KiB when stored).
    Real(Bytes),
    /// Statistical contents: class plus the payload size the codec would
    /// produce.
    Synthetic {
        /// The content class (for reporting).
        class: PageClass,
        /// The compressed payload length the codec would produce.
        payload_len: u16,
    },
}

impl PageContent {
    /// Synthetic content with an explicit payload length and an unspecified
    /// class (structured records, the most common compressible class).
    pub fn synthetic_of_len(payload_len: usize) -> Self {
        PageContent::Synthetic {
            class: PageClass::StructuredRecords,
            payload_len: payload_len.min(u16::MAX as usize) as u16,
        }
    }

    /// Synthetic content of a class with a sampled payload length.
    pub fn synthetic(class: PageClass, payload_len: usize) -> Self {
        PageContent::Synthetic {
            class,
            payload_len: payload_len.min(u16::MAX as usize) as u16,
        }
    }

    /// Real content from bytes.
    pub fn real(bytes: impl Into<Bytes>) -> Self {
        PageContent::Real(bytes.into())
    }
}

/// Flag bits of the simulated `struct page`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageFlags {
    /// MMU accessed bit: set by [`crate::Kernel::touch`], cleared by
    /// kstaled at each scan.
    pub accessed: bool,
    /// Set on writes; clears the incompressible mark at the next scan.
    pub dirty: bool,
    /// Excluded from reclaim (mlocked / unevictable LRU).
    pub unevictable: bool,
    /// zswap rejected this page (payload would exceed the cutoff); skip it
    /// until it is dirtied again (§5.1).
    pub incompressible: bool,
    /// Poisoned by the Thermostat-style sampler: the next access records a
    /// soft fault for rate estimation.
    pub poisoned: bool,
}

/// One page-table entry owned by a memcg: a base page (`span == 1`) or a
/// huge page (`span == 512`, one PMD mapping 2 MiB).
///
/// Huge pages carry one accessed bit for the whole region — the coarse
/// access information §7 alludes to. They cannot enter the zswap store
/// directly; kreclaimd splits a fully-cold huge page into base pages
/// first (mirroring the kernel's split-before-swap behavior).
#[derive(Debug, Clone)]
pub struct Page {
    /// Where the data lives.
    pub state: PageState,
    /// Idle age in scan periods.
    pub age: PageAge,
    /// Flag bits.
    pub flags: PageFlags,
    /// Backing content.
    pub content: PageContent,
    /// Set when a poisoned page is accessed (read by the sampler at the
    /// end of its period).
    pub sample_faulted: bool,
    /// Base-page frames this entry maps (1 or [`HUGE_SPAN`]).
    pub span: u16,
}

impl Page {
    /// Creates a fresh resident page. New pages start accessed (the
    /// allocation itself touched them).
    pub fn new(content: PageContent) -> Self {
        Page {
            state: PageState::Resident,
            age: PageAge::HOT,
            flags: PageFlags {
                accessed: true,
                dirty: true,
                unevictable: false,
                incompressible: false,
                poisoned: false,
            },
            content,
            sample_faulted: false,
            span: 1,
        }
    }

    /// Creates a huge page mapping [`HUGE_SPAN`] frames. The synthetic or
    /// real content describes each constituent base page (clones are made
    /// when the huge page splits).
    pub fn new_huge(content: PageContent) -> Self {
        let mut p = Page::new(content);
        p.span = HUGE_SPAN;
        p
    }

    /// Creates an unevictable (mlocked) resident page.
    pub fn new_unevictable(content: PageContent) -> Self {
        let mut p = Page::new(content);
        p.flags.unevictable = true;
        p
    }

    /// True when the page is in the zswap store.
    pub fn is_zswapped(&self) -> bool {
        matches!(self.state, PageState::Zswapped(_))
    }

    /// True for a huge (multi-frame) entry.
    pub fn is_huge(&self) -> bool {
        self.span > 1
    }

    /// Whether kreclaimd may move this page to far memory under
    /// `threshold`: resident, old enough, evictable, and not marked
    /// incompressible.
    pub fn reclaim_eligible(&self, threshold: PageAge) -> bool {
        matches!(self.state, PageState::Resident)
            && self.age >= threshold
            && threshold > PageAge::HOT
            && !self.flags.unevictable
            && !self.flags.incompressible
            && !self.flags.accessed
    }

    /// Whether the page may demote to an uncompressed device tier of the
    /// chain: like [`reclaim_eligible`](Self::reclaim_eligible) but the
    /// incompressible mark does not matter — devices store raw pages.
    pub fn demote_eligible(&self, threshold: PageAge) -> bool {
        matches!(self.state, PageState::Resident)
            && self.age >= threshold
            && threshold > PageAge::HOT
            && !self.flags.unevictable
            && !self.flags.accessed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_pages_are_hot_resident_and_accessed() {
        let p = Page::new(PageContent::synthetic_of_len(500));
        assert_eq!(p.state, PageState::Resident);
        assert_eq!(p.age, PageAge::HOT);
        assert!(p.flags.accessed);
        assert!(p.flags.dirty);
        assert!(!p.is_zswapped());
    }

    #[test]
    fn reclaim_eligibility_rules() {
        let t = PageAge::from_scans(2);
        let mut p = Page::new(PageContent::synthetic_of_len(500));
        p.flags.accessed = false;
        assert!(!p.reclaim_eligible(t), "hot page not eligible");
        p.age = PageAge::from_scans(3);
        assert!(p.reclaim_eligible(t));
        p.flags.unevictable = true;
        assert!(!p.reclaim_eligible(t), "mlocked page not eligible");
        p.flags.unevictable = false;
        p.flags.incompressible = true;
        assert!(!p.reclaim_eligible(t), "incompressible mark blocks reclaim");
        p.flags.incompressible = false;
        p.flags.accessed = true;
        assert!(
            !p.reclaim_eligible(t),
            "freshly accessed page must survive until the next scan"
        );
    }

    #[test]
    fn threshold_zero_reclaims_nothing() {
        let mut p = Page::new(PageContent::synthetic_of_len(500));
        p.flags.accessed = false;
        p.age = PageAge::MAX;
        assert!(!p.reclaim_eligible(PageAge::HOT));
    }

    #[test]
    fn unevictable_constructor_sets_flag() {
        let p = Page::new_unevictable(PageContent::synthetic_of_len(100));
        assert!(p.flags.unevictable);
    }

    #[test]
    fn synthetic_content_clamps_len() {
        match PageContent::synthetic_of_len(1_000_000) {
            PageContent::Synthetic { payload_len, .. } => {
                assert_eq!(payload_len, u16::MAX)
            }
            _ => panic!("expected synthetic"),
        }
    }
}
