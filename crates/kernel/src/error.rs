//! Kernel-layer errors.

use std::error::Error;
use std::fmt;

use sdfm_types::ids::{JobId, PageId};
use sdfm_types::size::PageCount;

/// Errors from kernel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// No memcg exists for the job.
    NoSuchMemcg {
        /// The missing job.
        job: JobId,
    },
    /// A memcg already exists for the job.
    MemcgExists {
        /// The duplicate job.
        job: JobId,
    },
    /// A page index is out of range for the job's memcg.
    NoSuchPage {
        /// The job whose memcg was addressed.
        job: JobId,
        /// The out-of-range page.
        page: PageId,
    },
    /// The allocation would push the memcg over its limit; the paper's
    /// fail-fast policy applies (§5.1) — the job should be killed and
    /// rescheduled, not squeezed into zswap.
    MemcgOverLimit {
        /// The job at its limit.
        job: JobId,
        /// The memcg limit.
        limit: PageCount,
        /// Usage the allocation would have reached.
        attempted: PageCount,
    },
    /// The machine has no free frames left even after direct reclaim.
    OutOfMemory {
        /// Frames requested.
        requested: PageCount,
        /// Frames free.
        free: PageCount,
    },
    /// A zswap handle no longer resolves to a live arena object. The
    /// kernel owns every live handle, so a stale handle means the store
    /// and the page tables disagree — the caller must treat the store as
    /// inconsistent rather than crash the machine.
    StaleHandle,
    /// The store's own data failed an internal consistency check (a
    /// payload would not fit the arena, or did not round-trip).
    StoreCorrupt {
        /// What the store was doing when the inconsistency surfaced.
        detail: &'static str,
    },
    /// An operation required the tier-1 device but none is attached.
    Tier1Missing,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchMemcg { job } => write!(f, "no memcg for {job}"),
            KernelError::MemcgExists { job } => write!(f, "memcg for {job} already exists"),
            KernelError::NoSuchPage { job, page } => {
                write!(f, "{job} has no page {page}")
            }
            KernelError::MemcgOverLimit {
                job,
                limit,
                attempted,
            } => write!(
                f,
                "{job} over memcg limit: {attempted} > {limit} (fail-fast)"
            ),
            KernelError::OutOfMemory { requested, free } => {
                write!(f, "machine out of memory: need {requested}, {free} free")
            }
            KernelError::StaleHandle => {
                write!(f, "stale zswap handle: store and page tables disagree")
            }
            KernelError::StoreCorrupt { detail } => {
                write!(f, "zswap store inconsistency: {detail}")
            }
            KernelError::Tier1Missing => {
                write!(f, "tier-1 operation without an attached device")
            }
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = KernelError::NoSuchMemcg { job: JobId::new(3) };
        assert_eq!(e.to_string(), "no memcg for job-3");
        let e = KernelError::MemcgOverLimit {
            job: JobId::new(1),
            limit: PageCount::new(10),
            attempted: PageCount::new(11),
        };
        assert!(e.to_string().contains("fail-fast"));
    }

    #[test]
    fn lifecycle_error_messages() {
        assert!(KernelError::StaleHandle.to_string().contains("stale"));
        let e = KernelError::StoreCorrupt {
            detail: "payload did not round-trip",
        };
        assert!(e.to_string().contains("round-trip"));
        assert!(KernelError::Tier1Missing.to_string().contains("tier-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<KernelError>();
    }
}
