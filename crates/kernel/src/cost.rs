//! CPU-cost and realized-compression accounting for compression work.
//!
//! zswap's only hardware cost is CPU cycles (§3.1); Figures 8 and 9b report
//! exactly those: per-job and per-machine fractions of CPU spent on
//! compression and decompression, and the decompression latency
//! distribution. The [`CostModel`] carries per-page costs *and* the
//! realized compression outcome (ratio of stored pages, rejection
//! fraction) — either the paper's figures or values measured against this
//! crate's real codecs — and [`CpuAccounting`] accumulates charged time,
//! counting rejected compression attempts separately (the paper pays
//! compression CPU on rejects too, §5.1).

use serde::{Deserialize, Serialize};
use std::time::Instant;

use sdfm_compress::codec::CodecKind;
use sdfm_compress::gen::{CompressibilityMix, PageGenerator};
use sdfm_compress::measure::ClassPayloadTable;
use sdfm_types::arith::permille_ratio;
use sdfm_types::size::PAGE_SIZE;
use sdfm_types::time::SimDuration;

/// Where a [`CostModel`]'s numbers came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostSource {
    /// The paper's published figures (§5.1, §6.3).
    PaperModel,
    /// Measured against this workspace's real codecs.
    Measured,
}

/// Per-page CPU costs in nanoseconds, plus the realized compression
/// outcome the costs were measured with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of compressing one 4 KiB page (including rejected attempts).
    pub compress_ns: u64,
    /// Cost of decompressing one page on promotion.
    pub decompress_ns: u64,
    /// Realized compression ratio of *stored* pages, in per-mille
    /// (3000 = 3.00×). Sizes the compressed store: `pages` stored pages
    /// occupy `pages / ratio` page frames of real memory.
    pub ratio_permille: u32,
    /// Fraction of compression attempts the §5.1 cutoff rejects, in
    /// per-mille.
    pub rejected_permille: u32,
    /// Provenance of the numbers above.
    pub source: CostSource,
}

impl CostModel {
    /// The paper's measured figures: ~6.4 µs median decompression (§6.3),
    /// compression of the same order (lzo compresses slightly slower than
    /// it decompresses), a 3× median ratio and 31% incompressible pages
    /// (Figure 9a).
    pub const PAPER_DEFAULT: CostModel = CostModel {
        compress_ns: 10_000,
        decompress_ns: 6_400,
        ratio_permille: 3000,
        rejected_permille: 310,
        source: CostSource::PaperModel,
    };

    /// Mean per-page cost from a total elapsed time over `pages` pages.
    ///
    /// This is the calibration arithmetic, kept pure so it can be tested
    /// without a clock. Rounds *up* and floors at 1 ns: the historical
    /// `total / pages` integer division truncated toward zero, so a fast
    /// codec on a fast host could calibrate to 0 ns/page and silently
    /// erase compression overhead from every downstream figure.
    pub fn per_page_ns(total_ns: u128, pages: u64) -> u64 {
        if pages == 0 {
            return 1;
        }
        let per = total_ns.div_ceil(pages as u128);
        u64::try_from(per).unwrap_or(u64::MAX).max(1)
    }

    /// A deterministic model: paper timing figures, but ratio and
    /// rejection fraction *measured* by running `kind`'s real codec over
    /// generated fleet-mix pages (no wall clock involved — safe anywhere
    /// in the determinism scope).
    pub fn measured_ratios(kind: CodecKind) -> CostModel {
        let table = ClassPayloadTable::measured_default(kind);
        let mix = CompressibilityMix::fleet_default();
        CostModel {
            ratio_permille: table.ratio_permille(&mix),
            rejected_permille: table.rejected_permille(&mix),
            source: CostSource::Measured,
            ..CostModel::PAPER_DEFAULT
        }
    }

    /// Measures the real codec on this host: compresses and decompresses a
    /// sample of fleet-mix pages and returns mean per-page costs, plus the
    /// realized ratio/rejection of the same codec.
    ///
    /// Used by benches so reported overheads reflect the actual
    /// implementation rather than the paper's hardware. This is the one
    /// wall-clock read in the simulated kernel; `sdfm-lint` grants this
    /// file a policy-level D1 allowance because the measured durations
    /// parameterize the cost model but never feed back into simulated
    /// state or RNG streams.
    pub fn calibrate(kind: CodecKind, sample_pages: usize) -> CostModel {
        let codec = kind.build();
        let mix = CompressibilityMix::fleet_default();
        let mut gen = PageGenerator::new(0x5EED);
        let pages: Vec<Vec<u8>> = (0..sample_pages.max(8))
            .map(|_| gen.generate_from_mix(&mix).1)
            .collect();
        let mut compressed = Vec::new();
        let t0 = Instant::now();
        let mut bufs = Vec::with_capacity(pages.len());
        for p in &pages {
            let mut buf = Vec::new();
            codec.compress(p, &mut buf);
            bufs.push(buf);
        }
        let compress_ns = Self::per_page_ns(t0.elapsed().as_nanos(), pages.len() as u64);
        let t1 = Instant::now();
        for buf in &bufs {
            compressed.clear();
            // Incompressible pages never reach decompression in production,
            // but decoding them is still well-defined; include them.
            codec
                .decompress(buf, &mut compressed)
                // sdfm-lint: allow(P1) reason="calibration decodes the stream it just encoded in the same loop; a failure is a codec bug, not a machine state"
                .expect("self-produced stream decodes");
        }
        let decompress_ns = Self::per_page_ns(t1.elapsed().as_nanos(), pages.len() as u64);
        CostModel {
            compress_ns,
            decompress_ns,
            ..Self::measured_ratios(kind)
        }
    }

    /// The realized compression ratio as a float (3000‰ → 3.0).
    pub fn ratio(&self) -> f64 {
        self.ratio_permille.max(1000) as f64 / 1000.0
    }

    /// Page frames of real memory needed to hold `pages` compressed pages
    /// at the realized ratio. Rounds up; never less than 1 for a non-empty
    /// store.
    pub fn store_frames(&self, pages: u64) -> u64 {
        if pages == 0 {
            return 0;
        }
        (pages * 1000).div_ceil(self.ratio_permille.max(1000) as u64)
    }

    /// Compressed bytes `pages` stored pages occupy at the realized ratio.
    pub fn store_bytes(&self, pages: u64) -> u64 {
        permille_ratio(pages * PAGE_SIZE as u64, self.ratio_permille.max(1000) as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::PAPER_DEFAULT
    }
}

/// Accumulated CPU time charged to compression work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CpuAccounting {
    /// Total nanoseconds charged to compression (including rejections).
    pub compress_ns: u64,
    /// Total nanoseconds charged to decompression.
    pub decompress_ns: u64,
    /// Compression events charged (including rejected attempts).
    pub compress_events: u64,
    /// Decompression events charged.
    pub decompress_events: u64,
    /// The subset of `compress_events` whose page the cutoff rejected —
    /// cycles spent with nothing stored. The paper charges these too
    /// (§5.1: the incompressible page stays in DRAM but the compression
    /// attempt was real work).
    pub rejected_compress_events: u64,
    /// Total nanoseconds charged to device-tier traffic (demotion stores
    /// and fault-back loads across the chain, including transfer time).
    /// Historically the tier device tracked its own `ns_charged` that
    /// never reached this ledger; every backend operation now flows here
    /// like writeback decompressions do.
    pub tier_io_ns: u64,
    /// Device-tier operations charged (stores + loads).
    pub tier_io_events: u64,
}

impl CpuAccounting {
    /// Charges one page compression that stored its page.
    pub fn charge_compress(&mut self, model: &CostModel) {
        self.compress_ns += model.compress_ns;
        self.compress_events += 1;
    }

    /// Charges one compression attempt the cutoff rejected: same CPU cost
    /// as a stored page, counted in `compress_events` *and*
    /// `rejected_compress_events`.
    pub fn charge_rejected_compress(&mut self, model: &CostModel) {
        self.charge_compress(model);
        self.rejected_compress_events += 1;
    }

    /// Charges one page decompression.
    pub fn charge_decompress(&mut self, model: &CostModel) {
        self.decompress_ns += model.decompress_ns;
        self.decompress_events += 1;
    }

    /// Charges one device-tier operation (a demotion store or a
    /// fault-back load) at the backend's per-op cost.
    pub fn charge_tier_io(&mut self, op_ns: u64) {
        self.tier_io_ns += op_ns;
        self.tier_io_events += 1;
    }

    /// Fraction of `cpu_time` spent compressing, where `cpu_time` is the
    /// CPU time the job/machine consumed over the accounting window
    /// (`cores × wall time`). Returns 0 for an empty window.
    pub fn compress_overhead(&self, cores: f64, wall: SimDuration) -> f64 {
        Self::fraction(self.compress_ns, cores, wall)
    }

    /// Fraction of `cpu_time` spent decompressing.
    pub fn decompress_overhead(&self, cores: f64, wall: SimDuration) -> f64 {
        Self::fraction(self.decompress_ns, cores, wall)
    }

    fn fraction(ns: u64, cores: f64, wall: SimDuration) -> f64 {
        let denom = cores * wall.as_secs() as f64 * 1e9;
        if denom <= 0.0 {
            0.0
        } else {
            ns as f64 / denom
        }
    }

    /// Merges another accounting into this one.
    pub fn merge(&mut self, other: &CpuAccounting) {
        self.compress_ns += other.compress_ns;
        self.decompress_ns += other.decompress_ns;
        self.compress_events += other.compress_events;
        self.decompress_events += other.decompress_events;
        self.rejected_compress_events += other.rejected_compress_events;
        self.tier_io_ns += other.tier_io_ns;
        self.tier_io_events += other.tier_io_events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_order_of_magnitude() {
        let m = CostModel::default();
        assert_eq!(m.decompress_ns, 6_400);
        assert!(m.compress_ns >= m.decompress_ns);
        assert_eq!(m.ratio_permille, 3000);
        assert_eq!(m.rejected_permille, 310);
        assert_eq!(m.source, CostSource::PaperModel);
    }

    #[test]
    fn store_bytes_survives_fleet_scale_page_counts() {
        // The old `bytes * 1000 / ratio` wrapped once `bytes` crossed
        // u64::MAX / 1000 (~2^54 pages); the widened permille_ratio must
        // return the exact quotient instead of a wrapped remnant.
        let m = CostModel::PAPER_DEFAULT;
        let pages = 1u64 << 50;
        let bytes = pages * PAGE_SIZE as u64; // 2^62, * 1000 would wrap
        assert_eq!(m.store_bytes(pages), bytes / 3);
    }

    #[test]
    fn charging_accumulates() {
        let m = CostModel::PAPER_DEFAULT;
        let mut acc = CpuAccounting::default();
        acc.charge_compress(&m);
        acc.charge_compress(&m);
        acc.charge_decompress(&m);
        assert_eq!(acc.compress_events, 2);
        assert_eq!(acc.decompress_events, 1);
        assert_eq!(acc.compress_ns, 20_000);
        assert_eq!(acc.decompress_ns, 6_400);
        assert_eq!(acc.rejected_compress_events, 0);
    }

    #[test]
    fn rejected_attempts_cost_the_same_and_are_counted_apart() {
        let m = CostModel::PAPER_DEFAULT;
        let mut acc = CpuAccounting::default();
        acc.charge_compress(&m);
        acc.charge_rejected_compress(&m);
        // The wasted attempt burned the same cycles...
        assert_eq!(acc.compress_ns, 2 * m.compress_ns);
        // ...and is visible both in the total and in its own counter.
        assert_eq!(acc.compress_events, 2);
        assert_eq!(acc.rejected_compress_events, 1);
    }

    #[test]
    fn overhead_fractions() {
        let acc = CpuAccounting {
            compress_ns: 1_000_000_000, // 1 s of compression
            ..Default::default()
        };
        // 1 core for 100 s -> 1% overhead.
        let f = acc.compress_overhead(1.0, SimDuration::from_secs(100));
        assert!((f - 0.01).abs() < 1e-12);
        assert_eq!(
            acc.decompress_overhead(1.0, SimDuration::from_secs(100)),
            0.0
        );
        assert_eq!(acc.compress_overhead(0.0, SimDuration::from_secs(100)), 0.0);
        assert_eq!(acc.compress_overhead(1.0, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CpuAccounting {
            compress_ns: 10,
            decompress_ns: 20,
            compress_events: 1,
            decompress_events: 2,
            rejected_compress_events: 1,
            tier_io_ns: 30,
            tier_io_events: 3,
        };
        a.merge(&a.clone());
        assert_eq!(a.compress_ns, 20);
        assert_eq!(a.decompress_events, 4);
        assert_eq!(a.rejected_compress_events, 2);
        assert_eq!(a.tier_io_ns, 60);
        assert_eq!(a.tier_io_events, 6);
    }

    #[test]
    fn tier_io_charges_accumulate() {
        let mut acc = CpuAccounting::default();
        acc.charge_tier_io(700);
        acc.charge_tier_io(300);
        assert_eq!(acc.tier_io_ns, 1_000);
        assert_eq!(acc.tier_io_events, 2);
    }

    /// The calibration bugfix: mean-per-page arithmetic can never round a
    /// fast codec down to zero cost.
    #[test]
    fn per_page_ns_never_truncates_to_zero() {
        // The old `total / pages` truncation: 999 ns over 1000 pages -> 0.
        assert_eq!(999u128 / 1000, 0);
        assert_eq!(CostModel::per_page_ns(999, 1000), 1);
        assert_eq!(CostModel::per_page_ns(0, 1000), 1);
        assert_eq!(CostModel::per_page_ns(0, 0), 1);
        // Rounds up, not down.
        assert_eq!(CostModel::per_page_ns(1001, 1000), 2);
        // Exact division stays exact.
        assert_eq!(CostModel::per_page_ns(5000, 1000), 5);
        // Saturates rather than wrapping on absurd totals.
        assert_eq!(CostModel::per_page_ns(u128::MAX, 1), u64::MAX);
    }

    #[test]
    fn calibration_produces_positive_single_digit_us_costs() {
        let m = CostModel::calibrate(CodecKind::Lzo, 16);
        assert!(m.compress_ns > 0 && m.decompress_ns > 0);
        // Generous sanity bound: under a millisecond per page on any host.
        assert!(m.compress_ns < 1_000_000, "compress {} ns", m.compress_ns);
        assert!(
            m.decompress_ns < 1_000_000,
            "decompress {} ns",
            m.decompress_ns
        );
        assert_eq!(m.source, CostSource::Measured);
        // Calibration also carries the measured compression outcome.
        assert!((2200..=4600).contains(&m.ratio_permille));
        assert!((200..=450).contains(&m.rejected_permille));
    }

    #[test]
    fn measured_ratios_are_deterministic_and_in_regime() {
        let a = CostModel::measured_ratios(CodecKind::Lzo);
        let b = CostModel::measured_ratios(CodecKind::Lzo);
        assert_eq!(a, b);
        assert_eq!(a.source, CostSource::Measured);
        // Timing stays at the paper defaults: no wall clock was read.
        assert_eq!(a.compress_ns, CostModel::PAPER_DEFAULT.compress_ns);
        assert_eq!(a.decompress_ns, CostModel::PAPER_DEFAULT.decompress_ns);
        assert!(
            (2200..=4600).contains(&a.ratio_permille),
            "measured ratio {}‰ outside the ~3× regime",
            a.ratio_permille
        );
        assert!(
            (200..=450).contains(&a.rejected_permille),
            "measured rejection {}‰ outside the ~31% regime",
            a.rejected_permille
        );
    }

    #[test]
    fn store_frames_rounds_up_at_realized_ratio() {
        let m = CostModel::PAPER_DEFAULT; // 3.0×
        assert_eq!(m.store_frames(0), 0);
        assert_eq!(m.store_frames(1), 1);
        assert_eq!(m.store_frames(3), 1);
        assert_eq!(m.store_frames(4), 2);
        assert_eq!(m.store_frames(3000), 1000);
        assert_eq!(m.store_bytes(3), PAGE_SIZE as u64);
        // A degenerate ratio below 1× clamps to 1×: the store never
        // occupies more frames than raw pages.
        let bad = CostModel {
            ratio_permille: 500,
            ..m
        };
        assert_eq!(bad.store_frames(10), 10);
        assert!((bad.ratio() - 1.0).abs() < 1e-12);
    }
}
