//! CPU-cost accounting for compression work.
//!
//! zswap's only hardware cost is CPU cycles (§3.1); Figures 8 and 9b report
//! exactly those: per-job and per-machine fractions of CPU spent on
//! compression and decompression, and the decompression latency
//! distribution. The [`CostModel`] carries per-page costs — either the
//! paper's measured defaults or values calibrated against this crate's real
//! codecs on this host — and [`CpuAccounting`] accumulates charged time.

use serde::{Deserialize, Serialize};
use std::time::Instant;

use sdfm_compress::codec::CodecKind;
use sdfm_compress::gen::{CompressibilityMix, PageGenerator};
use sdfm_types::time::SimDuration;

/// Per-page CPU costs in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of compressing one 4 KiB page (including rejected attempts).
    pub compress_ns: u64,
    /// Cost of decompressing one page on promotion.
    pub decompress_ns: u64,
}

impl CostModel {
    /// The paper's measured figures: ~6.4 µs median decompression (§6.3)
    /// and compression of the same order (lzo compresses slightly slower
    /// than it decompresses).
    pub const PAPER_DEFAULT: CostModel = CostModel {
        compress_ns: 10_000,
        decompress_ns: 6_400,
    };

    /// Measures the real codec on this host: compresses and decompresses a
    /// sample of fleet-mix pages and returns mean per-page costs.
    ///
    /// Used by benches so reported overheads reflect the actual
    /// implementation rather than the paper's hardware. This is the one
    /// wall-clock read in the simulated kernel; `sdfm-lint` grants this
    /// file a policy-level D1 allowance because the measured durations
    /// parameterize the cost model but never feed back into simulated
    /// state or RNG streams.
    pub fn calibrate(kind: CodecKind, sample_pages: usize) -> CostModel {
        let codec = kind.build();
        let mix = CompressibilityMix::fleet_default();
        let mut gen = PageGenerator::new(0x5EED);
        let pages: Vec<Vec<u8>> = (0..sample_pages.max(8))
            .map(|_| gen.generate_from_mix(&mix).1)
            .collect();
        let mut compressed = Vec::new();
        let t0 = Instant::now();
        let mut bufs = Vec::with_capacity(pages.len());
        for p in &pages {
            let mut buf = Vec::new();
            codec.compress(p, &mut buf);
            bufs.push(buf);
        }
        let compress_ns = t0.elapsed().as_nanos() as u64 / pages.len() as u64;
        let t1 = Instant::now();
        for buf in &bufs {
            compressed.clear();
            // Incompressible pages never reach decompression in production,
            // but decoding them is still well-defined; include them.
            codec
                .decompress(buf, &mut compressed)
                // sdfm-lint: allow(P1) reason="calibration decodes the stream it just encoded in the same loop; a failure is a codec bug, not a machine state"
                .expect("self-produced stream decodes");
        }
        let decompress_ns = t1.elapsed().as_nanos() as u64 / pages.len() as u64;
        CostModel {
            compress_ns: compress_ns.max(1),
            decompress_ns: decompress_ns.max(1),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::PAPER_DEFAULT
    }
}

/// Accumulated CPU time charged to compression work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CpuAccounting {
    /// Total nanoseconds charged to compression (including rejections).
    pub compress_ns: u64,
    /// Total nanoseconds charged to decompression.
    pub decompress_ns: u64,
    /// Compression events charged.
    pub compress_events: u64,
    /// Decompression events charged.
    pub decompress_events: u64,
}

impl CpuAccounting {
    /// Charges one page compression.
    pub fn charge_compress(&mut self, model: &CostModel) {
        self.compress_ns += model.compress_ns;
        self.compress_events += 1;
    }

    /// Charges one page decompression.
    pub fn charge_decompress(&mut self, model: &CostModel) {
        self.decompress_ns += model.decompress_ns;
        self.decompress_events += 1;
    }

    /// Fraction of `cpu_time` spent compressing, where `cpu_time` is the
    /// CPU time the job/machine consumed over the accounting window
    /// (`cores × wall time`). Returns 0 for an empty window.
    pub fn compress_overhead(&self, cores: f64, wall: SimDuration) -> f64 {
        Self::fraction(self.compress_ns, cores, wall)
    }

    /// Fraction of `cpu_time` spent decompressing.
    pub fn decompress_overhead(&self, cores: f64, wall: SimDuration) -> f64 {
        Self::fraction(self.decompress_ns, cores, wall)
    }

    fn fraction(ns: u64, cores: f64, wall: SimDuration) -> f64 {
        let denom = cores * wall.as_secs() as f64 * 1e9;
        if denom <= 0.0 {
            0.0
        } else {
            ns as f64 / denom
        }
    }

    /// Merges another accounting into this one.
    pub fn merge(&mut self, other: &CpuAccounting) {
        self.compress_ns += other.compress_ns;
        self.decompress_ns += other.decompress_ns;
        self.compress_events += other.compress_events;
        self.decompress_events += other.decompress_events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_order_of_magnitude() {
        let m = CostModel::default();
        assert_eq!(m.decompress_ns, 6_400);
        assert!(m.compress_ns >= m.decompress_ns);
    }

    #[test]
    fn charging_accumulates() {
        let m = CostModel::PAPER_DEFAULT;
        let mut acc = CpuAccounting::default();
        acc.charge_compress(&m);
        acc.charge_compress(&m);
        acc.charge_decompress(&m);
        assert_eq!(acc.compress_events, 2);
        assert_eq!(acc.decompress_events, 1);
        assert_eq!(acc.compress_ns, 20_000);
        assert_eq!(acc.decompress_ns, 6_400);
    }

    #[test]
    fn overhead_fractions() {
        let acc = CpuAccounting {
            compress_ns: 1_000_000_000, // 1 s of compression
            ..Default::default()
        };
        // 1 core for 100 s -> 1% overhead.
        let f = acc.compress_overhead(1.0, SimDuration::from_secs(100));
        assert!((f - 0.01).abs() < 1e-12);
        assert_eq!(
            acc.decompress_overhead(1.0, SimDuration::from_secs(100)),
            0.0
        );
        assert_eq!(acc.compress_overhead(0.0, SimDuration::from_secs(100)), 0.0);
        assert_eq!(acc.compress_overhead(1.0, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = CpuAccounting {
            compress_ns: 10,
            decompress_ns: 20,
            compress_events: 1,
            decompress_events: 2,
        };
        a.merge(&a.clone());
        assert_eq!(a.compress_ns, 20);
        assert_eq!(a.decompress_events, 4);
    }

    #[test]
    fn calibration_produces_positive_single_digit_us_costs() {
        let m = CostModel::calibrate(CodecKind::Lzo, 16);
        assert!(m.compress_ns > 0 && m.decompress_ns > 0);
        // Generous sanity bound: under a millisecond per page on any host.
        assert!(m.compress_ns < 1_000_000, "compress {} ns", m.compress_ns);
        assert!(
            m.decompress_ns < 1_000_000,
            "decompress {} ns",
            m.decompress_ns
        );
    }
}
