//! The struct-of-arrays page table: sweep-optimized per-page hot state.
//!
//! kstaled's scan touches exactly two bytes per entry — the age and the
//! flag byte — yet the AoS layout this module replaces interleaved them
//! with a `PageState` (8 bytes of handle), a `PageContent` (up to a
//! `Bytes` pointer trio), and a bool spread over a 40+ byte struct,
//! wasting most of every cache line the sweep pulled. Here the hot state
//! lives in three parallel arrays:
//!
//! * `ages:  Vec<u8>`  — idle age in scan periods (saturating at 255);
//! * `flags: Vec<u8>`  — all six flag bits packed into one byte;
//! * `spans: Vec<u16>` — base-page frames mapped by the entry (1 or 512).
//!
//! The cold state (`PageState` with its zswap handle, `PageContent`) is
//! demoted to a side table at the same indices, touched only on
//! reclaim/fault paths that were never sweep-bound.
//!
//! # The incremental-histogram invariant
//!
//! The table owns a **live** [`ColdAgeHistogram`] that is exact after
//! every mutation: `push` records the entry's age weighted by its span,
//! `pop` unrecords it, `set_age` moves the weight between buckets, and a
//! huge-page split is weight-neutral. A sweep therefore does not rebuild
//! the histogram from scratch: untouched pages are one O(256) bucket
//! shift ([`ColdAgeHistogram::shift_up_one`]) and each accessed page is a
//! single move-to-HOT delta. Debug builds cross-check the live histogram
//! against a from-scratch rebuild at the end of every sweep
//! ([`PageTable::rebuilt_histogram`]).
//!
//! All mutations of age state **must** route through this module so the
//! invariant holds; there is deliberately no `&mut` access to the raw
//! arrays.

use crate::kstaled::ScanOutcome;
use crate::page::{Page, PageContent, PageFlags, PageState};
use sdfm_types::histogram::{ColdAgeHistogram, PageAge, PromotionHistogram};

/// Accessed since the last scan (MMU accessed bit).
const ACCESSED: u8 = 1 << 0;
/// Written since the last scan.
const DIRTY: u8 = 1 << 1;
/// Excluded from reclaim (mlocked / unevictable LRU).
const UNEVICTABLE: u8 = 1 << 2;
/// zswap rejected this page; skip until dirtied again.
const INCOMPRESSIBLE: u8 = 1 << 3;
/// Poisoned by the Thermostat-style sampler.
const POISONED: u8 = 1 << 4;
/// A poisoned page was accessed (read back by the sampler).
const SAMPLE_FAULTED: u8 = 1 << 5;
/// Promoted by the prefetcher and not yet demand-touched. SoA-only: the
/// bit tracks pending prefetch accuracy accounting in place, so it does
/// not round-trip through [`Page`] views (`pack`/`unpack` ignore it).
const PREFETCHED: u8 = 1 << 6;

fn pack(flags: PageFlags, sample_faulted: bool) -> u8 {
    (u8::from(flags.accessed) * ACCESSED)
        | (u8::from(flags.dirty) * DIRTY)
        | (u8::from(flags.unevictable) * UNEVICTABLE)
        | (u8::from(flags.incompressible) * INCOMPRESSIBLE)
        | (u8::from(flags.poisoned) * POISONED)
        | (u8::from(sample_faulted) * SAMPLE_FAULTED)
}

fn unpack(bits: u8) -> (PageFlags, bool) {
    (
        PageFlags {
            accessed: bits & ACCESSED != 0,
            dirty: bits & DIRTY != 0,
            unevictable: bits & UNEVICTABLE != 0,
            incompressible: bits & INCOMPRESSIBLE != 0,
            poisoned: bits & POISONED != 0,
        },
        bits & SAMPLE_FAULTED != 0,
    )
}

/// Replicates page content for a huge-page split. `Synthetic` content is
/// a plain two-field descriptor copied directly — the common fleet-scale
/// case never touches the generic clone path `Real` bytes need (which
/// bumps the `Bytes` refcount).
fn replicate(content: &PageContent) -> PageContent {
    match *content {
        PageContent::Synthetic { class, payload_len } => {
            PageContent::Synthetic { class, payload_len }
        }
        PageContent::Real(ref bytes) => PageContent::Real(bytes.clone()),
    }
}

/// The reclaim/fault-path side table entry: everything the sweep never
/// reads.
#[derive(Debug, Clone)]
struct ColdEntry {
    state: PageState,
    content: PageContent,
}

/// A memcg's pages in struct-of-arrays layout, with a live cold-age
/// histogram kept exact under every mutation (see the module docs for the
/// invariant).
#[derive(Debug, Default)]
pub struct PageTable {
    ages: Vec<u8>,
    flags: Vec<u8>,
    spans: Vec<u16>,
    cold: Vec<ColdEntry>,
    hist: ColdAgeHistogram,
}

impl PageTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of page-table entries (a huge page is one entry; see
    /// [`span`](Self::span) for its frame count).
    pub fn len(&self) -> usize {
        self.ages.len()
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.ages.is_empty()
    }

    /// Appends a page, decomposing it into the parallel arrays and
    /// recording its span-weighted age in the live histogram.
    pub fn push(&mut self, page: Page) {
        self.hist.record_page(page.age, page.span as u64);
        self.ages.push(page.age.as_scans());
        self.flags.push(pack(page.flags, page.sample_faulted));
        self.spans.push(page.span);
        self.cold.push(ColdEntry {
            state: page.state,
            content: page.content,
        });
    }

    /// Removes and returns the last entry, unrecording it from the live
    /// histogram.
    pub fn pop(&mut self) -> Option<Page> {
        let age = PageAge::from_scans(self.ages.pop()?);
        let bits = self.flags.pop().unwrap_or(0);
        let span = self.spans.pop().unwrap_or(1);
        let entry = self.cold.pop()?;
        self.hist.remove_page(age, span as u64);
        let (flags, sample_faulted) = unpack(bits);
        Some(Page {
            state: entry.state,
            age,
            flags,
            content: entry.content,
            sample_faulted,
            span,
        })
    }

    /// Reassembles the entry at `idx` as a [`Page`] view (diagnostics and
    /// tests; the hot paths use the per-field accessors).
    pub fn page(&self, idx: usize) -> Option<Page> {
        let entry = self.cold.get(idx)?;
        let (flags, sample_faulted) = unpack(self.flags[idx]);
        Some(Page {
            state: entry.state,
            age: PageAge::from_scans(self.ages[idx]),
            flags,
            content: entry.content.clone(),
            sample_faulted,
            span: self.spans[idx],
        })
    }

    /// The entry's idle age.
    pub fn age(&self, idx: usize) -> PageAge {
        PageAge::from_scans(self.ages[idx])
    }

    /// Sets the entry's age, moving its span-weighted histogram bucket.
    /// Every age write outside the sweep must go through here — writing
    /// the array directly would break the live-histogram invariant.
    pub fn set_age(&mut self, idx: usize, age: PageAge) {
        let old = PageAge::from_scans(self.ages[idx]);
        self.hist.move_pages(old, age, self.spans[idx] as u64);
        self.ages[idx] = age.as_scans();
    }

    /// Base-page frames mapped by the entry (1, or
    /// [`crate::page::HUGE_SPAN`] for a huge page).
    pub fn span(&self, idx: usize) -> u16 {
        self.spans[idx]
    }

    /// Where the entry's data lives.
    pub fn state(&self, idx: usize) -> PageState {
        self.cold[idx].state
    }

    /// Like [`state`](Self::state), `None` when `idx` is out of range (the
    /// fault path probes ids that may not exist).
    pub fn get_state(&self, idx: usize) -> Option<PageState> {
        self.cold.get(idx).map(|e| e.state)
    }

    /// Moves the entry's data (histogram-neutral: the cold-age histogram
    /// covers every entry regardless of state, exactly as the rebuilt
    /// histogram always has).
    pub fn set_state(&mut self, idx: usize, state: PageState) {
        self.cold[idx].state = state;
    }

    /// The entry's backing content.
    pub fn content(&self, idx: usize) -> &PageContent {
        &self.cold[idx].content
    }

    /// Iterates every entry's state (teardown paths discarding handles).
    pub fn states(&self) -> impl Iterator<Item = PageState> + '_ {
        self.cold.iter().map(|e| e.state)
    }

    /// The accessed bit.
    pub fn accessed(&self, idx: usize) -> bool {
        self.flags[idx] & ACCESSED != 0
    }

    /// Sets or clears the accessed bit.
    pub fn set_accessed(&mut self, idx: usize, v: bool) {
        self.set_bit(idx, ACCESSED, v);
    }

    /// The dirty bit.
    pub fn dirty(&self, idx: usize) -> bool {
        self.flags[idx] & DIRTY != 0
    }

    /// Sets or clears the dirty bit.
    pub fn set_dirty(&mut self, idx: usize, v: bool) {
        self.set_bit(idx, DIRTY, v);
    }

    /// The unevictable (mlocked) bit.
    pub fn unevictable(&self, idx: usize) -> bool {
        self.flags[idx] & UNEVICTABLE != 0
    }

    /// Sets or clears the unevictable bit.
    pub fn set_unevictable(&mut self, idx: usize, v: bool) {
        self.set_bit(idx, UNEVICTABLE, v);
    }

    /// The incompressible mark.
    pub fn incompressible(&self, idx: usize) -> bool {
        self.flags[idx] & INCOMPRESSIBLE != 0
    }

    /// Sets or clears the incompressible mark.
    pub fn set_incompressible(&mut self, idx: usize, v: bool) {
        self.set_bit(idx, INCOMPRESSIBLE, v);
    }

    /// The sampler poison bit.
    pub fn poisoned(&self, idx: usize) -> bool {
        self.flags[idx] & POISONED != 0
    }

    /// Sets or clears the sampler poison bit.
    pub fn set_poisoned(&mut self, idx: usize, v: bool) {
        self.set_bit(idx, POISONED, v);
    }

    /// The sample-faulted bit.
    pub fn sample_faulted(&self, idx: usize) -> bool {
        self.flags[idx] & SAMPLE_FAULTED != 0
    }

    /// Sets or clears the sample-faulted bit.
    pub fn set_sample_faulted(&mut self, idx: usize, v: bool) {
        self.set_bit(idx, SAMPLE_FAULTED, v);
    }

    /// The prefetched-pending bit: the entry was promoted by the
    /// prefetcher and has not resolved to used or wasted yet.
    pub fn prefetched(&self, idx: usize) -> bool {
        self.flags[idx] & PREFETCHED != 0
    }

    /// Sets or clears the prefetched-pending bit.
    pub fn set_prefetched(&mut self, idx: usize, v: bool) {
        self.set_bit(idx, PREFETCHED, v);
    }

    fn set_bit(&mut self, idx: usize, bit: u8, v: bool) {
        if v {
            self.flags[idx] |= bit;
        } else {
            self.flags[idx] &= !bit;
        }
    }

    /// True when the entry is in the zswap store.
    pub fn is_zswapped(&self, idx: usize) -> bool {
        matches!(self.cold[idx].state, PageState::Zswapped(_))
    }

    /// True for a huge (multi-frame) entry.
    pub fn is_huge(&self, idx: usize) -> bool {
        self.spans[idx] > 1
    }

    /// Whether kreclaimd may move the entry to far memory under
    /// `threshold` (see [`Page::reclaim_eligible`]).
    pub fn reclaim_eligible(&self, idx: usize, threshold: PageAge) -> bool {
        threshold > PageAge::HOT
            && PageAge::from_scans(self.ages[idx]) >= threshold
            && self.flags[idx] & (UNEVICTABLE | INCOMPRESSIBLE | ACCESSED) == 0
            && matches!(self.cold[idx].state, PageState::Resident)
    }

    /// Whether the entry may demote to an uncompressed device tier (see
    /// [`Page::demote_eligible`] — the incompressible mark does not
    /// matter, devices store raw pages).
    pub fn demote_eligible(&self, idx: usize, threshold: PageAge) -> bool {
        threshold > PageAge::HOT
            && PageAge::from_scans(self.ages[idx]) >= threshold
            && self.flags[idx] & (UNEVICTABLE | ACCESSED) == 0
            && matches!(self.cold[idx].state, PageState::Resident)
    }

    /// Splits the huge page at `idx` into base pages: the entry keeps its
    /// id as the first frame; the remaining frames append at the end with
    /// the same age, flags, and state (the kernel's split-before-swap
    /// path). Weight-neutral for the live histogram: `span` frames at one
    /// age before, `span` one-frame entries at that age after. Returns
    /// `false` if the entry is not huge.
    pub fn split_huge(&mut self, idx: usize) -> bool {
        let span = self.spans[idx];
        if span <= 1 {
            return false;
        }
        let clones = (span - 1) as usize;
        self.spans[idx] = 1;
        let age = self.ages[idx];
        // Clone everything except the prefetched-pending mark: the issue
        // counted one entry, so exactly one entry must resolve it.
        let bits = self.flags[idx] & !PREFETCHED;
        let state = self.cold[idx].state;
        self.ages.resize(self.ages.len() + clones, age);
        self.flags.resize(self.flags.len() + clones, bits);
        self.spans.resize(self.spans.len() + clones, 1);
        self.cold.reserve(clones);
        for _ in 0..clones {
            let content = replicate(&self.cold[idx].content);
            self.cold.push(ColdEntry { state, content });
        }
        true
    }

    /// One kstaled pass: a cache-linear sweep over the age and flag
    /// arrays.
    ///
    /// The live histogram is aged with one O(256) bucket shift (as if no
    /// page were accessed), then each accessed entry is fixed up with a
    /// single move-to-HOT delta — no rebuild. Accessed entries record
    /// their pre-scan age in `promo` (span-weighted: one accessed bit
    /// covers all of a huge entry's frames), reset to HOT, and clear
    /// their dirty/incompressible marks per §5.1; untouched entries age
    /// by one scan (saturating).
    ///
    /// Debug builds assert the live histogram equals a from-scratch
    /// rebuild before returning.
    pub fn sweep(&mut self, promo: &mut PromotionHistogram) -> ScanOutcome {
        let mut outcome = ScanOutcome::default();
        self.hist.shift_up_one();
        outcome.pages_scanned = self.ages.len() as u64;
        for i in 0..self.ages.len() {
            let bits = self.flags[i];
            if bits & ACCESSED != 0 {
                outcome.pages_accessed += 1;
                let age = self.ages[i];
                let span = self.spans[i] as u64;
                if age > 0 {
                    promo.record_promotion(PageAge::from_scans(age), span);
                    outcome.would_be_promotions += span;
                }
                // The bucket shift aged this entry to min(age + 1, 255);
                // pull its weight back to HOT where the access left it.
                self.hist.move_pages(
                    PageAge::from_scans(age.saturating_add(1)),
                    PageAge::HOT,
                    span,
                );
                self.ages[i] = 0;
                let mut next = bits & !ACCESSED;
                if next & DIRTY != 0 {
                    if next & INCOMPRESSIBLE != 0 {
                        next &= !INCOMPRESSIBLE;
                        outcome.incompressible_cleared += 1;
                    }
                    next &= !DIRTY;
                }
                self.flags[i] = next;
            } else {
                self.ages[i] = self.ages[i].saturating_add(1);
            }
            if self.flags[i] & INCOMPRESSIBLE != 0 {
                outcome.incompressible_marked += 1;
            }
        }
        debug_assert_eq!(
            self.hist,
            self.rebuilt_histogram(),
            "incremental cold-age histogram diverged from the rebuilt truth"
        );
        outcome
    }

    /// The live cold-age histogram (exact under the module invariant).
    pub fn live_histogram(&self) -> &ColdAgeHistogram {
        &self.hist
    }

    /// Rebuilds the cold-age histogram from the age/span arrays — the
    /// ground truth the live histogram must match at all times. O(n);
    /// used by the sweep's debug assertion and equivalence tests.
    pub fn rebuilt_histogram(&self) -> ColdAgeHistogram {
        let mut h = ColdAgeHistogram::new();
        for (i, &age) in self.ages.iter().enumerate() {
            h.record_page(PageAge::from_scans(age), self.spans[i] as u64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::HUGE_SPAN;

    fn base(len: usize) -> Page {
        Page::new(PageContent::synthetic_of_len(len))
    }

    #[test]
    fn push_page_roundtrips_through_pop() {
        let mut pt = PageTable::new();
        let mut p = base(700);
        p.age = PageAge::from_scans(9);
        p.flags.dirty = false;
        p.flags.poisoned = true;
        p.sample_faulted = true;
        pt.push(p.clone());
        assert_eq!(pt.len(), 1);
        let back = pt.pop().unwrap();
        assert_eq!(back.age, p.age);
        assert_eq!(back.flags, p.flags);
        assert_eq!(back.state, p.state);
        assert_eq!(back.content, p.content);
        assert_eq!(back.span, p.span);
        assert!(back.sample_faulted);
        assert!(pt.is_empty());
        assert!(pt.live_histogram().is_empty());
    }

    #[test]
    fn live_histogram_tracks_push_pop_and_set_age() {
        let mut pt = PageTable::new();
        pt.push(base(100));
        pt.push(Page::new_huge(PageContent::synthetic_of_len(100)));
        assert_eq!(pt.live_histogram().total_pages(), 1 + HUGE_SPAN as u64);
        pt.set_age(0, PageAge::from_scans(40));
        assert_eq!(
            pt.live_histogram()
                .pages_colder_than(PageAge::from_scans(40)),
            1
        );
        pt.pop();
        assert_eq!(pt.live_histogram().total_pages(), 1);
        assert_eq!(pt.live_histogram(), &pt.rebuilt_histogram());
    }

    #[test]
    fn sweep_matches_rebuilt_histogram_under_mixed_traffic() {
        let mut pt = PageTable::new();
        let mut promo = PromotionHistogram::new();
        for i in 0..50 {
            let mut p = base(100 + i);
            p.flags.accessed = i % 3 == 0;
            pt.push(p);
        }
        pt.push(Page::new_huge(PageContent::synthetic_of_len(80)));
        for round in 0..6 {
            for i in 0..pt.len() {
                if (i + round) % 4 == 0 {
                    pt.set_accessed(i, true);
                }
            }
            pt.sweep(&mut promo); // debug_assert cross-checks internally
            assert_eq!(pt.live_histogram(), &pt.rebuilt_histogram());
        }
    }

    #[test]
    fn sweep_saturates_ages_without_losing_weight() {
        let mut pt = PageTable::new();
        let mut p = base(100);
        p.flags.accessed = false;
        p.age = PageAge::from_scans(254);
        pt.push(p);
        let mut promo = PromotionHistogram::new();
        for _ in 0..3 {
            pt.sweep(&mut promo);
        }
        assert_eq!(pt.age(0), PageAge::MAX);
        assert_eq!(pt.live_histogram().total_pages(), 1);
        assert_eq!(pt.live_histogram(), &pt.rebuilt_histogram());
    }

    #[test]
    fn split_huge_replicates_synthetic_descriptor() {
        let mut pt = PageTable::new();
        let mut huge = Page::new_huge(PageContent::synthetic(
            sdfm_compress::gen::PageClass::StructuredRecords,
            900,
        ));
        huge.age = PageAge::from_scans(7);
        huge.flags.accessed = false;
        pt.push(huge);
        let before = pt.live_histogram().clone();
        assert!(pt.split_huge(0));
        assert!(!pt.split_huge(0), "already split");
        assert_eq!(pt.len(), HUGE_SPAN as usize);
        assert_eq!(pt.live_histogram(), &before, "split is weight-neutral");
        for i in 0..pt.len() {
            assert_eq!(pt.span(i), 1);
            assert_eq!(pt.age(i), PageAge::from_scans(7));
            assert_eq!(pt.content(i), pt.content(0));
        }
        assert_eq!(pt.live_histogram(), &pt.rebuilt_histogram());
    }

    #[test]
    fn eligibility_matches_the_page_view() {
        let mut pt = PageTable::new();
        for (accessed, incompressible, age) in [
            (false, false, 5u8),
            (true, false, 5),
            (false, true, 5),
            (false, false, 0),
        ] {
            let mut p = base(100);
            p.flags.accessed = accessed;
            p.flags.incompressible = incompressible;
            p.age = PageAge::from_scans(age);
            pt.push(p);
        }
        let t = PageAge::from_scans(2);
        for i in 0..pt.len() {
            let view = pt.page(i).unwrap();
            assert_eq!(pt.reclaim_eligible(i, t), view.reclaim_eligible(t), "{i}");
            assert_eq!(pt.demote_eligible(i, t), view.demote_eligible(t), "{i}");
        }
    }
}
