//! Memory cgroups: the per-job isolation and accounting unit (§5.1).
//!
//! Each job maps to one memcg holding its pages, its two kstaled-maintained
//! histograms, its soft limit (the agent-set working-set protection), and
//! cumulative compression counters. The node agent reads everything it
//! needs from here — it never sees individual pages.

use serde::{Deserialize, Serialize};

use crate::backend::MAX_TIERS;
use crate::page_table::PageTable;
use crate::prefetch::Prefetcher;
use sdfm_types::histogram::{ColdAgeHistogram, PageAge, PromotionHistogram};
use sdfm_types::ids::JobId;
use sdfm_types::size::PageCount;

/// Cumulative and current counters for one memcg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemcgStats {
    /// Pages currently resident in DRAM.
    pub resident_pages: u64,
    /// Pages currently in the zswap store.
    pub zswapped_pages: u64,
    /// Compressed bytes currently stored for this memcg.
    pub zswapped_bytes: u64,
    /// Cumulative pages compressed into zswap.
    pub compressions: u64,
    /// Cumulative pages decompressed on access (actual promotions).
    pub decompressions: u64,
    /// Cumulative compression attempts rejected as incompressible.
    pub rejections: u64,
    /// Pages currently carrying the incompressible mark.
    pub incompressible_marked: u64,
    /// Pages currently resident per device tier of the demotion chain,
    /// indexed by chain position (compressed-RAM tiers stay zero — their
    /// pages are `zswapped_pages`).
    pub demoted_pages: [u64; MAX_TIERS],
    /// Cumulative fault-backs per device tier, indexed by chain position.
    pub demoted_loads: [u64; MAX_TIERS],
    /// Cumulative pages demoted from zswap down the chain (store decay
    /// with a colder tier attached).
    pub demotions: u64,
    /// Cumulative pages written back from zswap without an access (store
    /// decay, soft-limit restoration, host pressure) — distinct from
    /// `decompressions`, which counts access-driven promotions.
    pub writebacks: u64,
    /// Cumulative predicted pages the prefetcher promoted ahead of demand
    /// (each also counts in `decompressions` or `demoted_loads`, since it
    /// pays the same promotion cost).
    pub prefetch_issued: u64,
    /// Cumulative issued prefetches later demand-touched while resident
    /// (coverage: these faults were fully hidden).
    pub prefetch_used: u64,
    /// Cumulative issued prefetches reclaimed, freed, or torn down before
    /// any demand touch (accuracy loss). Once every issued page resolves,
    /// `prefetch_used + prefetch_wasted == prefetch_issued`.
    pub prefetch_wasted: u64,
    /// Cumulative demand faults that found their page predicted but still
    /// queued (timeliness loss: right prediction, drain too late).
    pub prefetch_late: u64,
}

impl MemcgStats {
    /// Pages resident across every device tier of the chain.
    pub fn demoted_total(&self) -> u64 {
        self.demoted_pages.iter().sum()
    }

    /// Fault-backs across every device tier of the chain.
    pub fn demoted_loads_total(&self) -> u64 {
        self.demoted_loads.iter().sum()
    }

    /// Total pages charged to the memcg (resident + compressed + demoted
    /// to device tiers).
    pub fn usage(&self) -> PageCount {
        PageCount::new(self.resident_pages + self.zswapped_pages + self.demoted_total())
    }
}

/// One job's memory cgroup.
#[derive(Debug)]
pub struct MemCgroup {
    job: JobId,
    limit: PageCount,
    soft_limit: PageCount,
    zswap_enabled: bool,
    pub(crate) pages: PageTable,
    pub(crate) cold_hist: ColdAgeHistogram,
    pub(crate) promo_hist: PromotionHistogram,
    pub(crate) stats: MemcgStats,
    pub(crate) prefetcher: Prefetcher,
}

impl MemCgroup {
    /// Creates an empty memcg with a hard page limit.
    pub fn new(job: JobId, limit: PageCount) -> Self {
        MemCgroup {
            job,
            limit,
            soft_limit: PageCount::ZERO,
            zswap_enabled: false,
            pages: PageTable::new(),
            cold_hist: ColdAgeHistogram::new(),
            promo_hist: PromotionHistogram::new(),
            stats: MemcgStats::default(),
            prefetcher: Prefetcher::new(),
        }
    }

    /// The owning job.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The hard memcg limit.
    pub fn limit(&self) -> PageCount {
        self.limit
    }

    /// The agent-set soft limit: direct reclaim never pushes the memcg
    /// below this (working-set protection, §5.1).
    pub fn soft_limit(&self) -> PageCount {
        self.soft_limit
    }

    /// Sets the soft limit.
    pub fn set_soft_limit(&mut self, pages: PageCount) {
        self.soft_limit = pages;
    }

    /// Whether proactive zswap is enabled for this job (the agent keeps it
    /// off for the first `S` seconds of execution, §4.3).
    pub fn zswap_enabled(&self) -> bool {
        self.zswap_enabled
    }

    /// Enables or disables proactive zswap.
    pub fn set_zswap_enabled(&mut self, enabled: bool) {
        self.zswap_enabled = enabled;
    }

    /// Current counters.
    pub fn stats(&self) -> MemcgStats {
        self.stats
    }

    /// Total frames charged to the memcg (huge pages count their full
    /// span).
    pub fn usage(&self) -> PageCount {
        self.stats.usage()
    }

    /// Whether `page` currently lives in the zswap store, or `None` if no
    /// such page exists. Diagnostic only — production agents never see
    /// individual pages.
    pub fn page_in_zswap(&self, page: sdfm_types::ids::PageId) -> Option<bool> {
        self.pages
            .get_state(page.index())
            .map(|s| matches!(s, crate::page::PageState::Zswapped(_)))
    }

    /// The instantaneous cold-age histogram (maintained incrementally by
    /// the page table; kstaled publishes a snapshot here each scan).
    pub fn cold_age_histogram(&self) -> &ColdAgeHistogram {
        &self.cold_hist
    }

    /// The cumulative promotion histogram (ages at access time).
    pub fn promotion_histogram(&self) -> &PromotionHistogram {
        &self.promo_hist
    }

    /// Pages idle for at least `threshold` — the cold memory size under
    /// that threshold, per the last scan.
    pub fn cold_pages(&self, threshold: PageAge) -> PageCount {
        PageCount::new(self.cold_hist.pages_colder_than(threshold))
    }

    /// The §4.2 working-set estimate: pages accessed within the minimum
    /// cold-age threshold, per the last scan.
    pub fn working_set(&self, min_threshold: PageAge) -> PageCount {
        PageCount::new(self.cold_hist.pages_younger_than(min_threshold))
    }

    /// Splits the huge page at `idx` into base pages: the entry keeps its
    /// id as the first frame; the remaining frames append at the end with
    /// the same age and flags (the kernel's split-before-swap path).
    /// Returns `false` if the entry is not huge.
    pub(crate) fn split_huge_page(&mut self, idx: usize) -> bool {
        self.pages.split_huge(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Page, PageContent};

    #[test]
    fn new_memcg_is_empty_and_disabled() {
        let cg = MemCgroup::new(JobId::new(1), PageCount::new(100));
        assert_eq!(cg.job(), JobId::new(1));
        assert_eq!(cg.limit(), PageCount::new(100));
        assert_eq!(cg.usage(), PageCount::ZERO);
        assert!(!cg.zswap_enabled());
        assert_eq!(cg.stats(), MemcgStats::default());
    }

    #[test]
    fn soft_limit_and_enable_toggle() {
        let mut cg = MemCgroup::new(JobId::new(2), PageCount::new(100));
        cg.set_soft_limit(PageCount::new(40));
        assert_eq!(cg.soft_limit(), PageCount::new(40));
        cg.set_zswap_enabled(true);
        assert!(cg.zswap_enabled());
    }

    #[test]
    fn usage_counts_frames_from_stats() {
        let mut cg = MemCgroup::new(JobId::new(3), PageCount::new(100));
        cg.pages.push(Page::new(PageContent::synthetic_of_len(64)));
        cg.pages.push(Page::new(PageContent::synthetic_of_len(64)));
        cg.stats.resident_pages = 2; // the kernel maintains this on alloc
        assert_eq!(cg.usage(), PageCount::new(2));
        // A huge page charges its whole span.
        cg.pages
            .push(Page::new_huge(PageContent::synthetic_of_len(64)));
        cg.stats.resident_pages += crate::page::HUGE_SPAN as u64;
        assert_eq!(cg.usage(), PageCount::new(2 + 512));
    }

    #[test]
    fn stats_usage_sums_resident_and_zswapped() {
        let s = MemcgStats {
            resident_pages: 10,
            zswapped_pages: 5,
            ..Default::default()
        };
        assert_eq!(s.usage(), PageCount::new(15));
    }
}
