//! kreclaimd: moves cold pages into the zswap store (§5.1).
//!
//! Once the node agent sets a memcg's cold-age threshold, kreclaimd walks
//! the memcg and reclaims every eligible page whose age meets the
//! threshold: resident, evictable, not freshly accessed, and not marked
//! incompressible. Compression attempts that exceed the payload cutoff
//! mark the page incompressible so the cycles are not wasted again until
//! the page is dirtied (§5.1).

use crate::cost::{CostModel, CpuAccounting};
use crate::error::KernelError;
use crate::memcg::MemCgroup;
use crate::page::PageState;
use crate::zswap::{StoreOutcome, ZswapStore};
use sdfm_types::histogram::PageAge;

/// Counters from one kreclaimd pass over one memcg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReclaimOutcome {
    /// Pages moved to the zswap store.
    pub reclaimed: u64,
    /// Compression attempts rejected (pages newly marked incompressible).
    pub rejected: u64,
    /// Pages examined.
    pub examined: u64,
    /// Huge pages split into base pages before compression.
    pub huge_splits: u64,
}

/// Reclaims every eligible page at or above `threshold` in `cg` into
/// `store`, charging compression costs to `cpu`.
///
/// A threshold of [`PageAge::HOT`] (zero) reclaims nothing: the control
/// plane never classifies just-touched pages as cold.
///
/// # Errors
///
/// [`KernelError::StoreCorrupt`] / [`KernelError::StaleHandle`] when the
/// store's bookkeeping breaks mid-pass; pages reclaimed before the
/// failure stay reclaimed.
pub fn reclaim_memcg(
    cg: &mut MemCgroup,
    store: &mut ZswapStore,
    threshold: PageAge,
    cost: &CostModel,
    cpu: &mut CpuAccounting,
) -> Result<ReclaimOutcome, KernelError> {
    let mut outcome = ReclaimOutcome::default();
    if !cg.zswap_enabled() || threshold == PageAge::HOT {
        return Ok(outcome);
    }
    // Index loop: splitting a huge page appends its base pages at the end
    // of the vector (preserving existing page ids), and the growing length
    // lets this same pass compress them.
    let mut i = 0;
    while i < cg.pages.len() {
        outcome.examined += 1;
        if !cg.pages.reclaim_eligible(i, threshold) {
            i += 1;
            continue;
        }
        // zswap works at base-page granularity: split first, then fall
        // through to compress the (now base) page at `i`.
        if cg.pages.split_huge(i) {
            outcome.huge_splits += 1;
        }
        cg.stats.compressions += 1;
        match store.store(cg.pages.content(i))? {
            StoreOutcome::Stored(handle) => {
                cpu.charge_compress(cost);
                if cg.pages.prefetched(i) {
                    // A prefetched page aging back out untouched resolves
                    // as wasted (accuracy accounting).
                    cg.pages.set_prefetched(i, false);
                    cg.stats.prefetch_wasted += 1;
                }
                cg.pages.set_state(i, PageState::Zswapped(handle));
                outcome.reclaimed += 1;
                cg.stats.resident_pages -= 1;
                cg.stats.zswapped_pages += 1;
                cg.stats.zswapped_bytes +=
                    store.stored_size(handle).ok_or(KernelError::StaleHandle)? as u64;
            }
            StoreOutcome::Rejected { .. } => {
                // The cutoff rejected the page, but the attempt burned the
                // same compression cycles — charged explicitly (§5.1).
                cpu.charge_rejected_compress(cost);
                cg.pages.set_incompressible(i, true);
                cg.stats.incompressible_marked += 1;
                cg.stats.rejections += 1;
                outcome.rejected += 1;
            }
        }
        i += 1;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kstaled::scan_memcg;
    use crate::page::{Page, PageContent};
    use sdfm_compress::codec::CodecKind;
    use sdfm_types::ids::JobId;
    use sdfm_types::size::PageCount;

    fn setup(n: usize, payload_len: usize) -> (MemCgroup, ZswapStore) {
        let mut cg = MemCgroup::new(JobId::new(1), PageCount::new(1 << 20));
        cg.set_zswap_enabled(true);
        for _ in 0..n {
            cg.pages
                .push(Page::new(PageContent::synthetic_of_len(payload_len)));
            cg.stats.resident_pages += 1;
        }
        (cg, ZswapStore::new(CodecKind::Lzo))
    }

    fn age_by_scans(cg: &mut MemCgroup, scans: usize) {
        for _ in 0..scans {
            scan_memcg(cg);
        }
    }

    #[test]
    fn reclaims_pages_past_threshold() {
        let (mut cg, mut store) = setup(10, 600);
        age_by_scans(&mut cg, 4); // all pages at age 3
        let mut cpu = CpuAccounting::default();
        let o = reclaim_memcg(
            &mut cg,
            &mut store,
            PageAge::from_scans(3),
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.reclaimed, 10);
        assert_eq!(o.rejected, 0);
        assert_eq!(cg.stats().zswapped_pages, 10);
        assert_eq!(cg.stats().resident_pages, 0);
        assert_eq!(store.resident_objects(), 10);
        assert_eq!(cpu.compress_events, 10);
    }

    #[test]
    fn threshold_filters_by_age() {
        let (mut cg, mut store) = setup(4, 600);
        age_by_scans(&mut cg, 3); // age 2
                                  // Touch two pages so they reset at the next scan.
        cg.pages.set_accessed(0, true);
        cg.pages.set_accessed(1, true);
        scan_memcg(&mut cg); // pages 0,1 at age 0; 2,3 at age 3
        let mut cpu = CpuAccounting::default();
        let o = reclaim_memcg(
            &mut cg,
            &mut store,
            PageAge::from_scans(2),
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.reclaimed, 2);
        assert!(cg.pages.state(0) == PageState::Resident);
        assert!(cg.pages.is_zswapped(2));
    }

    #[test]
    fn disabled_zswap_reclaims_nothing() {
        let (mut cg, mut store) = setup(5, 600);
        cg.set_zswap_enabled(false);
        age_by_scans(&mut cg, 10);
        let mut cpu = CpuAccounting::default();
        let o = reclaim_memcg(
            &mut cg,
            &mut store,
            PageAge::from_scans(1),
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o, ReclaimOutcome::default());
        assert_eq!(cpu.compress_events, 0);
    }

    #[test]
    fn zero_threshold_reclaims_nothing() {
        let (mut cg, mut store) = setup(5, 600);
        age_by_scans(&mut cg, 10);
        let mut cpu = CpuAccounting::default();
        let o = reclaim_memcg(
            &mut cg,
            &mut store,
            PageAge::HOT,
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.reclaimed, 0);
    }

    #[test]
    fn incompressible_pages_rejected_once_then_skipped() {
        let (mut cg, mut store) = setup(3, 3500); // above the cutoff
        age_by_scans(&mut cg, 4);
        let mut cpu = CpuAccounting::default();
        let o = reclaim_memcg(
            &mut cg,
            &mut store,
            PageAge::from_scans(2),
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.rejected, 3);
        assert_eq!(cg.stats().rejections, 3);
        assert_eq!(cpu.compress_events, 3, "wasted cycles are still charged");
        assert_eq!(
            cpu.rejected_compress_events, 3,
            "and attributed to rejection"
        );
        assert_eq!(cpu.compress_ns, 3 * CostModel::PAPER_DEFAULT.compress_ns);
        // Second pass: pages are marked, no new attempts.
        let o2 = reclaim_memcg(
            &mut cg,
            &mut store,
            PageAge::from_scans(2),
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o2.rejected, 0);
        assert_eq!(cpu.compress_events, 3);
    }

    #[test]
    fn already_zswapped_pages_are_skipped() {
        let (mut cg, mut store) = setup(2, 600);
        age_by_scans(&mut cg, 4);
        let mut cpu = CpuAccounting::default();
        reclaim_memcg(
            &mut cg,
            &mut store,
            PageAge::from_scans(1),
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        let o = reclaim_memcg(
            &mut cg,
            &mut store,
            PageAge::from_scans(1),
            &CostModel::PAPER_DEFAULT,
            &mut cpu,
        )
        .unwrap();
        assert_eq!(o.reclaimed, 0);
        assert_eq!(store.resident_objects(), 2);
    }
}
