//! A Thermostat-style sampling baseline for cold-page identification.
//!
//! Agarwal & Wenisch's Thermostat (ASPLOS 2017) estimates the access rate
//! of cold-candidate pages by *poisoning* a random sample (unmapping them
//! so accesses take a soft page fault) and counting the faults. The paper
//! under reproduction contrasts its kstaled accessed-bit scanning against
//! this design (§7): sampling trades page-fault overhead on the sampled
//! pages for not having to walk page tables, and its estimates carry
//! sampling error that full scans do not.
//!
//! This module implements the sampling estimator against the same
//! simulated kernel so the two designs can be compared head-to-head
//! (`ablation_thermostat` in `sdfm-core`): estimation accuracy of the
//! cold fraction and would-be promotion rate, and the overhead each
//! approach induces.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::memcg::MemCgroup;
use crate::page::PageState;

/// One sampling period's estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermostatEstimate {
    /// Pages sampled (poisoned) this period.
    pub sampled: u64,
    /// Sampled pages that faulted (were accessed) during the period.
    pub sampled_faulted: u64,
    /// Estimated fraction of the job's memory that is cold (not accessed
    /// within the period).
    pub est_cold_fraction: f64,
    /// Estimated accesses per minute to cold-candidate pages, scaled to
    /// the whole job (the would-be promotion rate).
    pub est_promotions_per_min: f64,
    /// Soft page faults this sampler *caused* (its overhead; kstaled's
    /// equivalent cost is a full page-table walk instead).
    pub faults_induced: u64,
}

/// The sampling cold-page estimator.
#[derive(Debug)]
pub struct ThermostatSampler {
    /// Fraction of pages poisoned each period.
    sample_rate: f64,
    rng: StdRng,
    /// Indices of currently poisoned pages.
    poisoned: Vec<usize>,
    period_mins: f64,
}

impl ThermostatSampler {
    /// Creates a sampler poisoning `sample_rate` of pages per period of
    /// `period_mins` minutes (Thermostat uses small rates — ~0.5% — to
    /// bound fault overhead).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < sample_rate <= 1` and `period_mins > 0`.
    pub fn new(sample_rate: f64, period_mins: f64, seed: u64) -> Self {
        assert!(
            sample_rate > 0.0 && sample_rate <= 1.0,
            "sample rate must be in (0, 1]"
        );
        assert!(period_mins > 0.0, "period must be positive");
        ThermostatSampler {
            sample_rate,
            rng: StdRng::seed_from_u64(seed),
            poisoned: Vec::new(),
            period_mins,
        }
    }

    /// Begins a sampling period: poisons a fresh random sample of the
    /// memcg's resident pages. Returns the sample size.
    pub fn begin_period(&mut self, cg: &mut MemCgroup) -> u64 {
        // Clear stale poison from the previous period.
        for &idx in &self.poisoned {
            if idx < cg.pages.len() {
                cg.pages.set_poisoned(idx, false);
            }
        }
        self.poisoned.clear();
        let n = cg.pages.len();
        if n == 0 {
            return 0;
        }
        let target = ((n as f64 * self.sample_rate).ceil() as usize).min(n);
        // Rejection-sample distinct indices. A BTreeSet (not HashSet, rule
        // D2) keeps the poison order — and thus `self.poisoned` — a pure
        // function of the seed rather than of the process hash seed.
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < target {
            chosen.insert(self.rng.gen_range(0..n));
        }
        for idx in chosen {
            if matches!(cg.pages.state(idx), PageState::Resident) {
                cg.pages.set_poisoned(idx, true);
                cg.pages.set_sample_faulted(idx, false);
                self.poisoned.push(idx);
            }
        }
        self.poisoned.len() as u64
    }

    /// Ends the period: reads the fault outcomes off the sampled pages and
    /// produces the estimates. Poison marks are cleared.
    pub fn end_period(&mut self, cg: &mut MemCgroup) -> ThermostatEstimate {
        let sampled = self.poisoned.len() as u64;
        let mut faulted = 0u64;
        for &idx in &self.poisoned {
            if idx < cg.pages.len() {
                if cg.pages.sample_faulted(idx) {
                    faulted += 1;
                }
                cg.pages.set_poisoned(idx, false);
                cg.pages.set_sample_faulted(idx, false);
            }
        }
        self.poisoned.clear();
        let total = cg.pages.len() as f64;
        let est_cold_fraction = if sampled == 0 {
            0.0
        } else {
            1.0 - faulted as f64 / sampled as f64
        };
        // Each fault marks a page accessed at least once this period; the
        // per-page access indicator scaled up estimates unique cold-page
        // accesses per period.
        let est_promotions_per_min = if sampled == 0 {
            0.0
        } else {
            (faulted as f64 / sampled as f64) * total / self.period_mins
        };
        ThermostatEstimate {
            sampled,
            sampled_faulted: faulted,
            est_cold_fraction,
            est_promotions_per_min,
            faults_induced: faulted,
        }
    }

    /// The configured sample rate.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{Page, PageContent};
    use sdfm_types::ids::JobId;
    use sdfm_types::size::PageCount;

    fn memcg(n: usize) -> MemCgroup {
        let mut cg = MemCgroup::new(JobId::new(1), PageCount::new(1 << 20));
        for _ in 0..n {
            cg.pages.push(Page::new(PageContent::synthetic_of_len(400)));
        }
        cg
    }

    #[test]
    fn sampling_poisons_requested_fraction() {
        let mut cg = memcg(10_000);
        let mut t = ThermostatSampler::new(0.01, 2.0, 1);
        let sampled = t.begin_period(&mut cg);
        assert!((90..=110).contains(&sampled), "sampled {sampled}");
        let poisoned = (0..cg.pages.len()).filter(|&i| cg.pages.poisoned(i)).count() as u64;
        assert_eq!(poisoned, sampled);
    }

    #[test]
    fn estimates_reflect_touched_pages() {
        let mut cg = memcg(1_000);
        let mut t = ThermostatSampler::new(0.5, 1.0, 2);
        t.begin_period(&mut cg);
        // Touch the first half of memory: poisoned pages there fault.
        for i in 0..500 {
            if cg.pages.poisoned(i) {
                cg.pages.set_sample_faulted(i, true);
            }
        }
        let e = t.end_period(&mut cg);
        assert!(e.sampled > 400);
        let hot = 1.0 - e.est_cold_fraction;
        assert!(
            (0.40..=0.60).contains(&hot),
            "estimated hot fraction {hot} should be ~0.5"
        );
        // ~500 unique accesses/min estimated.
        assert!(
            (350.0..=650.0).contains(&e.est_promotions_per_min),
            "promotion estimate {}",
            e.est_promotions_per_min
        );
        // Poison cleared afterwards.
        assert!((0..cg.pages.len()).all(|i| !cg.pages.poisoned(i)));
    }

    #[test]
    fn fresh_period_resets_previous_sample() {
        let mut cg = memcg(100);
        let mut t = ThermostatSampler::new(0.2, 1.0, 3);
        t.begin_period(&mut cg);
        t.begin_period(&mut cg);
        let poisoned = (0..cg.pages.len()).filter(|&i| cg.pages.poisoned(i)).count();
        assert!(poisoned <= 25, "stale poison accumulated: {poisoned}");
    }

    #[test]
    fn empty_memcg_is_harmless() {
        let mut cg = memcg(0);
        let mut t = ThermostatSampler::new(0.1, 1.0, 4);
        assert_eq!(t.begin_period(&mut cg), 0);
        let e = t.end_period(&mut cg);
        assert_eq!(e.sampled, 0);
        assert_eq!(e.est_promotions_per_min, 0.0);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn invalid_rate_rejected() {
        let _ = ThermostatSampler::new(0.0, 1.0, 1);
    }
}
