//! Hand-crafted format vectors: the decoders must accept streams built
//! byte-by-byte from the LZ4 block / Snappy specifications (not just
//! streams our own encoders produced).

use sdfm_compress::codec::{CodecKind, DecompressError};

fn decode(kind: CodecKind, stream: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let codec = kind.build();
    let mut out = Vec::new();
    codec.decompress(stream, &mut out).map(|()| out)
}

// ---------------------------------------------------------------------------
// LZ4 block format (spec: token nibbles, LE u16 offsets, +4 match base)
// ---------------------------------------------------------------------------

#[test]
fn lz4_literals_only_block() {
    // token 0x80: 8 literals, no match (final sequence).
    let stream = [&[0x80u8][..], b"abcdefgh"].concat();
    assert_eq!(decode(CodecKind::Lz4, &stream).unwrap(), b"abcdefgh");
}

#[test]
fn lz4_sequence_with_overlapping_match() {
    // Sequence 1: token 0x14 = 1 literal, match code 4 (= length 8);
    // literal 'X'; offset 0x0001 -> overlapping RLE copy of 'X' × 8.
    // Sequence 2 (final): token 0x50 = 5 literals "ABCDE".
    let stream = [
        &[0x14u8][..],
        b"X",
        &[0x01, 0x00][..],
        &[0x50][..],
        b"ABCDE",
    ]
    .concat();
    assert_eq!(decode(CodecKind::Lz4, &stream).unwrap(), b"XXXXXXXXXABCDE");
}

#[test]
fn lz4_extended_literal_and_match_lengths() {
    // 20 literals: token 0xF?, extension byte 5 (15 + 5 = 20).
    // Then match: code 15 + extension 3 => match length 15+3+4 = 22,
    // offset 20 (copies the whole literal block and wraps).
    // Final sequence: 5 literals.
    let lits: Vec<u8> = (b'a'..b'a' + 20).collect();
    let stream = [
        &[0xFF, 0x05][..], // 15+5 literals, match code 15
        &lits,
        &[20, 0][..], // offset 20
        &[0x03][..],  // match extension: 15+3+4 = 22 bytes
        &[0x50][..],
        b"VWXYZ",
    ]
    .concat();
    let out = decode(CodecKind::Lz4, &stream).unwrap();
    let mut expected = lits.clone();
    for i in 0..22 {
        expected.push(lits[i % 20]);
    }
    expected.extend_from_slice(b"VWXYZ");
    assert_eq!(out, expected);
}

#[test]
fn lz4_empty_block() {
    assert_eq!(decode(CodecKind::Lz4, &[0x00]).unwrap(), b"");
}

#[test]
fn lz4_rejects_offset_zero() {
    // token 0x04: 0 literals, match length 8, offset 0 — illegal.
    let r = decode(CodecKind::Lz4, &[0x04, 0x00, 0x00]);
    assert!(matches!(r, Err(DecompressError::InvalidOffset { .. })));
}

// ---------------------------------------------------------------------------
// Snappy raw format (spec: varint preamble, tagged elements)
// ---------------------------------------------------------------------------

#[test]
fn snappy_literal_then_copy() {
    // Preamble: 11. Literal len 6 ("snappy"): tag (6-1)<<2 = 0x14.
    // Copy, 2-byte offset: len 5 -> tag ((5-1)<<2)|2 = 0x12, offset 6.
    let stream = [&[11u8][..], &[0x14][..], b"snappy", &[0x12, 0x06, 0x00][..]].concat();
    assert_eq!(decode(CodecKind::Snappy, &stream).unwrap(), b"snappysnapp");
}

#[test]
fn snappy_one_byte_offset_copy() {
    // Preamble 10; literal "ab" (tag 0x04); copy-1: len 8 -> tag
    // ((8-4)<<2)|1 = 0x11, offset 2 (low bits; high bits in tag are 0).
    let stream = [&[10u8][..], &[0x04][..], b"ab", &[0x11, 0x02][..]].concat();
    assert_eq!(
        decode(CodecKind::Snappy, &stream).unwrap(),
        b"abababababab"[..10].to_vec()
    );
}

#[test]
fn snappy_long_literal_with_length_byte() {
    // 100 literals: code 60 (1 extra length byte = 99).
    let lits: Vec<u8> = (0..100u8).collect();
    let stream = [&[100u8][..], &[60 << 2, 99][..], &lits].concat();
    assert_eq!(decode(CodecKind::Snappy, &stream).unwrap(), lits);
}

#[test]
fn snappy_rejects_length_mismatch() {
    // Preamble says 5 bytes, stream provides 2.
    let stream = [&[5u8][..], &[0x04][..], b"ab"].concat();
    assert!(matches!(
        decode(CodecKind::Snappy, &stream),
        Err(DecompressError::Corrupt { .. })
    ));
}

#[test]
fn snappy_empty_stream() {
    assert_eq!(decode(CodecKind::Snappy, &[0x00]).unwrap(), b"");
}

// ---------------------------------------------------------------------------
// LZO-class format (this crate's own spec, documented on LzoCodec)
// ---------------------------------------------------------------------------

#[test]
fn lzo_literal_run_then_match() {
    // Control 0x02: literal run of 3 ("abc"); control 0x20 | offset-high 0,
    // offset-low 2 -> offset 3, match code 1 -> length 3: copies "abc".
    let stream = [&[0x02u8][..], b"abc", &[0x20, 0x02][..]].concat();
    assert_eq!(decode(CodecKind::Lzo, &stream).unwrap(), b"abcabc");
}

#[test]
fn lzo_extended_match_length() {
    // Literal "z"; control 0xE0 (code 7 = extended) + extension byte 12
    // (length 8 + 12 = 20) + offset low 0 -> offset 1: 'z' × 20.
    let stream = [&[0x00u8][..], b"z", &[0xE0, 12, 0x00][..]].concat();
    let mut expected = vec![b'z'];
    expected.extend(std::iter::repeat_n(b'z', 20));
    assert_eq!(decode(CodecKind::Lzo, &stream).unwrap(), expected);
}

#[test]
fn lzo_empty_stream_is_empty_output() {
    assert_eq!(decode(CodecKind::Lzo, &[]).unwrap(), b"");
}

// ---------------------------------------------------------------------------
// Cross-codec: our encoders' streams decode under the same vectors' rules
// (sanity that encoder and spec-level decoder agree on a fixed corpus).
// ---------------------------------------------------------------------------

#[test]
fn encoders_agree_with_format_expectations() {
    let inputs: [&[u8]; 4] = [
        b"",
        b"a",
        b"the quick brown fox jumps over the lazy dog",
        &[0xAB; 1000],
    ];
    for kind in CodecKind::ALL {
        let codec = kind.build();
        for input in inputs {
            let mut compressed = Vec::new();
            codec.compress(input, &mut compressed);
            let out = decode(kind, &compressed).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(out, input, "{kind} corpus mismatch");
        }
    }
}
