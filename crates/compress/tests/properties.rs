//! Property tests: codec roundtrips on adversarial inputs, decoder
//! panic-freedom on garbage, and zsmalloc conservation invariants.

use bytes::Bytes;
use proptest::prelude::*;
use sdfm_compress::codec::CodecKind;
use sdfm_compress::zsmalloc::ZsmallocArena;

/// Inputs that stress LZ parsing: mixes of runs, repeats, and noise.
fn lz_stressor() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            // A run of one byte.
            (any::<u8>(), 1usize..300).prop_map(|(b, n)| vec![b; n]),
            // A short random motif repeated.
            (prop::collection::vec(any::<u8>(), 1..12), 1usize..40).prop_map(|(m, n)| m.repeat(n)),
            // Pure noise.
            prop::collection::vec(any::<u8>(), 0..200),
        ],
        0..12,
    )
    .prop_map(|chunks| chunks.concat())
    .prop_filter("cap block size", |v| v.len() <= 16384)
}

proptest! {
    /// Every codec roundtrips every input exactly.
    #[test]
    fn codecs_roundtrip_exactly(data in lz_stressor()) {
        for kind in CodecKind::ALL {
            let codec = kind.build();
            let mut compressed = Vec::new();
            codec.compress(&data, &mut compressed);
            prop_assert!(
                compressed.len() <= codec.max_compressed_len(data.len()),
                "{kind}: {} > bound {}", compressed.len(), codec.max_compressed_len(data.len())
            );
            let mut out = Vec::new();
            codec.decompress(&compressed, &mut out)
                .map_err(|e| TestCaseError::fail(format!("{kind}: {e}")))?;
            prop_assert_eq!(&out, &data, "{} roundtrip mismatch", kind);
        }
    }

    /// Decoders never panic on arbitrary bytes; they error or produce
    /// bounded output.
    #[test]
    fn decoders_are_panic_free(garbage in prop::collection::vec(any::<u8>(), 0..2048)) {
        for kind in CodecKind::ALL {
            let codec = kind.build();
            let mut out = Vec::new();
            let _ = codec.decompress(&garbage, &mut out);
        }
    }

    /// Flipping one byte of a Snappy stream is always detected or changes
    /// the output (the length preamble pins the output size).
    #[test]
    fn snappy_length_check_catches_output_size_changes(
        data in prop::collection::vec(any::<u8>(), 1..512),
        flip in any::<(usize, u8)>(),
    ) {
        let codec = CodecKind::Snappy.build();
        let mut compressed = Vec::new();
        codec.compress(&data, &mut compressed);
        let (pos, xor) = flip;
        let pos = pos % compressed.len();
        let xor = if xor == 0 { 1 } else { xor };
        compressed[pos] ^= xor;
        let mut out = Vec::new();
        match codec.decompress(&compressed, &mut out) {
            Err(_) => {}
            Ok(()) => prop_assert_eq!(out.len(), data.len(),
                "snappy accepted a stream with a different output size"),
        }
    }

    /// zsmalloc conserves objects and bytes through arbitrary alloc/free
    /// sequences, and compaction changes neither.
    #[test]
    fn zsmalloc_conservation(ops in prop::collection::vec((1usize..=4096, any::<bool>()), 1..200)) {
        let mut arena = ZsmallocArena::new();
        let mut live: Vec<(sdfm_compress::ZsHandle, usize)> = Vec::new();
        let mut expected_bytes = 0u64;
        for (size, is_free) in ops {
            if is_free && !live.is_empty() {
                let (h, sz) = live.swap_remove(size % live.len());
                arena.free(h).unwrap();
                expected_bytes -= sz as u64;
            } else {
                let h = arena.alloc(Bytes::from(vec![0u8; size])).unwrap();
                live.push((h, size));
                expected_bytes += size as u64;
            }
            let s = arena.stats();
            prop_assert_eq!(s.objects, live.len() as u64);
            prop_assert_eq!(s.stored_bytes, expected_bytes);
            prop_assert!(s.class_bytes >= s.stored_bytes);
            prop_assert!(s.zspage_pages * 4096 >= s.class_bytes);
        }
        let before = arena.stats();
        arena.compact();
        let after = arena.stats();
        prop_assert_eq!(after.objects, before.objects);
        prop_assert_eq!(after.stored_bytes, before.stored_bytes);
        prop_assert_eq!(after.class_bytes, before.class_bytes);
        prop_assert!(after.zspage_pages <= before.zspage_pages);
        // Every live handle still resolves with the right size.
        for (h, sz) in &live {
            prop_assert_eq!(arena.size_of(*h), Some(*sz));
        }
    }
}
