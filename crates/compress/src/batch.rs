//! Batched page compression over a [`WorkerPool`], with index-ordered
//! reassembly.
//!
//! kreclaimd drains whole reclaim batches at once, and the `codecs` bench
//! measures pages/sec at several thread counts; both need to compress many
//! independent 4 KiB pages without giving up the workspace determinism
//! contract. The functions here chunk the input across the pool, run the
//! (pure, per-page) codec in parallel, and reassemble outputs in the
//! original index order — so the result is byte-for-byte identical to a
//! sequential loop at *any* thread count, which the `batch_matches_
//! sequential` tests pin.
//!
//! Error ordering is deterministic too: [`decompress_many`] reports the
//! error of the lowest-index failing payload, regardless of which worker
//! hit one first.

use crate::codec::{DecompressError, PageCodec};
use sdfm_pool::WorkerPool;

/// How many pages each pool task handles at minimum; keeps per-task
/// overhead negligible next to ~µs-scale codec work.
const MIN_CHUNK: usize = 8;

fn chunk_size(items: usize, threads: usize) -> usize {
    items.div_ceil(threads.max(1)).max(MIN_CHUNK)
}

/// Compresses every page with `codec` across `pool`, returning the
/// compressed payloads in input order.
///
/// Bit-identical to calling [`PageCodec::compress`] sequentially: each
/// page's compression is independent and the outputs are reassembled by
/// index, never by completion order.
///
/// # Panics
///
/// Propagates a worker panic (which, per the pool contract, means a codec
/// bug — compression itself is infallible).
pub fn compress_many<P: AsRef<[u8]> + Sync>(
    codec: &dyn PageCodec,
    pages: &[P],
    pool: &WorkerPool,
) -> Vec<Vec<u8>> {
    if pages.is_empty() {
        return Vec::new();
    }
    let tasks: Vec<_> = pages
        .chunks(chunk_size(pages.len(), pool.threads()))
        .map(|chunk| {
            move || -> Vec<Vec<u8>> {
                let mut out = Vec::with_capacity(chunk.len());
                let mut buf = Vec::new();
                for page in chunk {
                    codec.compress(page.as_ref(), &mut buf);
                    out.push(buf.clone());
                }
                out
            }
        })
        .collect();
    let chunks = pool
        .run(tasks)
        .unwrap_or_else(|e| panic!("compress_many worker failed: {e}"));
    // `run` returns chunk results in submission order, so a flat concat
    // restores the original page order exactly.
    chunks.into_iter().flatten().collect()
}

/// Decompresses every payload with `codec` across `pool`, returning the
/// pages in input order.
///
/// # Errors
///
/// Returns the error of the *lowest-index* payload that fails to decode —
/// the same error a sequential loop would hit first — independent of
/// worker scheduling.
///
/// # Panics
///
/// Propagates a worker panic (a codec bug, per the pool contract).
pub fn decompress_many<P: AsRef<[u8]> + Sync>(
    codec: &dyn PageCodec,
    payloads: &[P],
    pool: &WorkerPool,
) -> Result<Vec<Vec<u8>>, DecompressError> {
    if payloads.is_empty() {
        return Ok(Vec::new());
    }
    let tasks: Vec<_> = payloads
        .chunks(chunk_size(payloads.len(), pool.threads()))
        .map(|chunk| {
            move || -> Result<Vec<Vec<u8>>, DecompressError> {
                let mut out = Vec::with_capacity(chunk.len());
                let mut buf = Vec::new();
                for payload in chunk {
                    codec.decompress(payload.as_ref(), &mut buf)?;
                    out.push(buf.clone());
                }
                Ok(out)
            }
        })
        .collect();
    let chunks = pool
        .run(tasks)
        .unwrap_or_else(|e| panic!("decompress_many worker failed: {e}"));
    // Chunks arrive in submission order; each chunk stops at its first
    // failure, so the first Err seen scanning in order is the error of the
    // globally lowest failing index.
    let mut pages = Vec::with_capacity(payloads.len());
    for chunk in chunks {
        pages.extend(chunk?);
    }
    Ok(pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecKind;
    use crate::gen::{CompressibilityMix, PageGenerator};

    fn corpus(n: usize) -> Vec<Vec<u8>> {
        let mut g = PageGenerator::new(0xBA7C);
        let mix = CompressibilityMix::fleet_default();
        (0..n).map(|_| g.generate_from_mix(&mix).1).collect()
    }

    fn sequential_compress(codec: &dyn PageCodec, pages: &[Vec<u8>]) -> Vec<Vec<u8>> {
        pages
            .iter()
            .map(|p| {
                let mut buf = Vec::new();
                codec.compress(p, &mut buf);
                buf
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_at_every_thread_count() {
        let pages = corpus(37); // odd count: uneven final chunk
        for kind in CodecKind::ALL {
            let codec = kind.build();
            let expect = sequential_compress(codec.as_ref(), &pages);
            for threads in [1, 2, 4] {
                let pool = WorkerPool::new(threads);
                let got = compress_many(codec.as_ref(), &pages, &pool);
                assert_eq!(got, expect, "{kind} diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn decompress_many_roundtrips() {
        let pages = corpus(25);
        let codec = CodecKind::Lzo.build();
        for threads in [1, 3] {
            let pool = WorkerPool::new(threads);
            let payloads = compress_many(codec.as_ref(), &pages, &pool);
            let back = decompress_many(codec.as_ref(), &payloads, &pool)
                .expect("self-produced payloads decode");
            assert_eq!(back, pages);
        }
    }

    #[test]
    fn decompress_error_is_lowest_index() {
        let pages = corpus(20);
        let codec = CodecKind::Lzo.build();
        let pool = WorkerPool::new(4);
        let mut payloads = compress_many(codec.as_ref(), &pages, &pool);
        // Corrupt two payloads in different chunks; truncation to one byte
        // is an unconditional decode error for every codec.
        payloads[17].truncate(1);
        payloads[3].truncate(1);
        let seq_err = |idx: usize| -> DecompressError {
            let mut buf = Vec::new();
            codec
                .decompress(&payloads[idx], &mut buf)
                .expect_err("truncated payload must not decode")
        };
        let late = seq_err(17);
        let early = seq_err(3);
        let got = decompress_many(codec.as_ref(), &payloads, &pool)
            .expect_err("corrupt batch must fail");
        assert_eq!(got, early, "must report index 3's error, not 17's ({late:?})");
    }

    #[test]
    fn empty_batches_are_empty() {
        let codec = CodecKind::Lzo.build();
        let pool = WorkerPool::new(2);
        let none: Vec<Vec<u8>> = Vec::new();
        assert!(compress_many(codec.as_ref(), &none, &pool).is_empty());
        assert!(decompress_many(codec.as_ref(), &none, &pool)
            .expect("empty ok")
            .is_empty());
    }
}
