//! Page compression for software-defined far memory.
//!
//! zswap trades CPU cycles for memory: cold pages are compressed in place
//! and the compressed payloads are packed into a [zsmalloc
//! arena](zsmalloc::ZsmallocArena). This crate provides everything below the
//! kernel layer:
//!
//! * three byte-oriented LZ77-family block codecs written from scratch —
//!   [`Lz4Codec`] (the LZ4 block format),
//!   [`SnappyCodec`] (the Snappy raw format), and
//!   [`LzoCodec`] (an LZO1X-class format of our own design,
//!   matching the paper's production choice of a fast, byte-aligned codec);
//! * the [`page`] module: page-sized buffers, the 2990-byte incompressible
//!   cutoff from §5.1, and [`compress_page`];
//! * the [`gen`] module: synthetic page *content* generators with controlled
//!   compressibility classes (text, structured records, zero-dominated,
//!   heap pointers, multimedia, encrypted), used to reproduce the fleet
//!   compression-ratio distribution of Figure 9a;
//! * the [`zsmalloc`] module: a size-class slab allocator for compressed
//!   payloads with external-fragmentation accounting and an explicit
//!   compaction interface, as deployed in the paper (one global arena per
//!   machine).
//!
//! # Examples
//!
//! ```
//! use sdfm_compress::codec::{Lz4Codec, PageCodec};
//!
//! let codec = Lz4Codec::new();
//! let page = vec![7u8; 4096];
//! let mut compressed = Vec::new();
//! codec.compress(&page, &mut compressed);
//! assert!(compressed.len() < 100);
//!
//! let mut out = Vec::new();
//! codec.decompress(&compressed, &mut out).unwrap();
//! assert_eq!(out, page);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod gen;
mod lz;
pub mod measure;
pub mod page;
pub mod zsmalloc;

pub use batch::{compress_many, decompress_many};
pub use codec::{CodecKind, DecompressError, Lz4Codec, LzoCodec, PageCodec, SnappyCodec};
pub use gen::{CompressibilityMix, PageClass, PageGenerator};
pub use measure::{measure_fleet_ratios, ClassPayloadStats, ClassPayloadTable, MeasuredRatios};
pub use page::{compress_page, CompressedPage, MAX_COMPRESSED_PAYLOAD};
pub use zsmalloc::{ZsHandle, ZsmallocArena, ZsmallocStats};
