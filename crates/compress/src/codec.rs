//! The three page codecs: LZ4 block format, Snappy raw format, and an
//! LZO1X-class byte-aligned format.
//!
//! The paper's production system compared lzo, lz4, and snappy and chose lzo
//! for the best speed/ratio trade-off (§5.1, footnote 1). We implement all
//! three families from scratch so that the trade-off itself can be
//! reproduced (the `codecs` bench and the `table_fn1` experiment binary):
//!
//! * [`Lz4Codec`] encodes the real LZ4 *block* format (token nibbles,
//!   extended lengths, 2-byte little-endian offsets);
//! * [`SnappyCodec`] encodes the real Snappy raw format (length preamble and
//!   tagged elements);
//! * [`LzoCodec`] encodes a compact format of our own design in the LZO1X
//!   style — byte-aligned control bytes carrying short match lengths and
//!   13-bit offsets — documented in the type's docs. It is *not* binary
//!   compatible with liblzo; it occupies the same design point (cheapest
//!   possible decode loop, byte-aligned, greedy parse).
//!
//! All decoders are panic-free on arbitrary input: malformed streams yield
//! [`DecompressError`].

use std::error::Error;
use std::fmt;

use crate::lz::{Match, MatchFinder};

/// Identifies a codec implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CodecKind {
    /// LZO1X-class byte-aligned format (production default in the paper).
    Lzo,
    /// LZ4 block format.
    Lz4,
    /// Snappy raw format.
    Snappy,
}

impl CodecKind {
    /// All codec kinds, in the order the paper's footnote lists them.
    pub const ALL: [CodecKind; 3] = [CodecKind::Lzo, CodecKind::Lz4, CodecKind::Snappy];

    /// Instantiates the codec for this kind.
    pub fn build(self) -> Box<dyn PageCodec> {
        match self {
            CodecKind::Lzo => Box::new(LzoCodec::new()),
            CodecKind::Lz4 => Box::new(Lz4Codec::new()),
            CodecKind::Snappy => Box::new(SnappyCodec::new()),
        }
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecKind::Lzo => write!(f, "lzo"),
            CodecKind::Lz4 => write!(f, "lz4"),
            CodecKind::Snappy => write!(f, "snappy"),
        }
    }
}

/// Error decoding a compressed block.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecompressError {
    /// The stream ended before the format said it would.
    Truncated,
    /// A back-reference pointed before the start of the output.
    InvalidOffset {
        /// The offending offset.
        offset: usize,
        /// Output length at the time.
        produced: usize,
    },
    /// The stream violated the format in some other way.
    Corrupt {
        /// Short description of the violation.
        detail: &'static str,
    },
}

impl fmt::Display for DecompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompressError::Truncated => write!(f, "compressed stream truncated"),
            DecompressError::InvalidOffset { offset, produced } => write!(
                f,
                "back-reference offset {offset} exceeds produced output {produced}"
            ),
            DecompressError::Corrupt { detail } => write!(f, "corrupt stream: {detail}"),
        }
    }
}

impl Error for DecompressError {}

/// A block codec operating on page-sized buffers.
///
/// Implementations are `Send + Sync` so one codec instance can serve a whole
/// simulated machine. `compress` never fails (worst case the output is
/// slightly larger than the input — the caller applies the incompressible
/// cutoff, see [`crate::page::compress_page`]); `decompress` validates the
/// stream.
pub trait PageCodec: fmt::Debug + Send + Sync {
    /// Which format this codec implements.
    fn kind(&self) -> CodecKind;

    /// Compresses `src`, appending to `dst` (which is cleared first).
    fn compress(&self, src: &[u8], dst: &mut Vec<u8>);

    /// Decompresses `src`, appending to `dst` (which is cleared first).
    ///
    /// # Errors
    ///
    /// Returns a [`DecompressError`] if the stream is truncated, contains an
    /// out-of-range back-reference, or otherwise violates the format.
    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<(), DecompressError>;

    /// An upper bound on the compressed size of `src_len` input bytes.
    fn max_compressed_len(&self, src_len: usize) -> usize {
        src_len + src_len / 16 + 64
    }
}

#[inline]
fn copy_match(dst: &mut Vec<u8>, offset: usize, len: usize) -> Result<(), DecompressError> {
    let produced = dst.len();
    if offset == 0 || offset > produced {
        return Err(DecompressError::InvalidOffset { offset, produced });
    }
    let start = produced - offset;
    if offset >= len {
        dst.extend_from_within(start..start + len);
    } else {
        // Overlapping copy (e.g. RLE through offset 1): byte at a time.
        for i in 0..len {
            let b = dst[start + i];
            dst.push(b);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// LZ4 block format
// ---------------------------------------------------------------------------

/// The LZ4 block format: token byte with literal-length and match-length
/// nibbles, extended lengths in 255-byte runs, 2-byte little-endian offsets,
/// minimum match 4, last 5 bytes always literal.
#[derive(Debug, Default)]
pub struct Lz4Codec {
    _private: (),
}

const LZ4_MIN_MATCH: usize = 4;
const LZ4_MFLIMIT: usize = 12; // matches must not start in the last 12 bytes
const LZ4_LAST_LITERALS: usize = 5;

impl Lz4Codec {
    /// Creates an LZ4 block codec.
    pub fn new() -> Self {
        Lz4Codec::default()
    }

    fn emit_sequence(dst: &mut Vec<u8>, literals: &[u8], m: Option<Match>) {
        let lit_len = literals.len();
        let ml_code = m.map(|m| m.len - LZ4_MIN_MATCH).unwrap_or(0);
        let token = ((lit_len.min(15) as u8) << 4) | (ml_code.min(15) as u8);
        dst.push(token);
        if lit_len >= 15 {
            let mut rest = lit_len - 15;
            while rest >= 255 {
                dst.push(255);
                rest -= 255;
            }
            dst.push(rest as u8);
        }
        dst.extend_from_slice(literals);
        if let Some(m) = m {
            dst.extend_from_slice(&(m.offset as u16).to_le_bytes());
            if ml_code >= 15 {
                let mut rest = ml_code - 15;
                while rest >= 255 {
                    dst.push(255);
                    rest -= 255;
                }
                dst.push(rest as u8);
            }
        }
    }
}

impl PageCodec for Lz4Codec {
    fn kind(&self) -> CodecKind {
        CodecKind::Lz4
    }

    fn compress(&self, src: &[u8], dst: &mut Vec<u8>) {
        dst.clear();
        if src.is_empty() {
            // An empty block is a single token with zero literals.
            dst.push(0);
            return;
        }
        if src.len() < LZ4_MFLIMIT {
            Self::emit_sequence(dst, src, None);
            return;
        }
        let mut finder = MatchFinder::new(12);
        let match_limit = src.len() - LZ4_LAST_LITERALS;
        let search_end = src.len() - LZ4_MFLIMIT;
        let mut anchor = 0usize;
        let mut pos = 0usize;
        while pos <= search_end {
            match finder.find_and_insert(src, pos, LZ4_MIN_MATCH, u16::MAX as usize, match_limit) {
                Some(m) if m.len >= LZ4_MIN_MATCH => {
                    Self::emit_sequence(dst, &src[anchor..pos], Some(m));
                    // Keep the table warm across the match body.
                    let next = pos + m.len;
                    let mut p = pos + 1;
                    while p < next && p <= search_end {
                        finder.insert(src, p);
                        p += 1;
                    }
                    pos = next;
                    anchor = pos;
                }
                _ => pos += 1,
            }
        }
        Self::emit_sequence(dst, &src[anchor..], None);
    }

    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<(), DecompressError> {
        dst.clear();
        let mut i = 0usize;
        loop {
            let token = *src.get(i).ok_or(DecompressError::Truncated)?;
            i += 1;
            let mut lit_len = (token >> 4) as usize;
            if lit_len == 15 {
                loop {
                    let b = *src.get(i).ok_or(DecompressError::Truncated)?;
                    i += 1;
                    lit_len += b as usize;
                    if b != 255 {
                        break;
                    }
                }
            }
            let lit_end = i.checked_add(lit_len).ok_or(DecompressError::Corrupt {
                detail: "literal length overflow",
            })?;
            if lit_end > src.len() {
                return Err(DecompressError::Truncated);
            }
            dst.extend_from_slice(&src[i..lit_end]);
            i = lit_end;
            if i == src.len() {
                // Last sequence carries literals only.
                return Ok(());
            }
            if i + 2 > src.len() {
                return Err(DecompressError::Truncated);
            }
            let offset = u16::from_le_bytes([src[i], src[i + 1]]) as usize;
            i += 2;
            let mut ml = (token & 0x0F) as usize;
            if ml == 15 {
                loop {
                    let b = *src.get(i).ok_or(DecompressError::Truncated)?;
                    i += 1;
                    ml += b as usize;
                    if b != 255 {
                        break;
                    }
                }
            }
            copy_match(dst, offset, ml + LZ4_MIN_MATCH)?;
        }
    }
}

// ---------------------------------------------------------------------------
// Snappy raw format
// ---------------------------------------------------------------------------

/// The Snappy raw format: a varint uncompressed-length preamble followed by
/// tagged elements — literals and copies with 1-, 2-, or 4-byte offsets.
///
/// The encoder emits literals and 2-byte-offset copies (sufficient for page
/// inputs); the decoder accepts the full element set.
#[derive(Debug, Default)]
pub struct SnappyCodec {
    _private: (),
}

impl SnappyCodec {
    /// Creates a Snappy codec.
    pub fn new() -> Self {
        SnappyCodec::default()
    }

    fn put_varint(dst: &mut Vec<u8>, mut v: usize) {
        while v >= 0x80 {
            dst.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        dst.push(v as u8);
    }

    fn get_varint(src: &[u8], i: &mut usize) -> Result<usize, DecompressError> {
        let mut shift = 0u32;
        let mut v = 0usize;
        loop {
            let b = *src.get(*i).ok_or(DecompressError::Truncated)?;
            *i += 1;
            if shift >= 35 {
                return Err(DecompressError::Corrupt {
                    detail: "varint too long",
                });
            }
            v |= ((b & 0x7F) as usize) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn emit_literal(dst: &mut Vec<u8>, lit: &[u8]) {
        let mut rest = lit;
        while !rest.is_empty() {
            let n = rest.len().min(65536);
            if n <= 60 {
                dst.push(((n - 1) as u8) << 2);
            } else if n <= 256 {
                dst.push(60 << 2);
                dst.push((n - 1) as u8);
            } else {
                dst.push(61 << 2);
                dst.extend_from_slice(&((n - 1) as u16).to_le_bytes());
            }
            dst.extend_from_slice(&rest[..n]);
            rest = &rest[n..];
        }
    }

    fn emit_copy(dst: &mut Vec<u8>, offset: usize, mut len: usize) {
        // 2-byte-offset copies encode lengths 1..=64.
        while len > 0 {
            let n = if len > 64 && len < 68 {
                // Avoid leaving a sub-minimum tail that would still be legal
                // but pessimal; split 60 + remainder.
                60
            } else {
                len.min(64)
            };
            dst.push((((n - 1) as u8) << 2) | 0b10);
            dst.extend_from_slice(&(offset as u16).to_le_bytes());
            len -= n;
        }
    }
}

impl PageCodec for SnappyCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Snappy
    }

    fn compress(&self, src: &[u8], dst: &mut Vec<u8>) {
        dst.clear();
        Self::put_varint(dst, src.len());
        if src.is_empty() {
            return;
        }
        let mut finder = MatchFinder::new(12);
        let mut anchor = 0usize;
        let mut pos = 0usize;
        while pos + 4 <= src.len() {
            match finder.find_and_insert(src, pos, 4, u16::MAX as usize, src.len()) {
                Some(m) => {
                    if pos > anchor {
                        Self::emit_literal(dst, &src[anchor..pos]);
                    }
                    Self::emit_copy(dst, m.offset, m.len);
                    let next = pos + m.len;
                    let mut p = pos + 1;
                    while p + 4 <= src.len() && p < next {
                        finder.insert(src, p);
                        p += 1;
                    }
                    pos = next;
                    anchor = pos;
                }
                None => pos += 1,
            }
        }
        if anchor < src.len() {
            Self::emit_literal(dst, &src[anchor..]);
        }
    }

    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<(), DecompressError> {
        dst.clear();
        let mut i = 0usize;
        let expected = Self::get_varint(src, &mut i)?;
        while i < src.len() {
            let tag = src[i];
            i += 1;
            match tag & 0b11 {
                0b00 => {
                    // Literal.
                    let code = (tag >> 2) as usize;
                    let len = if code < 60 {
                        code + 1
                    } else {
                        let extra = code - 59; // 1..=4 extra length bytes
                        let mut v = 0usize;
                        for k in 0..extra {
                            let b = *src.get(i + k).ok_or(DecompressError::Truncated)?;
                            v |= (b as usize) << (8 * k);
                        }
                        i += extra;
                        v + 1
                    };
                    let end = i.checked_add(len).ok_or(DecompressError::Corrupt {
                        detail: "literal length overflow",
                    })?;
                    if end > src.len() {
                        return Err(DecompressError::Truncated);
                    }
                    dst.extend_from_slice(&src[i..end]);
                    i = end;
                }
                0b01 => {
                    // Copy, 1-byte offset: len 4..=11, offset 11 bits.
                    let len = (((tag >> 2) & 0x7) + 4) as usize;
                    let b = *src.get(i).ok_or(DecompressError::Truncated)?;
                    i += 1;
                    let offset = (((tag & 0xE0) as usize) << 3) | b as usize;
                    copy_match(dst, offset, len)?;
                }
                0b10 => {
                    // Copy, 2-byte offset.
                    let len = ((tag >> 2) as usize) + 1;
                    if i + 2 > src.len() {
                        return Err(DecompressError::Truncated);
                    }
                    let offset = u16::from_le_bytes([src[i], src[i + 1]]) as usize;
                    i += 2;
                    copy_match(dst, offset, len)?;
                }
                _ => {
                    // Copy, 4-byte offset.
                    let len = ((tag >> 2) as usize) + 1;
                    if i + 4 > src.len() {
                        return Err(DecompressError::Truncated);
                    }
                    let offset =
                        u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]]) as usize;
                    i += 4;
                    copy_match(dst, offset, len)?;
                }
            }
        }
        if dst.len() != expected {
            return Err(DecompressError::Corrupt {
                detail: "uncompressed length mismatch",
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// LZO1X-class format
// ---------------------------------------------------------------------------

/// An LZO1X-class byte-aligned format of our own design.
///
/// Stream grammar (all lengths in bytes):
///
/// * control byte `C < 0x20`: a literal run of `C + 1` bytes follows
///   (runs of 1..=32);
/// * control byte `C >= 0x20`: a match. The top three bits `C >> 5`
///   (1..=7) encode the match length: codes 1..=6 mean lengths 3..=8;
///   code 7 means an extended length of `8 + sum` where the following
///   bytes are added until one is not 255. The low five bits of `C` are
///   the high bits of a 13-bit `offset - 1`, whose low 8 bits follow the
///   (optional) length-extension bytes. Offsets span 1..=8192 — enough to
///   cover a 4 KiB page twice over.
///
/// Like LZO1X it favours the decoder: one branch on the control byte, no
/// bit-level unpacking, byte-aligned everything.
///
/// The encoder's match-finder chain depth is configurable
/// ([`LzoCodec::with_depth`]): depth 1 (the default, and what
/// [`CodecKind::build`] ships) is the paper's cheapest-possible regime; the
/// `codecs` bench profiles deeper chains to measure the ratio/cycles
/// trade-off on fleet-mix pages. The stream format is identical at every
/// depth — only the matches the encoder finds change.
#[derive(Debug)]
pub struct LzoCodec {
    depth: usize,
}

impl Default for LzoCodec {
    fn default() -> Self {
        LzoCodec { depth: 1 }
    }
}

const LZO_MAX_OFFSET: usize = 8192;

impl LzoCodec {
    /// Creates an LZO-class codec with the production single-probe finder.
    pub fn new() -> Self {
        LzoCodec::default()
    }

    /// Creates a codec whose match finder probes up to `depth` chained
    /// candidates per position (1..=64; 1 = [`LzoCodec::new`]).
    pub fn with_depth(depth: usize) -> Self {
        assert!((1..=64).contains(&depth), "chain depth must be in [1, 64]");
        LzoCodec { depth }
    }

    /// The configured chain depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    fn emit_literals(dst: &mut Vec<u8>, lit: &[u8]) {
        for chunk in lit.chunks(32) {
            dst.push((chunk.len() - 1) as u8);
            dst.extend_from_slice(chunk);
        }
    }

    fn emit_match(dst: &mut Vec<u8>, offset: usize, len: usize) {
        debug_assert!((3..=usize::MAX).contains(&len));
        debug_assert!((1..=LZO_MAX_OFFSET).contains(&offset));
        let off = offset - 1;
        let hi = ((off >> 8) & 0x1F) as u8;
        if len <= 8 {
            let code = (len - 2) as u8; // 3..=8 -> 1..=6
            dst.push((code << 5) | hi);
        } else {
            dst.push((7 << 5) | hi);
            let mut rest = len - 8;
            while rest >= 255 {
                dst.push(255);
                rest -= 255;
            }
            dst.push(rest as u8);
        }
        dst.push((off & 0xFF) as u8);
    }
}

impl PageCodec for LzoCodec {
    fn kind(&self) -> CodecKind {
        CodecKind::Lzo
    }

    fn compress(&self, src: &[u8], dst: &mut Vec<u8>) {
        dst.clear();
        if src.is_empty() {
            return;
        }
        let mut finder = MatchFinder::with_chain(12, self.depth);
        let mut anchor = 0usize;
        let mut pos = 0usize;
        while pos + 4 <= src.len() {
            match finder.find_and_insert(src, pos, 4, LZO_MAX_OFFSET, src.len()) {
                Some(m) => {
                    if pos > anchor {
                        Self::emit_literals(dst, &src[anchor..pos]);
                    }
                    Self::emit_match(dst, m.offset, m.len);
                    let next = pos + m.len;
                    let mut p = pos + 1;
                    while p + 4 <= src.len() && p < next {
                        finder.insert(src, p);
                        p += 1;
                    }
                    pos = next;
                    anchor = pos;
                }
                None => pos += 1,
            }
        }
        if anchor < src.len() {
            Self::emit_literals(dst, &src[anchor..]);
        }
    }

    fn decompress(&self, src: &[u8], dst: &mut Vec<u8>) -> Result<(), DecompressError> {
        dst.clear();
        let mut i = 0usize;
        while i < src.len() {
            let c = src[i];
            i += 1;
            if c < 0x20 {
                let len = c as usize + 1;
                let end = i + len;
                if end > src.len() {
                    return Err(DecompressError::Truncated);
                }
                dst.extend_from_slice(&src[i..end]);
                i = end;
            } else {
                let code = (c >> 5) as usize;
                let len = if code <= 6 {
                    code + 2
                } else {
                    let mut len = 8usize;
                    loop {
                        let b = *src.get(i).ok_or(DecompressError::Truncated)?;
                        i += 1;
                        len += b as usize;
                        if b != 255 {
                            break;
                        }
                    }
                    len
                };
                let lo = *src.get(i).ok_or(DecompressError::Truncated)? as usize;
                i += 1;
                let offset = ((((c & 0x1F) as usize) << 8) | lo) + 1;
                copy_match(dst, offset, len)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_codecs() -> Vec<Box<dyn PageCodec>> {
        CodecKind::ALL.iter().map(|k| k.build()).collect()
    }

    fn roundtrip(codec: &dyn PageCodec, data: &[u8]) -> usize {
        let mut compressed = Vec::new();
        codec.compress(data, &mut compressed);
        let mut out = Vec::new();
        codec
            .decompress(&compressed, &mut out)
            .unwrap_or_else(|e| panic!("{}: decompress failed: {e}", codec.kind()));
        assert_eq!(out, data, "{} roundtrip mismatch", codec.kind());
        compressed.len()
    }

    #[test]
    fn lzo_chain_depths_roundtrip_and_do_not_hurt_ratio() {
        use crate::gen::{CompressibilityMix, PageGenerator};
        let mix = CompressibilityMix::fleet_default();
        let mut gen = PageGenerator::new(0xC4A1);
        let pages: Vec<Vec<u8>> = (0..24).map(|_| gen.generate_from_mix(&mix).1).collect();
        let total = |depth: usize| -> usize {
            let codec = LzoCodec::with_depth(depth);
            let mut buf = Vec::new();
            let mut out = Vec::new();
            pages
                .iter()
                .map(|p| {
                    codec.compress(p, &mut buf);
                    codec.decompress(&buf, &mut out).expect("self-produced");
                    assert_eq!(&out, p, "depth {depth} roundtrip mismatch");
                    buf.len()
                })
                .sum()
        };
        let d1 = total(1);
        let d4 = total(4);
        let d8 = total(8);
        // Greedy parses can shift locally, but over a fleet-mix batch a
        // deeper chain must not *lose* ratio.
        assert!(d4 <= d1, "depth 4 ({d4}) worse than depth 1 ({d1})");
        assert!(d8 <= d4 + d4 / 50, "depth 8 ({d8}) regressed vs 4 ({d4})");
        // Depth 1 via with_depth is bit-identical to the default encoder.
        let (a, b) = (LzoCodec::new(), LzoCodec::with_depth(1));
        for p in &pages {
            let (mut ba, mut bb) = (Vec::new(), Vec::new());
            a.compress(p, &mut ba);
            b.compress(p, &mut bb);
            assert_eq!(ba, bb);
        }
        assert_eq!(LzoCodec::with_depth(8).depth(), 8);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for codec in all_codecs() {
            roundtrip(codec.as_ref(), b"");
            roundtrip(codec.as_ref(), b"a");
            roundtrip(codec.as_ref(), b"abc");
            roundtrip(codec.as_ref(), b"hello world");
        }
    }

    #[test]
    fn roundtrip_constant_page_compresses_hard() {
        let page = vec![0xABu8; 4096];
        for codec in all_codecs() {
            let n = roundtrip(codec.as_ref(), &page);
            assert!(n < 200, "{}: constant page took {} bytes", codec.kind(), n);
        }
    }

    #[test]
    fn roundtrip_repetitive_text() {
        let text = "the quick brown fox jumps over the lazy dog. "
            .repeat(100)
            .into_bytes();
        for codec in all_codecs() {
            let n = roundtrip(codec.as_ref(), &text);
            assert!(
                n < text.len() / 3,
                "{}: repetitive text ratio too poor ({} of {})",
                codec.kind(),
                n,
                text.len()
            );
        }
    }

    #[test]
    fn roundtrip_incompressible_data_expands_bounded() {
        // A fixed pseudo-random page: xorshift so the test is deterministic.
        let mut x = 0x12345678u32;
        let page: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        for codec in all_codecs() {
            let n = roundtrip(codec.as_ref(), &page);
            assert!(
                n <= codec.max_compressed_len(page.len()),
                "{}: expansion {} exceeds bound {}",
                codec.kind(),
                n,
                codec.max_compressed_len(page.len())
            );
        }
    }

    #[test]
    fn roundtrip_long_match_requires_extended_lengths() {
        // >255 byte match forces the extended-length paths.
        let mut data = Vec::new();
        data.extend_from_slice(b"SEED_BLOCK_0123456789abcdef");
        let block = data.clone();
        for _ in 0..40 {
            data.extend_from_slice(&block);
        }
        for codec in all_codecs() {
            roundtrip(codec.as_ref(), &data);
        }
    }

    #[test]
    fn roundtrip_overlapping_rle() {
        // "aaaa..." generates offset-1 overlapping copies.
        let mut data = vec![b'x'; 5];
        data.extend(std::iter::repeat_n(b'a', 1000));
        data.extend_from_slice(b"tail");
        for codec in all_codecs() {
            roundtrip(codec.as_ref(), &data);
        }
    }

    #[test]
    fn decompress_detects_truncation_or_degrades_safely() {
        // LZ4 and Snappy carry enough structure to reject every prefix of a
        // real stream; the LZO-class format (like raw LZO) has no length
        // header, so a cut at an op boundary legally decodes to a shorter
        // output. Either way a truncated stream must never reproduce the
        // original page, and must never panic.
        let original = vec![7u8; 4096];
        for codec in all_codecs() {
            let mut compressed = Vec::new();
            codec.compress(&original, &mut compressed);
            for cut in [0, 1, compressed.len() / 2, compressed.len() - 1] {
                let mut out = Vec::new();
                match codec.decompress(&compressed[..cut], &mut out) {
                    Err(_) => {}
                    Ok(()) => assert_ne!(
                        out,
                        original,
                        "{}: truncation at {} reproduced the original",
                        codec.kind(),
                        cut
                    ),
                }
            }
        }
    }

    #[test]
    fn decompress_rejects_bad_offsets() {
        // LZ4: token 0x01 (0 literals, match len 4), offset 0xFFFF with no
        // produced output.
        let lz4 = Lz4Codec::new();
        let mut out = Vec::new();
        let r = lz4.decompress(&[0x01, 0xFF, 0xFF, 0x00], &mut out);
        assert!(matches!(r, Err(DecompressError::InvalidOffset { .. })));

        // Snappy: copy element before any output.
        let snappy = SnappyCodec::new();
        let r = snappy.decompress(&[4, 0b0000_1110, 0x10, 0x00], &mut out);
        assert!(r.is_err());

        // LZO: match control before any output.
        let lzo = LzoCodec::new();
        let r = lzo.decompress(&[0x20, 0x05], &mut out);
        assert!(matches!(r, Err(DecompressError::InvalidOffset { .. })));
    }

    #[test]
    fn snappy_rejects_length_mismatch() {
        let snappy = SnappyCodec::new();
        // Preamble says 10 bytes, stream carries a 1-byte literal.
        let mut out = Vec::new();
        let r = snappy.decompress(&[10, 0x00, b'z'], &mut out);
        assert_eq!(
            r,
            Err(DecompressError::Corrupt {
                detail: "uncompressed length mismatch"
            })
        );
    }

    #[test]
    fn codec_kind_display_and_build() {
        assert_eq!(CodecKind::Lzo.to_string(), "lzo");
        assert_eq!(CodecKind::Lz4.to_string(), "lz4");
        assert_eq!(CodecKind::Snappy.to_string(), "snappy");
        for k in CodecKind::ALL {
            assert_eq!(k.build().kind(), k);
        }
    }

    #[test]
    fn decoders_never_panic_on_garbage() {
        // A deterministic battery of garbage inputs.
        let mut x = 0x9E3779B9u32;
        for len in [0usize, 1, 2, 7, 64, 512] {
            for _trial in 0..50 {
                let garbage: Vec<u8> = (0..len)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 17;
                        x ^= x << 5;
                        (x >> 16) as u8
                    })
                    .collect();
                for codec in all_codecs() {
                    let mut out = Vec::new();
                    let _ = codec.decompress(&garbage, &mut out); // must not panic
                }
            }
        }
    }
}
