//! A zsmalloc-style size-class allocator for compressed page payloads.
//!
//! zswap stores each compressed payload in zsmalloc, a slab allocator whose
//! size classes pack odd-sized objects into *zspages* — groups of one to
//! four physical pages chosen per class to minimize tail waste. The paper
//! runs **one global arena per machine** with an explicit compaction
//! interface triggered by the node agent, having found that per-memcg
//! arenas fragment badly when machines pack tens to hundreds of jobs
//! (§5.1). This module reproduces that allocator faithfully enough to
//! measure the same fragmentation effects:
//!
//! * size classes every 16 bytes from 32 to 4096, each with a
//!   pages-per-zspage choice (1–4) minimizing per-zspage waste;
//! * a handle table indirection so objects can be migrated;
//! * [`compact`](ZsmallocArena::compact), which migrates objects out of
//!   sparse zspages and frees the emptied ones;
//! * internal/external fragmentation accounting for the arena ablation
//!   experiment.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use sdfm_types::arith::div_floor_u64;
use sdfm_types::size::{ByteSize, PageCount, PAGE_SIZE};

/// Smallest object size (bytes) served by the arena.
const MIN_CLASS_SIZE: u32 = 32;
/// Largest object size: one full page.
const MAX_CLASS_SIZE: u32 = PAGE_SIZE as u32;
/// Spacing between consecutive size classes.
const CLASS_STEP: u32 = 16;
/// Maximum physical pages grouped into one zspage.
const MAX_PAGES_PER_ZSPAGE: u32 = 4;

/// Errors from arena operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ZsmallocError {
    /// Requested size is zero or exceeds one page.
    InvalidSize {
        /// The rejected size.
        size: usize,
    },
    /// The handle does not name a live object (freed, stale, or foreign).
    BadHandle,
}

impl fmt::Display for ZsmallocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZsmallocError::InvalidSize { size } => {
                write!(f, "object size {size} outside 1..={MAX_CLASS_SIZE}")
            }
            ZsmallocError::BadHandle => write!(f, "stale or invalid zsmalloc handle"),
        }
    }
}

impl Error for ZsmallocError {}

/// An opaque handle to an object in the arena.
///
/// Handles survive compaction (the arena moves the object, not the handle)
/// and detect use-after-free via an embedded generation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ZsHandle {
    idx: u32,
    gen: u32,
}

const FREE_SLOT: u32 = u32::MAX;

#[derive(Debug)]
struct Zspage {
    /// Occupied slots hold the handle-table index of the resident object.
    slots: Vec<u32>,
    used: u32,
}

impl Zspage {
    fn new(capacity: u32) -> Self {
        Zspage {
            slots: vec![FREE_SLOT; capacity as usize],
            used: 0,
        }
    }

    fn find_free_slot(&self) -> Option<u32> {
        self.slots
            .iter()
            .position(|&s| s == FREE_SLOT)
            .map(|i| i as u32)
    }

    fn is_full(&self) -> bool {
        self.used as usize == self.slots.len()
    }

    fn is_empty(&self) -> bool {
        self.used == 0
    }
}

#[derive(Debug)]
struct SizeClass {
    /// Object size served by this class.
    size: u32,
    /// Physical pages per zspage (1..=4), chosen to minimize waste.
    pages_per_zspage: u32,
    /// Objects per zspage.
    objs_per_zspage: u32,
    /// Live zspages (`None` = destroyed slot, reusable).
    zspages: Vec<Option<Zspage>>,
    /// Reusable indices into `zspages`.
    free_zspage_ids: Vec<u32>,
    /// Candidate zspages that may have free slots (lazily maintained).
    partial: Vec<u32>,
}

impl SizeClass {
    fn new(size: u32) -> Self {
        // Choose pages-per-zspage minimizing the unusable tail, preferring
        // fewer pages on ties (exactly zsmalloc's policy).
        let mut best = (1u32, (PAGE_SIZE as u32) % size);
        for p in 2..=MAX_PAGES_PER_ZSPAGE {
            let waste = (p * PAGE_SIZE as u32) % size;
            if waste < best.1 {
                best = (p, waste);
            }
        }
        let pages_per_zspage = best.0;
        SizeClass {
            size,
            pages_per_zspage,
            objs_per_zspage: div_floor_u64(pages_per_zspage as u64 * PAGE_SIZE as u64, size as u64)
                as u32,
            zspages: Vec::new(),
            free_zspage_ids: Vec::new(),
            partial: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct Object {
    class: u16,
    zspage: u32,
    slot: u32,
    requested: u32,
    payload: Bytes,
    gen: u32,
}

/// Aggregate arena statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ZsmallocStats {
    /// Live objects.
    pub objects: u64,
    /// Sum of requested object sizes.
    pub stored_bytes: u64,
    /// Sum of size-class sizes of live objects (stored + internal frag).
    pub class_bytes: u64,
    /// Physical pages currently held by zspages.
    pub zspage_pages: u64,
}

impl ZsmallocStats {
    /// Bytes of DRAM the arena occupies.
    pub fn footprint(&self) -> ByteSize {
        ByteSize::new(self.zspage_pages * PAGE_SIZE as u64)
    }

    /// Fraction of class bytes lost to size-class rounding.
    pub fn internal_fragmentation(&self) -> f64 {
        if self.class_bytes == 0 {
            0.0
        } else {
            1.0 - self.stored_bytes as f64 / self.class_bytes as f64
        }
    }

    /// Fraction of the page footprint not covered by live class bytes —
    /// the sparse-zspage waste that compaction reclaims.
    pub fn external_fragmentation(&self) -> f64 {
        let cap = self.zspage_pages * PAGE_SIZE as u64;
        if cap == 0 {
            0.0
        } else {
            1.0 - self.class_bytes as f64 / cap as f64
        }
    }

    /// Overall efficiency: stored bytes per footprint byte.
    pub fn efficiency(&self) -> f64 {
        let cap = self.zspage_pages * PAGE_SIZE as u64;
        if cap == 0 {
            1.0
        } else {
            self.stored_bytes as f64 / cap as f64
        }
    }
}

/// A zsmalloc-style arena storing compressed payloads.
///
/// # Examples
///
/// ```
/// use sdfm_compress::zsmalloc::ZsmallocArena;
/// use bytes::Bytes;
///
/// let mut arena = ZsmallocArena::new();
/// let h = arena.alloc(Bytes::from(vec![1u8; 100]))?;
/// assert_eq!(arena.get(h).unwrap().len(), 100);
/// arena.free(h)?;
/// assert!(arena.get(h).is_none());
/// # Ok::<(), sdfm_compress::zsmalloc::ZsmallocError>(())
/// ```
#[derive(Debug)]
pub struct ZsmallocArena {
    classes: Vec<SizeClass>,
    objects: Vec<Option<Object>>,
    free_object_ids: Vec<u32>,
    next_gen: u32,
    stats: ZsmallocStats,
}

impl ZsmallocArena {
    /// Creates an empty arena with the default size classes (32..=4096,
    /// step 16).
    pub fn new() -> Self {
        let classes = (MIN_CLASS_SIZE..=MAX_CLASS_SIZE)
            .step_by(CLASS_STEP as usize)
            .map(SizeClass::new)
            .collect();
        ZsmallocArena {
            classes,
            objects: Vec::new(),
            free_object_ids: Vec::new(),
            next_gen: 1,
            stats: ZsmallocStats::default(),
        }
    }

    fn class_for(&self, size: usize) -> Result<u16, ZsmallocError> {
        if size == 0 || size > MAX_CLASS_SIZE as usize {
            return Err(ZsmallocError::InvalidSize { size });
        }
        let size = (size as u32).max(MIN_CLASS_SIZE);
        let idx = (size - MIN_CLASS_SIZE).div_ceil(CLASS_STEP);
        Ok(idx as u16)
    }

    /// Stores `payload`, returning a handle. The object's size is the
    /// payload length.
    ///
    /// # Errors
    ///
    /// Returns [`ZsmallocError::InvalidSize`] when the payload is empty or
    /// larger than one page.
    pub fn alloc(&mut self, payload: Bytes) -> Result<ZsHandle, ZsmallocError> {
        let size = payload.len();
        self.alloc_inner(size, payload)
    }

    /// Reserves space for an object of `size` bytes without retaining any
    /// payload bytes — used by statistical simulations that track sizes
    /// only.
    ///
    /// # Errors
    ///
    /// Returns [`ZsmallocError::InvalidSize`] when `size` is zero or larger
    /// than one page.
    pub fn alloc_uninit(&mut self, size: usize) -> Result<ZsHandle, ZsmallocError> {
        self.alloc_inner(size, Bytes::new())
    }

    fn alloc_inner(&mut self, size: usize, payload: Bytes) -> Result<ZsHandle, ZsmallocError> {
        let class_idx = self.class_for(size)?;
        let (zspage_id, slot) = self.take_slot(class_idx);
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1).max(1);
        let obj = Object {
            class: class_idx,
            zspage: zspage_id,
            slot,
            requested: size as u32,
            payload,
            gen,
        };
        let idx = match self.free_object_ids.pop() {
            Some(i) => {
                self.objects[i as usize] = Some(obj);
                i
            }
            None => {
                self.objects.push(Some(obj));
                (self.objects.len() - 1) as u32
            }
        };
        let class = &mut self.classes[class_idx as usize];
        class.zspages[zspage_id as usize]
            .as_mut()
            // sdfm-lint: allow(P1) reason="take_slot returned a slot in a live zspage one call above"
            .expect("slot taken from live zspage")
            .slots[slot as usize] = idx;
        self.stats.objects += 1;
        self.stats.stored_bytes += size as u64;
        self.stats.class_bytes += class.size as u64;
        Ok(ZsHandle { idx, gen })
    }

    /// Finds (or creates) a zspage with a free slot in `class_idx` and
    /// claims the slot (increments `used`; caller writes the slot).
    fn take_slot(&mut self, class_idx: u16) -> (u32, u32) {
        let class = &mut self.classes[class_idx as usize];
        // Pop stale entries off the partial list until a usable one shows.
        while let Some(&zid) = class.partial.last() {
            match class.zspages.get(zid as usize).and_then(|z| z.as_ref()) {
                Some(z) if !z.is_full() => {
                    // sdfm-lint: allow(P1) reason="the zspage was just matched non-full, so a free slot exists"
                    let slot = z.find_free_slot().expect("non-full zspage has a slot");
                    // sdfm-lint: allow(P1) reason="liveness checked in the match arm above"
                    let z = class.zspages[zid as usize].as_mut().expect("checked live");
                    z.used += 1;
                    if z.is_full() {
                        class.partial.pop();
                    }
                    return (zid, slot);
                }
                _ => {
                    class.partial.pop();
                }
            }
        }
        // No partial zspage: grow.
        let zspage = Zspage::new(class.objs_per_zspage);
        let zid = match class.free_zspage_ids.pop() {
            Some(i) => {
                class.zspages[i as usize] = Some(zspage);
                i
            }
            None => {
                class.zspages.push(Some(zspage));
                (class.zspages.len() - 1) as u32
            }
        };
        // sdfm-lint: allow(P1) reason="the zspage was inserted into this slot two lines above"
        let z = class.zspages[zid as usize].as_mut().expect("just created");
        z.used = 1;
        if class.objs_per_zspage > 1 {
            class.partial.push(zid);
        }
        self.stats.zspage_pages += class.pages_per_zspage as u64;
        (zid, 0)
    }

    fn lookup(&self, handle: ZsHandle) -> Option<&Object> {
        self.objects
            .get(handle.idx as usize)?
            .as_ref()
            .filter(|o| o.gen == handle.gen)
    }

    /// The payload stored under `handle`, or `None` if the handle is stale.
    pub fn get(&self, handle: ZsHandle) -> Option<&Bytes> {
        self.lookup(handle).map(|o| &o.payload)
    }

    /// The requested size of the object under `handle`.
    pub fn size_of(&self, handle: ZsHandle) -> Option<usize> {
        self.lookup(handle).map(|o| o.requested as usize)
    }

    /// Frees the object under `handle`.
    ///
    /// # Errors
    ///
    /// Returns [`ZsmallocError::BadHandle`] for stale or invalid handles
    /// (including double frees).
    pub fn free(&mut self, handle: ZsHandle) -> Result<(), ZsmallocError> {
        let slot_ref = self
            .objects
            .get_mut(handle.idx as usize)
            .ok_or(ZsmallocError::BadHandle)?;
        match slot_ref {
            Some(o) if o.gen == handle.gen => {}
            _ => return Err(ZsmallocError::BadHandle),
        }
        // sdfm-lint: allow(P1) reason="slot occupancy and generation checked two lines above"
        let obj = slot_ref.take().expect("checked above");
        self.free_object_ids.push(handle.idx);

        let class = &mut self.classes[obj.class as usize];
        let zspage = class.zspages[obj.zspage as usize]
            .as_mut()
            // sdfm-lint: allow(P1) reason="a live object always indexes a live zspage; free() maintains the invariant"
            .expect("object lives in a live zspage");
        zspage.slots[obj.slot as usize] = FREE_SLOT;
        let was_full = zspage.is_full();
        zspage.used -= 1;
        if zspage.is_empty() {
            class.zspages[obj.zspage as usize] = None;
            class.free_zspage_ids.push(obj.zspage);
            self.stats.zspage_pages -= class.pages_per_zspage as u64;
        } else if was_full {
            class.partial.push(obj.zspage);
        }
        self.stats.objects -= 1;
        self.stats.stored_bytes -= obj.requested as u64;
        self.stats.class_bytes -= class.size as u64;
        Ok(())
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> ZsmallocStats {
        self.stats
    }

    /// Migrates objects out of sparsely used zspages into fuller ones and
    /// frees the emptied zspages, returning the number of physical pages
    /// reclaimed. This is the explicit compaction interface the node agent
    /// triggers (§5.1).
    pub fn compact(&mut self) -> PageCount {
        let mut freed_pages = 0u64;
        for class_idx in 0..self.classes.len() {
            freed_pages += self.compact_class(class_idx);
        }
        self.stats.zspage_pages -= freed_pages;
        PageCount::new(freed_pages)
    }

    fn compact_class(&mut self, class_idx: usize) -> u64 {
        let class = &mut self.classes[class_idx];
        if class.objs_per_zspage == 1 {
            return 0; // singleton zspages cannot fragment externally
        }
        // Collect live, partially filled zspages sorted emptiest-first.
        let mut partials: Vec<u32> = class
            .zspages
            .iter()
            .enumerate()
            .filter_map(|(i, z)| match z {
                Some(z) if !z.is_full() && !z.is_empty() => Some(i as u32),
                _ => None,
            })
            .collect();
        partials.sort_by_key(|&i| {
            class.zspages[i as usize]
                .as_ref()
                // sdfm-lint: allow(P1) reason="index list was filtered to live zspages in the expression above"
                .expect("filtered live")
                .used
        });

        let mut freed = 0u64;
        let (mut lo, mut hi) = (0usize, partials.len());
        // Drain the emptiest zspage (lo) into the fullest partials
        // (hi - 1, hi - 2, ...) until the pointers meet.
        'outer: while lo + 1 < hi {
            let src_id = partials[lo];
            loop {
                // sdfm-lint: allow(P1) reason="partials holds only live zspage ids, filtered at collection"
                let src = class.zspages[src_id as usize].as_ref().expect("live");
                if src.is_empty() {
                    break;
                }
                let src_slot = src
                    .slots
                    .iter()
                    .position(|&s| s != FREE_SLOT)
                    // sdfm-lint: allow(P1) reason="the loop breaks before this point when the source zspage is empty"
                    .expect("non-empty zspage") as u32;
                // Find a destination with room, searching from the fullest.
                let mut dst_id = None;
                while hi > lo + 1 {
                    let cand = partials[hi - 1];
                    // sdfm-lint: allow(P1) reason="candidate ids come from the same live partial list"
                    let z = class.zspages[cand as usize].as_ref().expect("live");
                    if z.is_full() {
                        hi -= 1;
                        continue;
                    }
                    dst_id = Some(cand);
                    break;
                }
                let Some(dst_id) = dst_id else { break 'outer };
                // sdfm-lint: allow(P1) reason="dst_id was selected from live candidates above"
                let dst = class.zspages[dst_id as usize].as_ref().expect("live");
                // sdfm-lint: allow(P1) reason="the destination was chosen for having room, so a free slot exists"
                let dst_slot = dst.find_free_slot().expect("non-full zspage");

                let obj_idx =
                    // sdfm-lint: allow(P1) reason="source liveness established at loop entry"
                    class.zspages[src_id as usize].as_ref().expect("live").slots[src_slot as usize];
                // Move the object.
                {
                    // sdfm-lint: allow(P1) reason="source liveness established at loop entry"
                    let z = class.zspages[src_id as usize].as_mut().expect("live");
                    z.slots[src_slot as usize] = FREE_SLOT;
                    z.used -= 1;
                }
                {
                    // sdfm-lint: allow(P1) reason="destination liveness established when it was selected"
                    let z = class.zspages[dst_id as usize].as_mut().expect("live");
                    z.slots[dst_slot as usize] = obj_idx;
                    z.used += 1;
                }
                let obj = self.objects[obj_idx as usize]
                    .as_mut()
                    // sdfm-lint: allow(P1) reason="slots hold only live object indices; moves keep them in sync"
                    .expect("slot names a live object");
                obj.zspage = dst_id;
                obj.slot = dst_slot;
            }
            // Source drained: destroy it.
            class.zspages[src_id as usize] = None;
            class.free_zspage_ids.push(src_id);
            freed += class.pages_per_zspage as u64;
            lo += 1;
        }
        // Rebuild the partial list for this class.
        class.partial = class
            .zspages
            .iter()
            .enumerate()
            .filter_map(|(i, z)| match z {
                Some(z) if !z.is_full() && !z.is_empty() => Some(i as u32),
                _ => None,
            })
            .collect();
        freed
    }
}

impl Default for ZsmallocArena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![0xAA; n])
    }

    #[test]
    fn alloc_get_free_roundtrip() {
        let mut a = ZsmallocArena::new();
        let h = a.alloc(payload(777)).unwrap();
        assert_eq!(a.get(h).unwrap().len(), 777);
        assert_eq!(a.size_of(h), Some(777));
        a.free(h).unwrap();
        assert!(a.get(h).is_none());
        assert_eq!(a.free(h), Err(ZsmallocError::BadHandle));
    }

    #[test]
    fn rejects_invalid_sizes() {
        let mut a = ZsmallocArena::new();
        assert_eq!(
            a.alloc(Bytes::new()),
            Err(ZsmallocError::InvalidSize { size: 0 })
        );
        assert_eq!(
            a.alloc_uninit(4097),
            Err(ZsmallocError::InvalidSize { size: 4097 })
        );
        assert!(a.alloc_uninit(4096).is_ok());
        assert!(a.alloc_uninit(1).is_ok()); // rounds up to the 32-byte class
    }

    #[test]
    fn stale_handles_from_reused_slots_rejected() {
        let mut a = ZsmallocArena::new();
        let h1 = a.alloc(payload(64)).unwrap();
        a.free(h1).unwrap();
        let h2 = a.alloc(payload(64)).unwrap();
        // h1 and h2 may share the table slot but differ in generation.
        assert!(a.get(h1).is_none());
        assert!(a.get(h2).is_some());
        assert_eq!(a.free(h1), Err(ZsmallocError::BadHandle));
        a.free(h2).unwrap();
    }

    #[test]
    fn stats_track_objects_and_bytes() {
        let mut a = ZsmallocArena::new();
        let h1 = a.alloc_uninit(100).unwrap(); // class 112
        let _h2 = a.alloc_uninit(2000).unwrap(); // class 2000 exactly
        let s = a.stats();
        assert_eq!(s.objects, 2);
        assert_eq!(s.stored_bytes, 2100);
        assert!(s.class_bytes >= 2100);
        assert!(s.zspage_pages > 0);
        assert!(s.internal_fragmentation() >= 0.0);
        a.free(h1).unwrap();
        assert_eq!(a.stats().objects, 1);
    }

    #[test]
    fn class_rounding_is_tight() {
        let a = ZsmallocArena::new();
        // 100 rounds to 112 (32 + k*16).
        let c = a.class_for(100).unwrap();
        assert_eq!(a.classes[c as usize].size, 112);
        let c = a.class_for(32).unwrap();
        assert_eq!(a.classes[c as usize].size, 32);
        let c = a.class_for(33).unwrap();
        assert_eq!(a.classes[c as usize].size, 48);
        let c = a.class_for(4096).unwrap();
        assert_eq!(a.classes[c as usize].size, 4096);
    }

    #[test]
    fn zspage_geometry_minimizes_waste() {
        let a = ZsmallocArena::new();
        for class in &a.classes {
            let chosen_waste = (class.pages_per_zspage * PAGE_SIZE as u32) % class.size;
            for p in 1..=MAX_PAGES_PER_ZSPAGE {
                let waste = (p * PAGE_SIZE as u32) % class.size;
                assert!(
                    chosen_waste <= waste,
                    "class {}: chose {} pages (waste {}), {} pages wastes {}",
                    class.size,
                    class.pages_per_zspage,
                    chosen_waste,
                    p,
                    waste
                );
            }
            assert_eq!(
                class.objs_per_zspage,
                class.pages_per_zspage * PAGE_SIZE as u32 / class.size
            );
        }
    }

    #[test]
    fn empty_zspages_are_freed_immediately() {
        let mut a = ZsmallocArena::new();
        let hs: Vec<_> = (0..10).map(|_| a.alloc_uninit(64).unwrap()).collect();
        let pages_with_objects = a.stats().zspage_pages;
        assert!(pages_with_objects > 0);
        for h in hs {
            a.free(h).unwrap();
        }
        assert_eq!(a.stats().zspage_pages, 0);
        assert_eq!(a.stats().objects, 0);
    }

    #[test]
    fn fragmentation_builds_and_compaction_reclaims() {
        let mut a = ZsmallocArena::new();
        // Fill many zspages of one class, then free most objects, leaving
        // each zspage sparsely occupied.
        let handles: Vec<_> = (0..2048).map(|_| a.alloc_uninit(128).unwrap()).collect();
        let full_pages = a.stats().zspage_pages;
        // Free 31 of every 32 objects (128-byte class: 32 objs/zspage).
        for (i, h) in handles.iter().enumerate() {
            if i % 32 != 0 {
                a.free(*h).unwrap();
            }
        }
        let sparse = a.stats();
        assert_eq!(sparse.zspage_pages, full_pages, "no zspage became empty");
        assert!(
            sparse.external_fragmentation() > 0.9,
            "external fragmentation {} too low",
            sparse.external_fragmentation()
        );
        let freed = a.compact();
        assert!(freed.get() > 0, "compaction reclaimed nothing");
        let compacted = a.stats();
        assert!(compacted.zspage_pages < full_pages);
        assert!(compacted.external_fragmentation() < sparse.external_fragmentation());
        // All survivors still resolve.
        for (i, h) in handles.iter().enumerate() {
            if i % 32 == 0 {
                assert!(a.get(*h).is_some(), "object {i} lost in compaction");
            }
        }
    }

    #[test]
    fn compaction_preserves_payloads() {
        let mut a = ZsmallocArena::new();
        let mut kept = Vec::new();
        for i in 0..512u32 {
            let body = Bytes::from(i.to_le_bytes().repeat(16)); // 64 bytes
            let h = a.alloc(body.clone()).unwrap();
            if i % 7 == 0 {
                kept.push((h, body));
            }
        }
        // Free everything not kept.
        // (Handles not kept were dropped; re-derive by generation scan is
        // not possible, so re-allocate differently: free by index sweep.)
        let all: Vec<ZsHandle> = (0..a.objects.len() as u32)
            .filter_map(|idx| {
                a.objects[idx as usize]
                    .as_ref()
                    .map(|o| ZsHandle { idx, gen: o.gen })
            })
            .collect();
        for h in all {
            if !kept.iter().any(|(k, _)| *k == h) {
                a.free(h).unwrap();
            }
        }
        a.compact();
        for (h, body) in &kept {
            assert_eq!(a.get(*h), Some(body));
        }
    }

    #[test]
    fn compact_on_empty_arena_is_noop() {
        let mut a = ZsmallocArena::new();
        assert_eq!(a.compact().get(), 0);
        assert_eq!(a.stats(), ZsmallocStats::default());
    }

    #[test]
    fn stats_efficiency_bounds() {
        let mut a = ZsmallocArena::new();
        for _ in 0..100 {
            a.alloc_uninit(1000).unwrap();
        }
        let s = a.stats();
        assert!(s.efficiency() > 0.5 && s.efficiency() <= 1.0);
        assert!(s.footprint().get() >= s.stored_bytes);
    }
}
