//! Page-level compression policy: the incompressible cutoff.
//!
//! §5.1: "there are no gains to be derived by storing zsmalloc payloads
//! larger than 2990 bytes (73% of a 4 KiB x86 page), where metadata overhead
//! becomes higher than savings from compressing the page." Pages whose
//! compressed payload exceeds [`MAX_COMPRESSED_PAYLOAD`] are marked
//! incompressible and rejected; the kernel clears the mark when the page is
//! dirtied again.

use bytes::Bytes;

use crate::codec::PageCodec;
use sdfm_types::size::PAGE_SIZE;

/// The largest zsmalloc payload worth storing: 2990 bytes, 73% of a 4 KiB
/// page (§5.1).
pub const MAX_COMPRESSED_PAYLOAD: usize = 2990;

/// The outcome of attempting to compress one page for the zswap store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressedPage {
    /// The page compressed under the cutoff; the payload is what zsmalloc
    /// stores.
    Stored {
        /// The compressed payload.
        payload: Bytes,
    },
    /// The compressed payload would have exceeded
    /// [`MAX_COMPRESSED_PAYLOAD`]; the page is marked incompressible and
    /// left in DRAM.
    Incompressible {
        /// The size the payload would have had, for accounting.
        would_be_len: usize,
    },
}

impl CompressedPage {
    /// The stored payload length, or `None` for incompressible pages.
    pub fn stored_len(&self) -> Option<usize> {
        match self {
            CompressedPage::Stored { payload } => Some(payload.len()),
            CompressedPage::Incompressible { .. } => None,
        }
    }

    /// The compression ratio achieved (page size / payload size), or `None`
    /// for incompressible pages.
    pub fn ratio(&self) -> Option<f64> {
        self.stored_len().map(|n| PAGE_SIZE as f64 / n as f64)
    }
}

/// Compresses one 4 KiB page and applies the incompressible cutoff.
///
/// # Panics
///
/// Panics if `page` is not exactly [`PAGE_SIZE`] bytes: the zswap store
/// works strictly at OS-page granularity.
///
/// # Examples
///
/// ```
/// use sdfm_compress::codec::LzoCodec;
/// use sdfm_compress::page::{compress_page, CompressedPage};
///
/// let codec = LzoCodec::new();
/// let zeros = vec![0u8; 4096];
/// assert!(matches!(compress_page(&codec, &zeros), CompressedPage::Stored { .. }));
/// ```
pub fn compress_page(codec: &dyn PageCodec, page: &[u8]) -> CompressedPage {
    assert_eq!(
        page.len(),
        PAGE_SIZE,
        "zswap compresses whole 4 KiB pages, got {} bytes",
        page.len()
    );
    let mut buf = Vec::with_capacity(codec.max_compressed_len(PAGE_SIZE));
    codec.compress(page, &mut buf);
    if buf.len() > MAX_COMPRESSED_PAYLOAD {
        CompressedPage::Incompressible {
            would_be_len: buf.len(),
        }
    } else {
        CompressedPage::Stored {
            payload: Bytes::from(buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{CodecKind, LzoCodec};

    #[test]
    fn zero_page_stores_with_high_ratio() {
        let codec = LzoCodec::new();
        let page = vec![0u8; PAGE_SIZE];
        let c = compress_page(&codec, &page);
        let ratio = c.ratio().expect("zero page must store");
        assert!(ratio > 20.0, "ratio {ratio} too low for a zero page");
    }

    #[test]
    fn random_page_is_incompressible() {
        // Deterministic xorshift noise: entropy ~8 bits/byte.
        let mut x = 0xDEADBEEFu32;
        let page: Vec<u8> = (0..PAGE_SIZE)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        for kind in CodecKind::ALL {
            let codec = kind.build();
            let c = compress_page(codec.as_ref(), &page);
            assert!(
                matches!(c, CompressedPage::Incompressible { .. }),
                "{kind}: random page unexpectedly stored"
            );
            if let CompressedPage::Incompressible { would_be_len } = c {
                assert!(would_be_len > MAX_COMPRESSED_PAYLOAD);
            }
        }
    }

    #[test]
    fn cutoff_is_2990_bytes() {
        assert_eq!(MAX_COMPRESSED_PAYLOAD, 2990);
        // 2990 / 4096 = 73%.
        assert_eq!(MAX_COMPRESSED_PAYLOAD * 100 / PAGE_SIZE, 72); // 72.99…%
    }

    #[test]
    #[should_panic(expected = "whole 4 KiB pages")]
    fn non_page_sized_input_rejected() {
        let codec = LzoCodec::new();
        let _ = compress_page(&codec, &[0u8; 100]);
    }

    #[test]
    fn stored_roundtrips_through_codec() {
        let codec = LzoCodec::new();
        let page: Vec<u8> = (0..PAGE_SIZE).map(|i| (i / 64) as u8).collect();
        match compress_page(&codec, &page) {
            CompressedPage::Stored { payload } => {
                let mut out = Vec::new();
                codec.decompress(&payload, &mut out).unwrap();
                assert_eq!(out, page);
            }
            CompressedPage::Incompressible { .. } => panic!("structured page must compress"),
        }
    }
}
