//! Realized compression measurement: what the production codec *actually*
//! does to generated fleet pages.
//!
//! The paper's economics rest on measured compression (§5.1, §6.3): a ~3×
//! median ratio, a 2990-byte incompressible cutoff, 31% incompressible
//! pages. This module runs the real codecs over [`gen`](crate::gen)'s page
//! classes and distills the results into two deterministic artifacts:
//!
//! * [`ClassPayloadTable`] — per-class acceptance fraction and mean stored
//!   payload, measured per codec. The fleet simulator and the cost model
//!   derive per-job realized ratios from this table and a job's
//!   [`CompressibilityMix`], replacing the static modeled constants.
//! * [`MeasuredRatios`] — the fleet-mix ratio distribution (histogram,
//!   median, aggregate) that the `codecs` bench emits and the acceptance
//!   tests check against the paper's ~3× regime.
//!
//! Everything here is a pure function of `(codec, seed, sample size)` — no
//! wall clock, no ambient randomness — so simulators seeded with these
//! numbers stay bit-identical across runs and thread counts. Cycle costs
//! (which *do* need the wall clock) live behind the D1 allowance in
//! `sdfm-kernel`'s `cost.rs`, not here.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::codec::CodecKind;
use crate::gen::{CompressibilityMix, PageClass, PageGenerator};
use crate::page::MAX_COMPRESSED_PAYLOAD;
use sdfm_types::arith::permille_ratio;
use sdfm_types::size::PAGE_SIZE;

/// Sample size per class for [`ClassPayloadTable::measured_default`]:
/// large enough for stable means, small enough to measure in milliseconds.
pub const DEFAULT_PAGES_PER_CLASS: usize = 48;

/// The seed every default measurement uses, so two processes (or two
/// threads) computing the table independently agree bit-for-bit.
pub const MEASUREMENT_SEED: u64 = 0xD15C;

/// Realized per-class compression statistics, in integer per-mille so the
/// table is `Eq` and serializes exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassPayloadStats {
    /// Mean compressed payload (bytes) over *stored* pages of the class.
    /// [`PAGE_SIZE`] when the codec stored none (the value is then never
    /// weighted into a mix expectation).
    pub mean_payload_bytes: u32,
    /// Fraction of the class's pages the cutoff accepted, in per-mille.
    pub stored_permille: u32,
}

/// Per-class realized payload statistics for one codec, measured by
/// compressing generated pages and applying the §5.1 cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassPayloadTable {
    /// The codec measured.
    pub codec: CodecKind,
    /// Pages compressed per class.
    pub pages_per_class: u32,
    /// Generator seed.
    pub seed: u64,
    stats: [ClassPayloadStats; PageClass::ALL.len()],
}

fn class_index(class: PageClass) -> usize {
    PageClass::ALL
        .iter()
        .position(|&c| c == class)
        .unwrap_or(0)
}

impl ClassPayloadTable {
    /// Measures the table: `pages_per_class` generated pages of every
    /// class, compressed with the real codec, cutoff applied.
    /// Deterministic for a given `(kind, pages_per_class, seed)`.
    pub fn measure(kind: CodecKind, pages_per_class: usize, seed: u64) -> Self {
        let codec = kind.build();
        let n = pages_per_class.max(8);
        let mut stats = [ClassPayloadStats {
            mean_payload_bytes: PAGE_SIZE as u32,
            stored_permille: 0,
        }; PageClass::ALL.len()];
        let mut buf = Vec::with_capacity(PAGE_SIZE + PAGE_SIZE.div_ceil(8));
        for class in PageClass::ALL {
            // Per-class generator stream: adding a class never perturbs
            // another class's sample.
            let mut gen = PageGenerator::new(seed ^ ((class_index(class) as u64 + 1) << 32));
            let mut stored = 0u64;
            let mut stored_bytes = 0u64;
            for _ in 0..n {
                let page = gen.generate(class);
                codec.compress(&page, &mut buf);
                if buf.len() <= MAX_COMPRESSED_PAYLOAD {
                    stored += 1;
                    stored_bytes += buf.len() as u64;
                }
            }
            stats[class_index(class)] = ClassPayloadStats {
                mean_payload_bytes: stored_bytes
                    .checked_div(stored)
                    .map_or(PAGE_SIZE as u32, |m| m as u32),
                stored_permille: (stored * 1000 / n as u64) as u32,
            };
        }
        ClassPayloadTable {
            codec: kind,
            pages_per_class: n as u32,
            seed,
            stats,
        }
    }

    /// The process-wide default measurement for `kind`
    /// ([`DEFAULT_PAGES_PER_CLASS`] pages per class at
    /// [`MEASUREMENT_SEED`]), computed once and cached. Deterministic, so
    /// caching is an optimization, never a behavior change.
    pub fn measured_default(kind: CodecKind) -> &'static ClassPayloadTable {
        static TABLES: [OnceLock<ClassPayloadTable>; CodecKind::ALL.len()] =
            [OnceLock::new(), OnceLock::new(), OnceLock::new()];
        let idx = CodecKind::ALL
            .iter()
            .position(|&k| k == kind)
            .unwrap_or(0);
        TABLES[idx]
            .get_or_init(|| Self::measure(kind, DEFAULT_PAGES_PER_CLASS, MEASUREMENT_SEED))
    }

    /// The measured statistics for one class.
    pub fn stats(&self, class: PageClass) -> ClassPayloadStats {
        self.stats[class_index(class)]
    }

    /// The realized acceptance fraction of `mix`, in per-mille: the
    /// measured probability that a page drawn from the mix compresses
    /// under the cutoff.
    pub fn stored_permille(&self, mix: &CompressibilityMix) -> u32 {
        let p: f64 = PageClass::ALL
            .iter()
            .map(|&c| mix.weight(c) * self.stats(c).stored_permille as f64)
            .sum();
        (p.round() as u32).min(1000)
    }

    /// The realized rejection fraction of `mix`, in per-mille.
    pub fn rejected_permille(&self, mix: &CompressibilityMix) -> u32 {
        1000 - self.stored_permille(mix)
    }

    /// The realized compression ratio of `mix`'s *stored* pages, in
    /// per-mille (3000 = 3.00×): `PAGE_SIZE / E[payload | stored]`.
    /// Returns 1000 (1×) when the mix stores nothing.
    pub fn ratio_permille(&self, mix: &CompressibilityMix) -> u32 {
        let mut stored_weight = 0.0f64;
        let mut payload = 0.0f64;
        for &c in &PageClass::ALL {
            let s = self.stats(c);
            let w = mix.weight(c) * s.stored_permille as f64 / 1000.0;
            stored_weight += w;
            payload += w * s.mean_payload_bytes as f64;
        }
        if stored_weight <= 0.0 || payload <= 0.0 {
            return 1000;
        }
        let ratio = PAGE_SIZE as f64 * 1000.0 * stored_weight / payload;
        (ratio.round() as u32).max(1000)
    }
}

/// One bucket of the realized ratio histogram (per-page ratios, stored
/// pages only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RatioBucket {
    /// Inclusive lower ratio bound, per-mille.
    pub lo_permille: u32,
    /// Exclusive upper ratio bound, per-mille (`u32::MAX` = open-ended).
    pub hi_permille: u32,
    /// Stored pages falling in the bucket.
    pub pages: u64,
}

/// The realized fleet-mix ratio distribution for one codec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasuredRatios {
    /// The codec measured.
    pub codec: CodecKind,
    /// Pages compressed.
    pub pages: u64,
    /// Pages stored (payload under the cutoff).
    pub stored: u64,
    /// Pages rejected as incompressible.
    pub rejected: u64,
    /// Median per-page ratio over stored pages, per-mille.
    pub median_ratio_permille: u32,
    /// Aggregate ratio (`stored × PAGE_SIZE / Σ payload`), per-mille.
    pub aggregate_ratio_permille: u32,
    /// Half-turn (500‰) buckets from 1× up, stored pages only.
    pub histogram: Vec<RatioBucket>,
}

impl MeasuredRatios {
    /// Fraction of pages the cutoff rejected, in per-mille.
    pub fn rejected_permille(&self) -> u32 {
        (self.rejected * 1000)
            .checked_div(self.pages)
            .map_or(0, |p| p as u32)
    }
}

/// Measures the per-page ratio distribution of `pages` pages drawn from
/// `mix`, compressed with `kind`'s real codec. Deterministic for a given
/// `(kind, mix, pages, seed)`.
pub fn measure_fleet_ratios(
    kind: CodecKind,
    mix: &CompressibilityMix,
    pages: usize,
    seed: u64,
) -> MeasuredRatios {
    let codec = kind.build();
    let mut gen = PageGenerator::new(seed);
    let n = pages.max(16);
    let mut buf = Vec::with_capacity(PAGE_SIZE + PAGE_SIZE.div_ceil(8));
    let mut stored_ratios: Vec<u32> = Vec::with_capacity(n);
    let mut payload_total = 0u64;
    let mut rejected = 0u64;
    for _ in 0..n {
        let (_, page) = gen.generate_from_mix(mix);
        codec.compress(&page, &mut buf);
        if buf.len() > MAX_COMPRESSED_PAYLOAD {
            rejected += 1;
        } else {
            payload_total += buf.len() as u64;
            stored_ratios.push(permille_ratio(PAGE_SIZE as u64, buf.len().max(1) as u64) as u32);
        }
    }
    stored_ratios.sort_unstable();
    let stored = stored_ratios.len() as u64;
    let median = if stored == 0 {
        1000
    } else {
        stored_ratios[stored_ratios.len() / 2]
    };
    // An all-rejected sample has no stored payload: 1× sentinel.
    let aggregate = (stored * PAGE_SIZE as u64 * 1000)
        .checked_div(payload_total)
        .map_or(1000, |r| r as u32);
    // 500‰-wide buckets 1×..8×, then open-ended.
    let mut histogram: Vec<RatioBucket> = (0..14)
        .map(|i| RatioBucket {
            lo_permille: 1000 + i * 500,
            hi_permille: 1500 + i * 500,
            pages: 0,
        })
        .collect();
    histogram.push(RatioBucket {
        lo_permille: 8000,
        hi_permille: u32::MAX,
        pages: 0,
    });
    for &r in &stored_ratios {
        let idx = if r >= 8000 {
            14
        } else {
            ((r.saturating_sub(1000)) / 500) as usize
        };
        histogram[idx].pages += 1;
    }
    MeasuredRatios {
        codec: kind,
        pages: n as u64,
        stored,
        rejected,
        median_ratio_permille: median,
        aggregate_ratio_permille: aggregate,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_deterministic() {
        let a = ClassPayloadTable::measure(CodecKind::Lzo, 16, 7);
        let b = ClassPayloadTable::measure(CodecKind::Lzo, 16, 7);
        assert_eq!(a, b);
        let ra = measure_fleet_ratios(CodecKind::Lzo, &CompressibilityMix::fleet_default(), 64, 3);
        let rb = measure_fleet_ratios(CodecKind::Lzo, &CompressibilityMix::fleet_default(), 64, 3);
        assert_eq!(ra, rb);
        // The cached default is the same value every call.
        assert_eq!(
            ClassPayloadTable::measured_default(CodecKind::Lzo),
            ClassPayloadTable::measured_default(CodecKind::Lzo)
        );
    }

    #[test]
    fn class_acceptance_tracks_compressibility() {
        let t = ClassPayloadTable::measured_default(CodecKind::Lzo);
        for class in PageClass::ALL {
            let s = t.stats(class);
            if class.is_typically_incompressible() {
                assert!(
                    s.stored_permille <= 200,
                    "{class}: stored {}‰ despite incompressible class",
                    s.stored_permille
                );
            } else {
                assert!(
                    s.stored_permille >= 900,
                    "{class}: stored only {}‰",
                    s.stored_permille
                );
                assert!(
                    s.mean_payload_bytes as usize <= MAX_COMPRESSED_PAYLOAD,
                    "{class}: stored mean {} over the cutoff",
                    s.mean_payload_bytes
                );
            }
        }
    }

    /// The headline acceptance: over the fleet mix, the *measured* ratio
    /// and rejection fraction land in the paper's regime (~3× median,
    /// ~31% incompressible) — emerging from the codec, not configured.
    #[test]
    fn fleet_mix_measurement_lands_in_paper_regime() {
        let mix = CompressibilityMix::fleet_default();
        let t = ClassPayloadTable::measured_default(CodecKind::Lzo);
        let ratio = t.ratio_permille(&mix);
        assert!(
            (2200..=4600).contains(&ratio),
            "fleet-mix realized ratio {ratio}‰ outside the ~3× regime"
        );
        let rejected = t.rejected_permille(&mix);
        assert!(
            (200..=450).contains(&rejected),
            "fleet-mix rejection {rejected}‰ outside the ~31% regime"
        );
        let m = measure_fleet_ratios(CodecKind::Lzo, &mix, 400, 11);
        assert!(
            (2000..=6000).contains(&m.median_ratio_permille),
            "median per-page ratio {}‰ outside 2–6×",
            m.median_ratio_permille
        );
        assert!(
            (2200..=4600).contains(&m.aggregate_ratio_permille),
            "aggregate ratio {}‰ outside the ~3× regime",
            m.aggregate_ratio_permille
        );
        assert_eq!(m.pages, m.stored + m.rejected);
        assert_eq!(
            m.histogram.iter().map(|b| b.pages).sum::<u64>(),
            m.stored,
            "histogram loses pages"
        );
    }

    #[test]
    fn single_class_mixes_hit_the_extremes() {
        let t = ClassPayloadTable::measured_default(CodecKind::Lzo);
        let zeros = CompressibilityMix::single(PageClass::ZeroDominated);
        assert!(t.ratio_permille(&zeros) > 8000, "zero pages compress hard");
        assert_eq!(t.rejected_permille(&zeros), 0);
        let enc = CompressibilityMix::single(PageClass::Encrypted);
        assert_eq!(
            t.ratio_permille(&enc),
            1000,
            "nothing stored -> unit ratio sentinel"
        );
        assert!(t.rejected_permille(&enc) >= 950);
    }

    #[test]
    fn all_codecs_measure_sanely() {
        let mix = CompressibilityMix::fleet_default();
        for kind in CodecKind::ALL {
            let t = ClassPayloadTable::measure(kind, 16, 5);
            let ratio = t.ratio_permille(&mix);
            assert!(
                (1500..=7000).contains(&ratio),
                "{kind}: fleet ratio {ratio}‰ implausible"
            );
        }
    }
}
