//! Synthetic page content with controlled compressibility.
//!
//! Figure 9a reports the fleet distribution of per-job compression ratios:
//! 2–6× with a 3× median, with 31% of cold memory incompressible (multimedia
//! and encrypted end-user data stay incompressible even when cold). We have
//! no access to production page contents, so this module generates 4 KiB
//! pages from six content classes whose LZ-compressibility spans the same
//! range, plus a [`CompressibilityMix`] describing a job's page population.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

use sdfm_types::error::SdfmError;
use sdfm_types::size::PAGE_SIZE;

/// A class of page content, ordered roughly from most to least compressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageClass {
    /// Mostly-zero pages (freshly faulted heap, sparse arrays).
    ZeroDominated,
    /// Serialized records with shared prefixes and small-domain fields.
    StructuredRecords,
    /// Natural-language text from a skewed word distribution.
    Text,
    /// Pointer-rich heap data: shared high bits, noisy low bits.
    HeapPointers,
    /// Media-like smooth noise (audio/video samples) — effectively
    /// incompressible for byte-oriented LZ.
    Multimedia,
    /// Uniform random bytes (encrypted end-user content).
    Encrypted,
}

impl PageClass {
    /// All classes, most compressible first.
    pub const ALL: [PageClass; 6] = [
        PageClass::ZeroDominated,
        PageClass::StructuredRecords,
        PageClass::Text,
        PageClass::HeapPointers,
        PageClass::Multimedia,
        PageClass::Encrypted,
    ];

    /// Whether pages of this class typically exceed the incompressible
    /// cutoff (§5.1) under the production codecs.
    pub fn is_typically_incompressible(self) -> bool {
        matches!(self, PageClass::Multimedia | PageClass::Encrypted)
    }
}

impl fmt::Display for PageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PageClass::ZeroDominated => "zero-dominated",
            PageClass::StructuredRecords => "structured-records",
            PageClass::Text => "text",
            PageClass::HeapPointers => "heap-pointers",
            PageClass::Multimedia => "multimedia",
            PageClass::Encrypted => "encrypted",
        };
        write!(f, "{name}")
    }
}

/// A weighted mixture of page classes describing one job's memory contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressibilityMix {
    weights: Vec<(PageClass, f64)>,
}

impl CompressibilityMix {
    /// Creates a mix from `(class, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`SdfmError::InvalidParameter`] if any weight is negative or
    /// non-finite, and [`SdfmError::EmptyInput`] if no weight is positive.
    pub fn new(weights: Vec<(PageClass, f64)>) -> Result<Self, SdfmError> {
        if weights.iter().any(|(_, w)| !w.is_finite() || *w < 0.0) {
            return Err(SdfmError::invalid_parameter(
                "mix weights must be finite and non-negative",
            ));
        }
        if !weights.iter().any(|(_, w)| *w > 0.0) {
            return Err(SdfmError::empty_input(
                "mix needs at least one positive weight",
            ));
        }
        Ok(CompressibilityMix { weights })
    }

    /// The fleet-average mix: calibrated so that roughly 31% of pages are
    /// incompressible (Figure 9a) and compressible pages achieve a ~3×
    /// median ratio spanning 2–6×.
    pub fn fleet_default() -> Self {
        CompressibilityMix {
            weights: vec![
                (PageClass::ZeroDominated, 0.05),
                (PageClass::StructuredRecords, 0.14),
                (PageClass::Text, 0.20),
                (PageClass::HeapPointers, 0.30),
                (PageClass::Multimedia, 0.13),
                (PageClass::Encrypted, 0.18),
            ],
        }
    }

    /// All six classes, equally likely.
    pub fn uniform() -> Self {
        CompressibilityMix {
            weights: PageClass::ALL.iter().map(|&c| (c, 1.0)).collect(),
        }
    }

    /// A mix of a single class.
    pub fn single(class: PageClass) -> Self {
        CompressibilityMix {
            weights: vec![(class, 1.0)],
        }
    }

    /// The normalized weight of `class` in this mix.
    pub fn weight(&self, class: PageClass) -> f64 {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        self.weights
            .iter()
            .filter(|(c, _)| *c == class)
            .map(|(_, w)| w)
            .sum::<f64>()
            / total
    }

    /// The expected fraction of typically-incompressible pages.
    pub fn incompressible_fraction(&self) -> f64 {
        PageClass::ALL
            .iter()
            .filter(|c| c.is_typically_incompressible())
            .map(|&c| self.weight(c))
            .sum()
    }

    /// Samples a class according to the weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PageClass {
        let dist = WeightedIndex::new(self.weights.iter().map(|(_, w)| *w))
            // sdfm-lint: allow(P1) reason="weights are validated non-negative and non-empty at construction"
            .expect("weights validated at construction");
        self.weights[dist.sample(rng)].0
    }

    /// The `(class, weight)` pairs.
    pub fn entries(&self) -> &[(PageClass, f64)] {
        &self.weights
    }
}

impl Default for CompressibilityMix {
    fn default() -> Self {
        Self::fleet_default()
    }
}

/// A deterministic generator of 4 KiB page contents.
///
/// # Examples
///
/// ```
/// use sdfm_compress::gen::{PageGenerator, PageClass};
///
/// let mut g = PageGenerator::new(42);
/// let page = g.generate(PageClass::Text);
/// assert_eq!(page.len(), 4096);
/// ```
#[derive(Debug)]
pub struct PageGenerator {
    rng: StdRng,
}

const WORDS: [&str; 48] = [
    "the", "of", "and", "to", "in", "that", "was", "his", "with", "for", "request", "server",
    "memory", "page", "cache", "table", "value", "index", "shard", "query", "latency", "error",
    "warning", "status", "user", "session", "token", "bucket", "record", "field", "string",
    "number", "result", "batch", "stream", "worker", "thread", "queue", "event", "trace", "span",
    "metric", "count", "total", "bytes", "time", "rate", "limit",
];

impl PageGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        PageGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one page of the given class. Always exactly
    /// [`PAGE_SIZE`] bytes.
    pub fn generate(&mut self, class: PageClass) -> Vec<u8> {
        let mut page = Vec::with_capacity(PAGE_SIZE);
        match class {
            PageClass::ZeroDominated => self.fill_zero_dominated(&mut page),
            PageClass::StructuredRecords => self.fill_records(&mut page),
            PageClass::Text => self.fill_text(&mut page),
            PageClass::HeapPointers => self.fill_heap(&mut page),
            PageClass::Multimedia => self.fill_multimedia(&mut page),
            PageClass::Encrypted => self.fill_encrypted(&mut page),
        }
        page.truncate(PAGE_SIZE);
        debug_assert_eq!(page.len(), PAGE_SIZE);
        page
    }

    /// Samples a class from `mix` and generates a page of it.
    pub fn generate_from_mix(&mut self, mix: &CompressibilityMix) -> (PageClass, Vec<u8>) {
        let class = mix.sample(&mut self.rng);
        (class, self.generate(class))
    }

    fn fill_zero_dominated(&mut self, page: &mut Vec<u8>) {
        page.resize(PAGE_SIZE, 0);
        // Sprinkle 2–6% non-zero bytes in small clusters.
        let clusters = self.rng.gen_range(8..32);
        for _ in 0..clusters {
            let start = self.rng.gen_range(0..PAGE_SIZE - 8);
            let len = self.rng.gen_range(1..8);
            for b in &mut page[start..start + len] {
                *b = self.rng.gen();
            }
        }
    }

    fn fill_records(&mut self, page: &mut Vec<u8>) {
        // 64-byte records: shared 20-byte prefix, LE counter, enum-ish
        // fields, and a payload drawn from a small per-page value pool —
        // serialized caches repeat a handful of distinct values many times.
        let mut prefix = [0u8; 20];
        self.rng.fill(&mut prefix[..]);
        let mut pool = [[0u8; 32]; 6];
        for v in &mut pool {
            for b in v.iter_mut() {
                *b = b"abcdefgh01234567"[self.rng.gen_range(0..16)];
            }
        }
        let mut counter: u64 = self.rng.gen_range(0..1_000_000);
        while page.len() < PAGE_SIZE {
            page.extend_from_slice(&prefix);
            page.extend_from_slice(&counter.to_le_bytes());
            counter += 1;
            let status: u8 = self.rng.gen_range(0..4);
            page.extend_from_slice(&[status, 0, 0, 0]);
            page.extend_from_slice(&pool[self.rng.gen_range(0..pool.len())]);
        }
    }

    fn fill_text(&mut self, page: &mut Vec<u8>) {
        // Logs and serialized text repeat multi-word phrases, not just
        // words: occasionally re-emit a recent span of the page.
        while page.len() < PAGE_SIZE {
            if page.len() > 200 && self.rng.gen_ratio(1, 10) {
                let span = self.rng.gen_range(30..110usize).min(page.len());
                let start = page.len() - span;
                page.extend_from_within(start..start + span);
                continue;
            }
            // Zipf-ish: cube a uniform to skew toward low indices.
            let u: f64 = self.rng.gen();
            let idx = ((u * u * u) * WORDS.len() as f64) as usize;
            page.extend_from_slice(WORDS[idx.min(WORDS.len() - 1)].as_bytes());
            match self.rng.gen_range(0..16) {
                0 => page.extend_from_slice(b".\n"),
                1 => page.extend_from_slice(b", "),
                _ => page.push(b' '),
            }
        }
    }

    fn fill_heap(&mut self, page: &mut Vec<u8>) {
        // 8-byte words: a page references a bounded set of live objects, so
        // draw pointers from a small per-page pool plus small integers and
        // one-hot flag words.
        let base: u64 = 0x7F00_0000_0000 | (self.rng.gen::<u64>() & 0xFFFF_0000);
        let pool: Vec<u64> = (0..24)
            .map(|_| base + self.rng.gen_range(0..4096u64) * 64)
            .collect();
        while page.len() < PAGE_SIZE {
            match self.rng.gen_range(0..8) {
                0..=3 => {
                    let ptr = pool[self.rng.gen_range(0..pool.len())];
                    page.extend_from_slice(&ptr.to_le_bytes());
                }
                4 | 5 => {
                    let small: u64 = self.rng.gen_range(0..256);
                    page.extend_from_slice(&small.to_le_bytes());
                }
                6 => {
                    let flags: u64 = 1 << self.rng.gen_range(0..16);
                    page.extend_from_slice(&flags.to_le_bytes());
                }
                _ => page.extend_from_slice(&[0u8; 8]),
            }
        }
    }

    fn fill_multimedia(&mut self, page: &mut Vec<u8>) {
        // A bounded random walk: locally smooth but globally aperiodic, so
        // 4-byte LZ matches are rare — like quantized media samples.
        let mut v: i16 = self.rng.gen_range(-128..128);
        for _ in 0..PAGE_SIZE {
            v = (v + self.rng.gen_range(-24i16..=24)).clamp(-127, 127);
            page.push((v as i8) as u8);
        }
    }

    fn fill_encrypted(&mut self, page: &mut Vec<u8>) {
        page.resize(PAGE_SIZE, 0);
        self.rng.fill(&mut page[..]);
    }

    /// Samples a plausible compressed-payload size for a page of `class`
    /// *without* generating and compressing content.
    ///
    /// Large-scale simulations track payload sizes statistically instead of
    /// compressing billions of synthetic pages; these ranges are calibrated
    /// against [`LzoCodec`](crate::codec::LzoCodec) on this module's
    /// generators (see the `synthetic_sizes_match_real_compression` test).
    /// Sizes above the incompressible cutoff model pages zswap rejects.
    pub fn sample_payload_len(&mut self, class: PageClass) -> usize {
        let (lo, hi) = match class {
            PageClass::ZeroDominated => (120, 420),
            PageClass::StructuredRecords => (600, 1000),
            PageClass::Text => (520, 1150),
            PageClass::HeapPointers => (1250, 1950),
            PageClass::Multimedia => (3900, 4300),
            PageClass::Encrypted => (4150, 4300),
        };
        self.rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{LzoCodec, PageCodec};
    use crate::page::{compress_page, CompressedPage};

    #[test]
    fn pages_are_page_sized() {
        let mut g = PageGenerator::new(1);
        for class in PageClass::ALL {
            assert_eq!(g.generate(class).len(), PAGE_SIZE, "{class}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = PageGenerator::new(7);
        let mut b = PageGenerator::new(7);
        for class in PageClass::ALL {
            assert_eq!(a.generate(class), b.generate(class));
        }
        let mut c = PageGenerator::new(8);
        assert_ne!(
            PageGenerator::new(7).generate(PageClass::Encrypted),
            c.generate(PageClass::Encrypted)
        );
    }

    #[test]
    fn class_compressibility_ordering_holds() {
        let codec = LzoCodec::new();
        let mut g = PageGenerator::new(11);
        let avg_len = |g: &mut PageGenerator, class: PageClass| -> f64 {
            let mut total = 0usize;
            for _ in 0..20 {
                let page = g.generate(class);
                let mut buf = Vec::new();
                codec.compress(&page, &mut buf);
                total += buf.len();
            }
            total as f64 / 20.0
        };
        let zero = avg_len(&mut g, PageClass::ZeroDominated);
        let text = avg_len(&mut g, PageClass::Text);
        let enc = avg_len(&mut g, PageClass::Encrypted);
        assert!(zero < text, "zero ({zero}) must beat text ({text})");
        assert!(text < enc, "text ({text}) must beat encrypted ({enc})");
    }

    #[test]
    fn incompressible_classes_exceed_cutoff() {
        let codec = LzoCodec::new();
        let mut g = PageGenerator::new(13);
        for class in [PageClass::Multimedia, PageClass::Encrypted] {
            let mut incompressible = 0;
            for _ in 0..20 {
                let page = g.generate(class);
                if matches!(
                    compress_page(&codec, &page),
                    CompressedPage::Incompressible { .. }
                ) {
                    incompressible += 1;
                }
            }
            assert!(
                incompressible >= 18,
                "{class}: only {incompressible}/20 incompressible"
            );
        }
    }

    #[test]
    fn compressible_classes_stay_under_cutoff() {
        let codec = LzoCodec::new();
        let mut g = PageGenerator::new(17);
        for class in [
            PageClass::ZeroDominated,
            PageClass::StructuredRecords,
            PageClass::Text,
        ] {
            for _ in 0..20 {
                let page = g.generate(class);
                assert!(
                    matches!(compress_page(&codec, &page), CompressedPage::Stored { .. }),
                    "{class}: page failed to store"
                );
            }
        }
    }

    #[test]
    fn fleet_mix_incompressible_fraction_matches_paper() {
        let mix = CompressibilityMix::fleet_default();
        let f = mix.incompressible_fraction();
        assert!(
            (0.25..=0.37).contains(&f),
            "fleet mix incompressible fraction {f} outside paper's ~31%"
        );
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix =
            CompressibilityMix::new(vec![(PageClass::Text, 3.0), (PageClass::Encrypted, 1.0)])
                .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let text = (0..n)
            .filter(|_| mix.sample(&mut rng) == PageClass::Text)
            .count();
        let frac = text as f64 / n as f64;
        assert!((0.70..0.80).contains(&frac), "text fraction {frac}");
        assert_eq!(mix.weight(PageClass::Text), 0.75);
    }

    #[test]
    fn mix_validation() {
        assert!(CompressibilityMix::new(vec![]).is_err());
        assert!(CompressibilityMix::new(vec![(PageClass::Text, -1.0)]).is_err());
        assert!(CompressibilityMix::new(vec![(PageClass::Text, f64::NAN)]).is_err());
        assert!(CompressibilityMix::new(vec![(PageClass::Text, 0.0)]).is_err());
        assert!(CompressibilityMix::new(vec![(PageClass::Text, 1.0)]).is_ok());
    }

    #[test]
    fn single_mix_always_samples_that_class() {
        let mix = CompressibilityMix::single(PageClass::HeapPointers);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            assert_eq!(mix.sample(&mut rng), PageClass::HeapPointers);
        }
        assert_eq!(mix.incompressible_fraction(), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(PageClass::Text.to_string(), "text");
        assert_eq!(PageClass::Encrypted.to_string(), "encrypted");
    }

    #[test]
    fn synthetic_sizes_match_real_compression() {
        // The statistical payload-size model must track what the real codec
        // does on real generated content, class by class.
        let codec = LzoCodec::new();
        for class in PageClass::ALL {
            let mut g = PageGenerator::new(23);
            let mut real = 0usize;
            let n = 30;
            for _ in 0..n {
                let page = g.generate(class);
                let mut buf = Vec::new();
                codec.compress(&page, &mut buf);
                real += buf.len();
            }
            let real_mean = real as f64 / n as f64;
            let mut synth = 0usize;
            for _ in 0..200 {
                synth += g.sample_payload_len(class);
            }
            let synth_mean = synth as f64 / 200.0;
            let rel = (synth_mean - real_mean).abs() / real_mean;
            assert!(
                rel < 0.35,
                "{class}: synthetic mean {synth_mean:.0} vs real {real_mean:.0} ({rel:.2} rel err)"
            );
        }
    }

    #[test]
    fn synthetic_incompressibility_matches_cutoff() {
        use crate::page::MAX_COMPRESSED_PAYLOAD;
        let mut g = PageGenerator::new(29);
        for class in PageClass::ALL {
            for _ in 0..50 {
                let len = g.sample_payload_len(class);
                assert_eq!(
                    len > MAX_COMPRESSED_PAYLOAD,
                    class.is_typically_incompressible(),
                    "{class}: sampled {len}"
                );
            }
        }
    }
}
