//! Shared LZ77 match-finding machinery used by all three codecs.
//!
//! The codecs differ only in their token encodings; they share the same
//! greedy match finder: a hash table over 4-byte sequences, sized for
//! page-scale inputs (4 KiB). By default one probe per position — the
//! "spend as few cycles as possible" regime the paper's production
//! deployment chose (lzo over stronger codecs, §5.1 footnote). A bounded
//! hash *chain* ([`MatchFinder::with_chain`]) trades more probes for a
//! better ratio; the `codecs` bench profiles that trade-off on 4 KiB
//! fleet-mix pages so the depth choice is measured, not asserted.

/// A back-reference found by the match finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Distance back from the current position (1-based).
    pub offset: usize,
    /// Length of the match in bytes.
    pub len: usize,
}

/// Multiplicative hash over the 4 bytes at `src[pos..pos+4]`.
#[inline]
pub fn hash4(src: &[u8], pos: usize, bits: u32) -> usize {
    let v = u32::from_le_bytes([src[pos], src[pos + 1], src[pos + 2], src[pos + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - bits)) as usize
}

/// Length of the common prefix of `src[a..]` and `src[b..]`, scanning at
/// most up to `limit` (exclusive end index for the `b` cursor).
#[inline]
pub fn match_length(src: &[u8], mut a: usize, mut b: usize, limit: usize) -> usize {
    let start = b;
    while b < limit && src[a] == src[b] {
        a += 1;
        b += 1;
    }
    b - start
}

/// A hash-table match finder for one input block, with an optional
/// bounded hash chain.
///
/// Positions are stored +1 so that 0 means "empty slot"; the table is
/// reset per block. At `depth == 1` (the [`MatchFinder::new`] default)
/// the finder probes only the most recent occupant of the hash slot —
/// exactly the single-probe behavior the production codecs ship. At
/// `depth > 1` each position is also linked into a per-position `prev`
/// chain, and the finder walks up to `depth` prior occurrences of the
/// hash, keeping the longest match (ties go to the most recent, i.e.
/// smallest, offset — deterministic for a given input).
#[derive(Debug)]
pub struct MatchFinder {
    /// `hash -> pos + 1` of the most recent occurrence.
    head: Vec<u32>,
    /// `pos -> pos + 1` of the previous occurrence with the same hash.
    /// Empty (never allocated) at depth 1; grown on demand otherwise.
    prev: Vec<u32>,
    depth: usize,
    bits: u32,
}

impl MatchFinder {
    /// Creates a single-probe finder with a `2^bits`-entry table. 12 bits
    /// (4096 slots) is a good fit for 4 KiB pages.
    pub fn new(bits: u32) -> Self {
        Self::with_chain(bits, 1)
    }

    /// Creates a finder probing up to `depth` chained candidates per
    /// position. `depth == 1` is identical to [`MatchFinder::new`].
    pub fn with_chain(bits: u32, depth: usize) -> Self {
        assert!((8..=16).contains(&bits), "hash bits must be in [8, 16]");
        assert!((1..=64).contains(&depth), "chain depth must be in [1, 64]");
        MatchFinder {
            head: vec![0; 1 << bits],
            prev: Vec::new(),
            depth,
            bits,
        }
    }

    /// Clears the table for a new block (codecs that reuse one finder
    /// across blocks call this between inputs).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn reset(&mut self) {
        self.head.fill(0);
        self.prev.fill(0);
    }

    /// Links `pos` into the table (and, at depth > 1, the chain),
    /// returning the previous head of its hash slot.
    #[inline]
    fn link(&mut self, src: &[u8], pos: usize) -> u32 {
        let h = hash4(src, pos, self.bits);
        let head = self.head[h];
        self.head[h] = (pos + 1) as u32;
        if self.depth > 1 {
            if self.prev.len() <= pos {
                // Grow in block-sized steps so page inputs allocate once.
                self.prev.resize((pos + 1).next_power_of_two().max(4096), 0);
            }
            self.prev[pos] = head;
        }
        head
    }

    /// Inserts `pos` into the table and returns the best match at `pos`
    /// among up to `depth` chained previous occurrences, if it is at
    /// least `min_match` long and within `max_offset`.
    ///
    /// `match_limit` is the exclusive end index matches may extend to
    /// (callers use it to reserve end-of-block literals).
    #[inline]
    pub fn find_and_insert(
        &mut self,
        src: &[u8],
        pos: usize,
        min_match: usize,
        max_offset: usize,
        match_limit: usize,
    ) -> Option<Match> {
        if pos + 4 > src.len() {
            return None;
        }
        let mut candidate = self.link(src, pos);
        let limit = match_limit.min(src.len());
        let mut best: Option<Match> = None;
        for _ in 0..self.depth {
            if candidate == 0 {
                break;
            }
            let cand = (candidate - 1) as usize;
            let offset = pos - cand;
            if offset == 0 || offset > max_offset {
                // Chain entries only get older (farther); stop.
                break;
            }
            let len = match_length(src, cand, pos, limit);
            if len >= min_match && best.is_none_or(|b| len > b.len) {
                best = Some(Match { offset, len });
            }
            candidate = if self.depth > 1 && cand < self.prev.len() {
                self.prev[cand]
            } else {
                0
            };
        }
        best
    }

    /// Inserts a position without searching (used to keep the table warm
    /// while skipping over an emitted match).
    #[inline]
    pub fn insert(&mut self, src: &[u8], pos: usize) {
        if pos + 4 <= src.len() {
            self.link(src, pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_length_counts_common_prefix() {
        let src = b"abcabcabx";
        assert_eq!(match_length(src, 0, 3, src.len()), 5); // "abcab"
        assert_eq!(match_length(src, 0, 6, src.len()), 2); // "ab"
    }

    #[test]
    fn match_length_respects_limit() {
        let src = b"aaaaaaaa";
        assert_eq!(match_length(src, 0, 1, 4), 3);
    }

    #[test]
    fn finder_detects_repeat() {
        let src = b"0123456789_0123456789";
        let mut f = MatchFinder::new(12);
        let mut found = None;
        for pos in 0..src.len().saturating_sub(4) {
            if let Some(m) = f.find_and_insert(src, pos, 4, 65535, src.len()) {
                found = Some((pos, m));
                break;
            }
        }
        let (pos, m) = found.expect("repeat must be found");
        assert_eq!(pos, 11);
        assert_eq!(m.offset, 11);
        assert_eq!(m.len, 10);
    }

    #[test]
    fn finder_ignores_too_distant_matches() {
        let mut src = vec![0u8; 1000];
        src[0..8].copy_from_slice(b"ABCDEFGH");
        // unique filler so no accidental matches
        for (i, b) in src[8..992].iter_mut().enumerate() {
            *b = (i % 251) as u8 ^ ((i / 251) as u8).wrapping_mul(31) | 0x80;
        }
        src[992..1000].copy_from_slice(b"ABCDEFGH");
        let mut f = MatchFinder::new(12);
        for pos in 0..src.len() - 4 {
            if let Some(m) = f.find_and_insert(&src, pos, 4, 100, src.len()) {
                assert!(m.offset <= 100, "offset {} exceeds cap", m.offset);
            }
        }
    }

    #[test]
    fn finder_resets_cleanly() {
        let src = b"xyzwxyzw";
        let mut f = MatchFinder::new(12);
        for pos in 0..src.len() - 4 {
            f.find_and_insert(src, pos, 4, 64, src.len());
        }
        f.reset();
        // After reset, the first probe finds nothing again.
        assert_eq!(f.find_and_insert(src, 0, 4, 64, src.len()), None);
    }

    #[test]
    #[should_panic(expected = "hash bits")]
    fn finder_rejects_tiny_tables() {
        let _ = MatchFinder::new(4);
    }

    #[test]
    #[should_panic(expected = "chain depth")]
    fn finder_rejects_zero_depth() {
        let _ = MatchFinder::with_chain(12, 0);
    }

    /// Force a hash collision chain: the same 4-byte prefix occurs three
    /// times, with the best (longest) match *not* the most recent one. A
    /// single probe only sees the most recent; the chain must find the
    /// older, longer candidate.
    #[test]
    fn chain_finds_longer_older_match() {
        let mut src = Vec::new();
        src.extend_from_slice(b"ABCDEFGH"); // pos 0: full 8-byte run
        src.extend_from_slice(b"....");
        src.extend_from_slice(b"ABCDxxxx"); // pos 12: only 4 bytes match
        src.extend_from_slice(b"....");
        src.extend_from_slice(b"ABCDEFGH"); // pos 24: query
        let probe = |depth: usize| -> Option<Match> {
            let mut f = MatchFinder::with_chain(12, depth);
            for pos in [0usize, 12] {
                f.insert(&src, pos);
            }
            f.find_and_insert(&src, 24, 4, 65535, src.len())
        };
        let single = probe(1).expect("single probe still matches");
        assert_eq!((single.offset, single.len), (12, 4), "most recent only");
        let chained = probe(2).expect("chain matches");
        assert_eq!((chained.offset, chained.len), (24, 8), "older but longer");
    }

    /// Depth 1 must behave exactly like the historical single-probe
    /// finder: same matches, in the same positions, on a page-shaped
    /// input with heavy repetition.
    #[test]
    fn depth_one_equals_single_probe_semantics() {
        let src: Vec<u8> = (0..2048u32)
            .flat_map(|i| ((i % 97) as u16).to_le_bytes())
            .collect();
        let mut a = MatchFinder::new(12);
        let mut b = MatchFinder::with_chain(12, 1);
        for pos in 0..src.len().saturating_sub(4) {
            assert_eq!(
                a.find_and_insert(&src, pos, 4, 8192, src.len()),
                b.find_and_insert(&src, pos, 4, 8192, src.len()),
                "diverged at {pos}"
            );
        }
    }

    /// Deeper chains never produce a worse (shorter) match than shallower
    /// ones at the same position — the probe set only grows.
    #[test]
    fn deeper_chains_never_find_shorter_matches() {
        let src: Vec<u8> = (0..4096u32)
            .map(|i| ((i * 7) % 53) as u8 ^ ((i / 64) as u8))
            .collect();
        let run = |depth: usize| -> Vec<usize> {
            let mut f = MatchFinder::with_chain(12, depth);
            (0..src.len() - 4)
                .map(|pos| {
                    f.find_and_insert(&src, pos, 4, 8192, src.len())
                        .map_or(0, |m| m.len)
                })
                .collect()
        };
        let (d1, d4) = (run(1), run(4));
        // Greedy parses differ position-by-position once emissions shift,
        // but the raw per-position best length is monotone in depth when
        // every position is probed (as here).
        for (i, (a, b)) in d1.iter().zip(&d4).enumerate() {
            assert!(b >= a, "depth 4 found shorter match at {i}: {b} < {a}");
        }
    }
}
