//! Shared LZ77 match-finding machinery used by all three codecs.
//!
//! The codecs differ only in their token encodings; they share the same
//! greedy match finder: a single-probe hash table over 4-byte sequences,
//! sized for page-scale inputs (4 KiB). One probe per position keeps the
//! compressor in the "spend as few cycles as possible" regime the paper's
//! production deployment chose (lzo over stronger codecs, §5.1 footnote).

/// A back-reference found by the match finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Distance back from the current position (1-based).
    pub offset: usize,
    /// Length of the match in bytes.
    pub len: usize,
}

/// Multiplicative hash over the 4 bytes at `src[pos..pos+4]`.
#[inline]
pub fn hash4(src: &[u8], pos: usize, bits: u32) -> usize {
    let v = u32::from_le_bytes([src[pos], src[pos + 1], src[pos + 2], src[pos + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - bits)) as usize
}

/// Length of the common prefix of `src[a..]` and `src[b..]`, scanning at
/// most up to `limit` (exclusive end index for the `b` cursor).
#[inline]
pub fn match_length(src: &[u8], mut a: usize, mut b: usize, limit: usize) -> usize {
    let start = b;
    while b < limit && src[a] == src[b] {
        a += 1;
        b += 1;
    }
    b - start
}

/// A single-probe hash-table match finder for one input block.
///
/// Positions are stored +1 so that 0 means "empty slot"; the table is
/// reset per block.
#[derive(Debug)]
pub struct MatchFinder {
    table: Vec<u32>,
    bits: u32,
}

impl MatchFinder {
    /// Creates a finder with a `2^bits`-entry table. 12 bits (4096 slots)
    /// is a good fit for 4 KiB pages.
    pub fn new(bits: u32) -> Self {
        assert!((8..=16).contains(&bits), "hash bits must be in [8, 16]");
        MatchFinder {
            table: vec![0; 1 << bits],
            bits,
        }
    }

    /// Clears the table for a new block (codecs that reuse one finder
    /// across blocks call this between inputs).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn reset(&mut self) {
        self.table.fill(0);
    }

    /// Inserts `pos` into the table and returns the best match at `pos`
    /// against the previous occupant, if it is at least `min_match` long
    /// and within `max_offset`.
    ///
    /// `match_limit` is the exclusive end index matches may extend to
    /// (callers use it to reserve end-of-block literals).
    #[inline]
    pub fn find_and_insert(
        &mut self,
        src: &[u8],
        pos: usize,
        min_match: usize,
        max_offset: usize,
        match_limit: usize,
    ) -> Option<Match> {
        if pos + 4 > src.len() {
            return None;
        }
        let h = hash4(src, pos, self.bits);
        let candidate = self.table[h];
        self.table[h] = (pos + 1) as u32;
        if candidate == 0 {
            return None;
        }
        let cand = (candidate - 1) as usize;
        let offset = pos - cand;
        if offset == 0 || offset > max_offset {
            return None;
        }
        let len = match_length(src, cand, pos, match_limit.min(src.len()));
        if len >= min_match {
            Some(Match { offset, len })
        } else {
            None
        }
    }

    /// Inserts a position without searching (used to keep the table warm
    /// while skipping over an emitted match).
    #[inline]
    pub fn insert(&mut self, src: &[u8], pos: usize) {
        if pos + 4 <= src.len() {
            let h = hash4(src, pos, self.bits);
            self.table[h] = (pos + 1) as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_length_counts_common_prefix() {
        let src = b"abcabcabx";
        assert_eq!(match_length(src, 0, 3, src.len()), 5); // "abcab"
        assert_eq!(match_length(src, 0, 6, src.len()), 2); // "ab"
    }

    #[test]
    fn match_length_respects_limit() {
        let src = b"aaaaaaaa";
        assert_eq!(match_length(src, 0, 1, 4), 3);
    }

    #[test]
    fn finder_detects_repeat() {
        let src = b"0123456789_0123456789";
        let mut f = MatchFinder::new(12);
        let mut found = None;
        for pos in 0..src.len().saturating_sub(4) {
            if let Some(m) = f.find_and_insert(src, pos, 4, 65535, src.len()) {
                found = Some((pos, m));
                break;
            }
        }
        let (pos, m) = found.expect("repeat must be found");
        assert_eq!(pos, 11);
        assert_eq!(m.offset, 11);
        assert_eq!(m.len, 10);
    }

    #[test]
    fn finder_ignores_too_distant_matches() {
        let mut src = vec![0u8; 1000];
        src[0..8].copy_from_slice(b"ABCDEFGH");
        // unique filler so no accidental matches
        for (i, b) in src[8..992].iter_mut().enumerate() {
            *b = (i % 251) as u8 ^ ((i / 251) as u8).wrapping_mul(31) | 0x80;
        }
        src[992..1000].copy_from_slice(b"ABCDEFGH");
        let mut f = MatchFinder::new(12);
        for pos in 0..src.len() - 4 {
            if let Some(m) = f.find_and_insert(&src, pos, 4, 100, src.len()) {
                assert!(m.offset <= 100, "offset {} exceeds cap", m.offset);
            }
        }
    }

    #[test]
    fn finder_resets_cleanly() {
        let src = b"xyzwxyzw";
        let mut f = MatchFinder::new(12);
        for pos in 0..src.len() - 4 {
            f.find_and_insert(src, pos, 4, 64, src.len());
        }
        f.reset();
        // After reset, the first probe finds nothing again.
        assert_eq!(f.find_and_insert(src, 0, 4, 64, src.len()), None);
    }

    #[test]
    #[should_panic(expected = "hash bits")]
    fn finder_rejects_tiny_tables() {
        let _ = MatchFinder::new(4);
    }
}
