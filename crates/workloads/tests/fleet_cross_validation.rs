//! Fleet-scale cross-validation (ROADMAP: "page-level ↔ stat-model
//! cross-validation at fleet scale").
//!
//! `model_vs_kernel.rs` pins down mode agreement for one hand-written
//! profile. This suite samples one job per cluster from the paper-default
//! ten-cluster fleet — so every archetype tilt (serving, batch, cache,
//! video, logs) is represented — and bounds the drift between the
//! analytic [`StatJobModel`] and the page-level kernel simulation on the
//! quantities the control plane consumes. A second test covers the store
//! lifecycle: after zswap is disabled, the kernel's compressed-store
//! trajectory must follow the exact integer [`StorePressure`] recurrence
//! that the fast model mirrors, so a fleet-scale replay with a store
//! flush stays faithful to the page-level truth.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sdfm_kernel::{Kernel, KernelConfig, StorePressure};
use sdfm_types::histogram::PageAge;
use sdfm_types::ids::JobId;
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime, MINUTE};
use sdfm_workloads::fleet::FleetSpec;
use sdfm_workloads::profile::{DiurnalPattern, JobProfile};
use sdfm_workloads::{PageLevelDriver, StatJobModel};

const WARMUP_MINS: u64 = 60;
const OBSERVE_MINS: u64 = 40;
const TARGET_PAGES: u64 = 5_000;

/// Samples one job profile per cluster of the paper-default fleet and
/// rescales it to a page-level-simulable size. The diurnal pattern is
/// flattened and bursts disabled: load-phase variance is a property of
/// the *load process*, not of the mode translation under test, and both
/// modes consume the same process elsewhere.
fn sampled_cluster_profiles() -> Vec<(usize, JobProfile)> {
    let spec = FleetSpec::paper_default(1);
    spec.clusters
        .iter()
        .enumerate()
        .map(|(i, cluster)| {
            let mut rng = StdRng::seed_from_u64(1_000 + i as u64);
            let template = cluster.sample_template(&mut rng);
            let mut profile = template.sample_profile(&mut rng);
            let total: u64 = profile.rate_buckets.iter().map(|b| b.pages).sum();
            for bucket in &mut profile.rate_buckets {
                bucket.pages = (bucket.pages * TARGET_PAGES / total.max(1)).max(1);
            }
            profile.diurnal = DiurnalPattern::FLAT;
            profile.burst_interval = None;
            (i, profile)
        })
        .collect()
}

/// Drives the page-level kernel for one profile and returns
/// `(wss, cold@1scan, cold@5scans)` after warmup + observation.
fn run_kernel_sim(profile: JobProfile, seed: u64) -> (u64, u64, u64) {
    let job = JobId::new(1);
    let mut kernel = Kernel::new(KernelConfig {
        capacity: PageCount::new(50_000),
        ..KernelConfig::default()
    });
    let mut driver = PageLevelDriver::new(job, profile, seed);
    driver.populate(&mut kernel).unwrap();
    for m in 0..(WARMUP_MINS + OBSERVE_MINS) {
        let now = SimTime::ZERO + MINUTE * (m + 1);
        driver.run_window(&mut kernel, now, MINUTE).unwrap();
        if (m + 1) % 2 == 0 {
            kernel.run_scan();
        }
    }
    let cg = kernel.memcg(job).unwrap();
    (
        cg.working_set(PageAge::from_scans(1)).get(),
        cg.cold_pages(PageAge::from_scans(1)).get(),
        cg.cold_pages(PageAge::from_scans(5)).get(),
    )
}

fn rel_err(kernel: u64, model: u64) -> f64 {
    (kernel as f64 - model as f64).abs() / (kernel as f64).max(1.0)
}

/// One sampled job per cluster: per-job drift between the two modes stays
/// inside loose bounds, and the fleet-level mean drift is much tighter —
/// per-job sampling error averages out, which is exactly why the paper's
/// pipeline can run the fast model at fleet scale.
#[test]
fn stat_model_tracks_the_kernel_across_all_clusters() {
    let mut drifts: Vec<f64> = Vec::new();
    for (i, profile) in sampled_cluster_profiles() {
        let (k_wss, k_cold1, k_cold5) = run_kernel_sim(profile.clone(), 7_700 + i as u64);

        let mut model = StatJobModel::with_noise(profile, 5, 0.0);
        let at = SimTime::from_secs((WARMUP_MINS + OBSERVE_MINS) * 60);
        let obs = model.observe(at, SimDuration::from_mins(OBSERVE_MINS));
        let s_wss = obs.working_set.get();
        let s_cold1 = obs.cold_hist.pages_colder_than(PageAge::from_scans(1));
        let s_cold5 = obs.cold_hist.pages_colder_than(PageAge::from_scans(5));

        for (name, k, s, tol) in [
            ("working set", k_wss, s_wss, 0.35),
            ("cold@120s", k_cold1, s_cold1, 0.30),
            ("cold@600s", k_cold5, s_cold5, 0.35),
        ] {
            let rel = rel_err(k, s);
            assert!(
                rel < tol,
                "cluster {i} {name}: kernel {k} vs model {s} ({rel:.2} rel err)"
            );
            drifts.push(rel);
        }
    }
    let mean = drifts.iter().sum::<f64>() / drifts.len() as f64;
    assert!(
        mean < 0.15,
        "fleet-level mean drift {mean:.3} exceeds 15% across {} comparisons",
        drifts.len()
    );
}

/// The store-flush window: once zswap is disabled, the page-level store
/// must drain along the exact integer sequence
/// `z → store_after_window(z) → … → 0` — the same recurrence
/// `sdfm_model::replay_job_with_pressure` applies — with every written-back
/// page charged as a decompression. This is the contract that lets the
/// fast model claim its store trajectory cross-validates against the
/// kernel during a flush.
#[test]
fn store_flush_follows_the_policy_recurrence_the_fast_model_mirrors() {
    let (_, profile) = sampled_cluster_profiles().remove(0);
    let job = JobId::new(1);
    let mut kernel = Kernel::new(KernelConfig {
        capacity: PageCount::new(50_000),
        ..KernelConfig::default()
    });
    let mut driver = PageLevelDriver::new(job, profile, 42);
    driver.populate(&mut kernel).unwrap();
    kernel.set_zswap_enabled(job, true).unwrap();
    // Age the pages, then compress everything idle for ≥ 2 scans.
    for m in 0..30u64 {
        let now = SimTime::ZERO + MINUTE * (m + 1);
        driver.run_window(&mut kernel, now, MINUTE).unwrap();
        if (m + 1) % 2 == 0 {
            kernel.run_scan();
        }
    }
    kernel.reclaim_job(job, PageAge::from_scans(2)).unwrap();
    let mut expected = kernel.memcg(job).unwrap().stats().zswapped_pages;
    assert!(expected > 500, "store never built up: {expected}");

    kernel.set_zswap_enabled(job, false).unwrap();
    let policy = StorePressure::PAPER_DEFAULT;
    let budget = policy.windows_to_drain(expected);
    let mut decompressions = kernel.cpu_accounting().decompress_events;
    for window in 0..budget {
        let step = policy.decay_step(expected);
        let outcome = kernel.store_lifecycle_tick(job, &policy).unwrap();
        assert_eq!(
            outcome.writeback.written_back, step,
            "window {window}: wrote back {} pages, policy says {step}",
            outcome.writeback.written_back
        );
        expected = policy.store_after_window(expected);
        let stats = kernel.memcg(job).unwrap().stats();
        assert_eq!(
            stats.zswapped_pages, expected,
            "window {window}: store diverged from the policy recurrence"
        );
        let charged = kernel.cpu_accounting().decompress_events;
        assert_eq!(
            charged - decompressions,
            step,
            "window {window}: writebacks not charged as decompressions"
        );
        decompressions = charged;
    }
    assert_eq!(kernel.memcg(job).unwrap().stats().zswapped_pages, 0);
    // Drained means drained: the next tick is a no-op.
    let idle = kernel.store_lifecycle_tick(job, &policy).unwrap();
    assert_eq!(idle.writeback.written_back, 0);
}
