//! Cross-validation: the analytic statistical model must agree with the
//! page-level kernel simulation on the quantities the control plane
//! consumes — working set size, cold memory under various thresholds, and
//! would-be promotion counts.

use sdfm_compress::gen::CompressibilityMix;
use sdfm_kernel::{Kernel, KernelConfig};
use sdfm_types::histogram::PageAge;
use sdfm_types::ids::JobId;
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime, MINUTE};
use sdfm_workloads::profile::{DiurnalPattern, JobPriority, JobProfile, RateBucket};
use sdfm_workloads::{PageLevelDriver, StatJobModel};

fn test_profile() -> JobProfile {
    JobProfile {
        template: "validation".into(),
        rate_buckets: vec![
            RateBucket {
                pages: 3_000,
                rate_per_sec: 0.1, // hot
            },
            RateBucket {
                pages: 2_000,
                rate_per_sec: 1.0 / 300.0, // warm: idle ~5 min
            },
            RateBucket {
                pages: 2_000,
                rate_per_sec: 1.0 / 1800.0, // warm: idle ~30 min
            },
            RateBucket {
                pages: 3_000,
                rate_per_sec: 1e-8, // frozen
            },
        ],
        diurnal: DiurnalPattern::FLAT,
        mix: CompressibilityMix::fleet_default(),
        cpu_cores: 1.0,
        write_fraction: 0.2,
        burst_interval: None,
        priority: JobPriority::Batch,
        lifetime: SimDuration::from_hours(100),
    }
}

/// Runs the page-level simulation for `warmup + observe` minutes and
/// returns (wss, cold@1scan, cold@5scans, promotions during observation).
fn run_kernel_sim(minutes_warmup: u64, minutes_observe: u64) -> (u64, u64, u64, u64) {
    let job = JobId::new(1);
    let mut kernel = Kernel::new(KernelConfig {
        capacity: PageCount::new(50_000),
        ..KernelConfig::default()
    });
    let mut driver = PageLevelDriver::new(job, test_profile(), 77);
    driver.populate(&mut kernel).unwrap();

    let mut promo_before = 0u64;
    for m in 0..(minutes_warmup + minutes_observe) {
        let now = SimTime::ZERO + MINUTE * (m + 1);
        driver.run_window(&mut kernel, now, MINUTE).unwrap();
        if (m + 1) % 2 == 0 {
            kernel.run_scan();
        }
        if m + 1 == minutes_warmup {
            promo_before = kernel
                .memcg(job)
                .unwrap()
                .promotion_histogram()
                .promotions_colder_than(PageAge::from_scans(1));
        }
    }
    let cg = kernel.memcg(job).unwrap();
    let wss = cg.working_set(PageAge::from_scans(1)).get();
    let cold1 = cg.cold_pages(PageAge::from_scans(1)).get();
    let cold5 = cg.cold_pages(PageAge::from_scans(5)).get();
    let promos = cg
        .promotion_histogram()
        .promotions_colder_than(PageAge::from_scans(1))
        - promo_before;
    (wss, cold1, cold5, promos)
}

#[test]
fn stat_model_matches_page_level_kernel() {
    // Warm up 90 minutes (ages approach steady state), observe 60 minutes.
    let (k_wss, k_cold1, k_cold5, k_promos) = run_kernel_sim(90, 60);

    let mut model = StatJobModel::with_noise(test_profile(), 5, 0.0);
    let obs = model.observe(SimTime::from_secs(9000), SimDuration::from_mins(60));
    let s_wss = obs.working_set.get();
    let s_cold1 = obs.cold_hist.pages_colder_than(PageAge::from_scans(1));
    let s_cold5 = obs.cold_hist.pages_colder_than(PageAge::from_scans(5));
    let s_promos = obs
        .promo_delta
        .promotions_colder_than(PageAge::from_scans(1));

    let check = |name: &str, kernel: u64, model: u64, tol: f64| {
        let k = kernel as f64;
        let m = model as f64;
        let rel = (k - m).abs() / k.max(1.0);
        assert!(
            rel < tol,
            "{name}: kernel {kernel} vs model {model} ({rel:.2} rel err)"
        );
    };
    check("working set", k_wss, s_wss, 0.20);
    check("cold@120s", k_cold1, s_cold1, 0.15);
    check("cold@600s", k_cold5, s_cold5, 0.20);
    check("promotions/h", k_promos, s_promos, 0.35);
}

#[test]
fn both_modes_show_threshold_monotonicity() {
    // Higher thresholds → less cold memory, fewer would-be promotions, in
    // both the kernel view and the analytic view.
    let mut model = StatJobModel::with_noise(test_profile(), 6, 0.0);
    let obs = model.observe(SimTime::from_secs(7200), MINUTE * 10);
    let mut prev_cold = u64::MAX;
    let mut prev_promo = u64::MAX;
    for t in 1..=30u8 {
        let c = obs.cold_hist.pages_colder_than(PageAge::from_scans(t));
        let p = obs
            .promo_delta
            .promotions_colder_than(PageAge::from_scans(t));
        assert!(c <= prev_cold);
        assert!(p <= prev_promo);
        prev_cold = c;
        prev_promo = p;
    }
}
