//! Property tests for the statistical job model and templates.

use proptest::prelude::*;
use sdfm_compress::gen::CompressibilityMix;
use sdfm_types::histogram::PageAge;
use sdfm_types::time::{SimDuration, SimTime};
use sdfm_workloads::profile::{DiurnalPattern, JobPriority, JobProfile, RateBucket};
use sdfm_workloads::templates::JobTemplate;
use sdfm_workloads::StatJobModel;

fn profile_from(buckets: Vec<(u64, f64)>, burst_hours: Option<u64>) -> JobProfile {
    JobProfile {
        template: "prop".into(),
        rate_buckets: buckets
            .into_iter()
            .map(|(pages, rate)| RateBucket {
                pages,
                rate_per_sec: rate,
            })
            .collect(),
        diurnal: DiurnalPattern::FLAT,
        mix: CompressibilityMix::fleet_default(),
        cpu_cores: 1.0,
        write_fraction: 0.1,
        burst_interval: burst_hours.map(SimDuration::from_hours),
        priority: JobPriority::Batch,
        lifetime: SimDuration::from_hours(1_000),
    }
}

proptest! {
    /// The model's cold-age histogram always sums to the job's page count
    /// (within stochastic-rounding slack), regardless of rates, time, or
    /// bursts.
    #[test]
    fn histogram_mass_is_conserved(
        buckets in prop::collection::vec((1u64..20_000, 1e-9f64..1.0), 1..6),
        at_secs in 300u64..500_000,
        burst in prop::option::of(1u64..48),
    ) {
        let total: u64 = buckets.iter().map(|(p, _)| p).sum();
        let mut m = StatJobModel::with_noise(profile_from(buckets, burst), 1, 0.0);
        let obs = m.observe(SimTime::from_secs(at_secs), SimDuration::from_secs(300));
        let hist_total = obs.cold_hist.total_pages();
        let slack = 64 + total / 100;
        prop_assert!(
            hist_total.abs_diff(total) <= slack,
            "histogram {hist_total} vs {total} pages"
        );
    }

    /// Ages never exceed the time since the model's start (the truncation
    /// invariant that makes young jobs look young).
    #[test]
    fn ages_are_capped_by_job_age(
        age_secs in 0u64..50_000,
        pages in 100u64..10_000,
    ) {
        let start = SimTime::from_secs(1_000_000);
        let now = SimTime::from_secs(1_000_000 + age_secs);
        let mut m = StatJobModel::with_noise(
            profile_from(vec![(pages, 1e-9)], None),
            2,
            0.0,
        );
        m.set_start(start);
        let obs = m.observe(now, SimDuration::from_secs(300));
        let cap_scans = (age_secs / 120).min(255) as u8;
        if cap_scans < 255 {
            let beyond = obs
                .cold_hist
                .pages_colder_than(PageAge::from_scans(cap_scans.saturating_add(1)));
            prop_assert_eq!(beyond, 0, "pages older than the job itself");
        }
    }

    /// Working set plus cold pages at the minimum threshold ≈ total pages
    /// (they partition the job's memory).
    #[test]
    fn wss_and_cold_partition_memory(
        buckets in prop::collection::vec((100u64..20_000, 1e-9f64..0.5), 1..5),
    ) {
        let total: u64 = buckets.iter().map(|(p, _)| p).sum();
        let mut m = StatJobModel::with_noise(profile_from(buckets, None), 3, 0.0);
        let obs = m.observe(SimTime::from_secs(604_800), SimDuration::from_secs(300));
        let wss = obs.working_set.get();
        let cold = obs.cold_hist.pages_colder_than(PageAge::from_scans(1));
        let slack = 64 + total / 50;
        prop_assert!(
            (wss + cold).abs_diff(total) <= slack,
            "wss {wss} + cold {cold} vs total {total}"
        );
    }

    /// Every template's sampled profiles are valid and deterministic per
    /// seed.
    #[test]
    fn templates_always_produce_valid_profiles(seed in any::<u64>(), idx in 0usize..7) {
        use rand::SeedableRng;
        let template = JobTemplate::ALL[idx];
        let a = template.sample_profile(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let b = template.sample_profile(&mut rand::rngs::StdRng::seed_from_u64(seed));
        prop_assert!(a.validate().is_ok());
        prop_assert_eq!(a, b);
    }

    /// Burst windows spike the working set to the whole job and reset the
    /// next window's ages.
    #[test]
    fn bursts_reset_ages(pages in 1_000u64..20_000) {
        // Burst interval of ~1 window: force a burst quickly.
        let mut m = StatJobModel::with_noise(
            profile_from(vec![(pages, 1e-9)], Some(1)),
            7,
            0.0,
        );
        // Give ages time to accumulate first.
        m.set_start(SimTime::ZERO);
        let mut burst_seen = false;
        for w in 1..=60u64 {
            let obs = m.observe(
                SimTime::from_secs(100_000 + w * 300),
                SimDuration::from_secs(300),
            );
            if obs.working_set.get() == pages {
                burst_seen = true;
                // All promotions this window, none cold afterwards.
                prop_assert_eq!(
                    obs.cold_hist.pages_colder_than(PageAge::from_scans(1)),
                    0,
                    "post-burst histogram must be all-hot"
                );
            }
        }
        prop_assert!(burst_seen, "a ~5-min-interval burst never fired in 60 windows");
    }
}
