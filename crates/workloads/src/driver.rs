//! The page-level workload driver: full-fidelity execution against the
//! simulated kernel.
//!
//! The driver materializes a [`JobProfile`] as actual pages in a
//! [`Kernel`] memcg and, each simulated minute, issues the accesses the
//! profile's Poisson mixture implies. Used for single-machine examples,
//! the Bigtable A/B case study (Figure 10), and for validating the
//! analytic model against the real kstaled/kreclaimd machinery.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Binomial, Distribution};

use crate::profile::JobProfile;
use sdfm_compress::gen::PageGenerator;
use sdfm_kernel::{Kernel, KernelError, PageContent};
use sdfm_types::ids::{JobId, PageId};
use sdfm_types::time::{SimDuration, SimTime};

/// Counters from one driven window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriveStats {
    /// Distinct pages touched.
    pub pages_touched: u64,
    /// Touches that faulted on compressed pages (actual promotions).
    pub promotions: u64,
    /// Touches that were writes.
    pub writes: u64,
}

/// Drives one job's accesses into a kernel.
#[derive(Debug)]
pub struct PageLevelDriver {
    job: JobId,
    profile: JobProfile,
    rng: StdRng,
    /// Bucket layout: page index ranges per rate bucket, in profile order.
    bucket_starts: Vec<u64>,
}

impl PageLevelDriver {
    /// Creates a driver; pages will be laid out bucket-by-bucket in
    /// profile order.
    pub fn new(job: JobId, profile: JobProfile, seed: u64) -> Self {
        let mut bucket_starts = Vec::with_capacity(profile.rate_buckets.len());
        let mut acc = 0u64;
        for b in &profile.rate_buckets {
            bucket_starts.push(acc);
            acc += b.pages;
        }
        PageLevelDriver {
            job,
            profile,
            rng: StdRng::seed_from_u64(seed),
            bucket_starts,
        }
    }

    /// The job this driver feeds.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The profile driving the accesses.
    pub fn profile(&self) -> &JobProfile {
        &self.profile
    }

    /// Creates the memcg (limit = 2× the profile size) and allocates every
    /// page with synthetic content drawn from the profile's mix.
    ///
    /// # Errors
    ///
    /// Propagates kernel allocation errors.
    pub fn populate(&mut self, kernel: &mut Kernel) -> Result<(), KernelError> {
        let total = self.profile.total_pages();
        kernel.create_memcg(self.job, total + total)?;
        let mix = self.profile.mix.clone();
        let mut gen = PageGenerator::new(self.rng.gen());
        for bucket in self.profile.rate_buckets.clone() {
            kernel.alloc_pages(self.job, bucket.pages as usize, |_| {
                let class = mix.sample(&mut self.rng);
                PageContent::synthetic(class, gen.sample_payload_len(class))
            })?;
        }
        Ok(())
    }

    /// Like [`populate`](Self::populate) but with real page contents
    /// (slower; exercises actual compression).
    ///
    /// # Errors
    ///
    /// Propagates kernel allocation errors.
    pub fn populate_real(&mut self, kernel: &mut Kernel) -> Result<(), KernelError> {
        let total = self.profile.total_pages();
        kernel.create_memcg(self.job, total + total)?;
        let mix = self.profile.mix.clone();
        let mut gen = PageGenerator::new(self.rng.gen());
        for bucket in self.profile.rate_buckets.clone() {
            kernel.alloc_pages(self.job, bucket.pages as usize, |_| {
                let (_, bytes) = gen.generate_from_mix(&mix);
                PageContent::real(bytes)
            })?;
        }
        Ok(())
    }

    /// Issues one window's accesses: for each rate bucket, each page is
    /// touched with probability `1 − exp(−λ·w)` (at least one Poisson
    /// arrival in the window), matching the accessed-bit semantics kstaled
    /// observes.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (missing memcg — e.g. the job was killed).
    pub fn run_window(
        &mut self,
        kernel: &mut Kernel,
        at: SimTime,
        window: SimDuration,
    ) -> Result<DriveStats, KernelError> {
        let m = self.profile.diurnal.multiplier(at);
        let w = window.as_secs() as f64;
        let mut stats = DriveStats::default();
        // Full-memory bursts (GC, compaction, batch scans): touch every
        // page this window.
        if let Some(interval) = self.profile.burst_interval {
            if interval > SimDuration::ZERO {
                let p = (w / interval.as_secs() as f64).clamp(0.0, 1.0);
                if self.rng.gen_bool(p) {
                    let total: u64 = self.profile.rate_buckets.iter().map(|b| b.pages).sum();
                    for i in 0..total {
                        self.touch_one(kernel, i, &mut stats)?;
                    }
                    return Ok(stats);
                }
            }
        }
        for bi in 0..self.profile.rate_buckets.len() {
            let bucket = self.profile.rate_buckets[bi];
            let p = 1.0 - (-bucket.rate_per_sec * m * w).exp();
            if p <= 0.0 || bucket.pages == 0 {
                continue;
            }
            let start = self.bucket_starts[bi];
            if p > 0.05 {
                // Dense: Bernoulli every page.
                for i in 0..bucket.pages {
                    if self.rng.gen_bool(p) {
                        self.touch_one(kernel, start + i, &mut stats)?;
                    }
                }
            } else {
                // Sparse: draw the count, then sample pages (collisions
                // are rare at p ≤ 5% and merely drop duplicate touches).
                let k = Binomial::new(bucket.pages, p)
                    // sdfm-lint: allow(P1) reason="touch probability is clamped into (0,1) before the draw"
                    .expect("p validated in (0,1)")
                    .sample(&mut self.rng);
                for _ in 0..k {
                    let i = self.rng.gen_range(0..bucket.pages);
                    self.touch_one(kernel, start + i, &mut stats)?;
                }
            }
        }
        Ok(stats)
    }

    fn touch_one(
        &mut self,
        kernel: &mut Kernel,
        page: u64,
        stats: &mut DriveStats,
    ) -> Result<(), KernelError> {
        let write = self.rng.gen_bool(self.profile.write_fraction);
        let promoted = kernel.touch(self.job, PageId::new(page), write)?;
        stats.pages_touched += 1;
        stats.writes += u64::from(write);
        stats.promotions += u64::from(promoted);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DiurnalPattern, JobPriority, RateBucket};
    use crate::templates::JobTemplate;
    use sdfm_compress::gen::CompressibilityMix;
    use sdfm_kernel::KernelConfig;
    use sdfm_types::size::PageCount;
    use sdfm_types::time::MINUTE;

    fn small_profile() -> JobProfile {
        JobProfile {
            template: "test".into(),
            rate_buckets: vec![
                RateBucket {
                    pages: 200,
                    rate_per_sec: 0.5,
                },
                RateBucket {
                    pages: 800,
                    rate_per_sec: 1e-9,
                },
            ],
            diurnal: DiurnalPattern::FLAT,
            mix: CompressibilityMix::fleet_default(),
            cpu_cores: 1.0,
            write_fraction: 0.2,
            burst_interval: None,
            priority: JobPriority::Batch,
            lifetime: SimDuration::from_hours(10),
        }
    }

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig {
            capacity: PageCount::new(100_000),
            ..KernelConfig::default()
        })
    }

    #[test]
    fn populate_allocates_profile_pages() {
        let mut k = kernel();
        let mut d = PageLevelDriver::new(JobId::new(1), small_profile(), 1);
        d.populate(&mut k).unwrap();
        assert_eq!(
            k.memcg(JobId::new(1)).unwrap().usage(),
            PageCount::new(1000)
        );
    }

    #[test]
    fn hot_bucket_gets_touched_frozen_does_not() {
        let mut k = kernel();
        let mut d = PageLevelDriver::new(JobId::new(1), small_profile(), 2);
        d.populate(&mut k).unwrap();
        let stats = d.run_window(&mut k, SimTime::ZERO, MINUTE).unwrap();
        // 200 hot pages at 0.5/s: p(touch) ≈ 1. Frozen: ≈ 0.
        assert!(
            (190..=210).contains(&stats.pages_touched),
            "touched {}",
            stats.pages_touched
        );
        assert!(stats.writes > 0, "some touches must be writes");
        assert_eq!(stats.promotions, 0, "nothing compressed yet");
    }

    #[test]
    fn driver_detects_promotions_after_reclaim() {
        use sdfm_types::histogram::PageAge;
        let mut k = kernel();
        let mut d = PageLevelDriver::new(JobId::new(1), small_profile(), 3);
        d.populate(&mut k).unwrap();
        k.set_zswap_enabled(JobId::new(1), true).unwrap();
        for _ in 0..4 {
            k.run_scan();
        }
        // Compress everything idle ≥ 2 scans (the frozen 800 + any
        // untouched hot pages).
        k.reclaim_job(JobId::new(1), PageAge::from_scans(2))
            .unwrap();
        let cg = k.memcg(JobId::new(1)).unwrap();
        let zs = cg.stats().zswapped_pages;
        assert!(zs > 500, "only {zs} pages compressed");
        // Force-touch a compressed page: it must fault back in. (Which
        // pages compress depends on the sampled content mix, so find one
        // rather than hardcoding an index.)
        let victim = (0..1000)
            .map(PageId::new)
            .find(|&p| cg.page_in_zswap(p).unwrap())
            .expect("a compressed page exists");
        let promoted = k.touch(JobId::new(1), victim, false).unwrap();
        assert!(promoted);
    }

    #[test]
    fn run_window_errors_for_missing_memcg() {
        let mut k = kernel();
        let mut d = PageLevelDriver::new(JobId::new(9), small_profile(), 4);
        assert!(d.run_window(&mut k, SimTime::ZERO, MINUTE).is_err());
    }

    #[test]
    fn real_population_roundtrips() {
        let mut k = kernel();
        let mut profile = JobTemplate::WebFrontend.sample_profile(&mut StdRng::seed_from_u64(1));
        // Shrink for test speed.
        for b in &mut profile.rate_buckets {
            b.pages = (b.pages / 50).max(1);
        }
        let mut d = PageLevelDriver::new(JobId::new(2), profile, 5);
        d.populate_real(&mut k).unwrap();
        let stats = d.run_window(&mut k, SimTime::ZERO, MINUTE).unwrap();
        assert!(stats.pages_touched > 0);
    }
}
