//! The analytic (statistical) job model for fleet-scale simulation.
//!
//! For a page accessed as a Poisson process with rate λ, the steady-state
//! idle time is exponentially distributed, so the kstaled age distribution
//! and the would-be promotion rates have closed forms:
//!
//! * `P(age ≥ k scans) = exp(-λ · 120k) = q^k` with `q = exp(-120λ)`;
//! * the rate of accesses that find the page at age `k` is
//!   `λ · (q^k − q^{k+1})`.
//!
//! Summing over the profile's rate buckets gives the exact expected
//! cold-age histogram, promotion histogram, and working set for any window
//! — no per-page state. Slowly-varying multiplicative noise (AR(1) in log
//! space) and the diurnal multiplier supply the variance the fleet figures
//! need. A validation test in `tests/` checks this model against the
//! page-level kernel simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::profile::JobProfile;
use sdfm_types::histogram::{ColdAgeHistogram, PageAge, PromotionHistogram, MAX_AGE_SCANS};
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime, KSTALED_SCAN_PERIOD};

/// One window's synthetic kernel-view observation of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowObservation {
    /// Window end.
    pub at: SimTime,
    /// Window length.
    pub window: SimDuration,
    /// Working set (pages accessed within one scan period).
    pub working_set: PageCount,
    /// Expected cold-age histogram at window end.
    pub cold_hist: ColdAgeHistogram,
    /// Would-be promotions during the window, by age at access.
    pub promo_delta: PromotionHistogram,
    /// The diurnal × noise multiplier in force.
    pub multiplier: f64,
}

/// Generates per-window observations for one job from its profile.
#[derive(Debug)]
pub struct StatJobModel {
    profile: JobProfile,
    rng: StdRng,
    /// Per-bucket slowly-varying multiplier, AR(1) in log space.
    bucket_noise: Vec<f64>,
    /// AR(1) persistence per step.
    rho: f64,
    /// Stationary sigma of the log-noise.
    sigma: f64,
    /// The last moment every page was touched at once: job start, or the
    /// most recent full-memory burst. Page ages cannot exceed the time
    /// since this.
    last_reset: SimTime,
}

// Fleet simulators step job models for disjoint job sets on worker
// threads; the model (including its per-job RNG) must stay plain owned
// data.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<StatJobModel>();
};

impl StatJobModel {
    /// Default log-noise sigma (≈ ±20% rate wobble).
    pub const DEFAULT_SIGMA: f64 = 0.2;

    /// Creates a model with the default noise.
    pub fn new(profile: JobProfile, seed: u64) -> Self {
        Self::with_noise(profile, seed, Self::DEFAULT_SIGMA)
    }

    /// Creates a model with explicit log-noise sigma (0 disables noise,
    /// making observations deterministic expectations).
    pub fn with_noise(profile: JobProfile, seed: u64, sigma: f64) -> Self {
        let n = profile.rate_buckets.len();
        StatJobModel {
            profile,
            rng: StdRng::seed_from_u64(seed),
            bucket_noise: vec![1.0; n],
            rho: 0.9,
            sigma,
            last_reset: SimTime::ZERO,
        }
    }

    /// Declares when the job started (all pages age from here). Also used
    /// by tests to place the model deep in steady state.
    pub fn set_start(&mut self, at: SimTime) {
        self.last_reset = at;
    }

    /// The underlying profile.
    pub fn profile(&self) -> &JobProfile {
        &self.profile
    }

    /// Produces the observation for the window ending at `at`.
    ///
    /// Age distributions are the steady-state exponentials truncated at
    /// the time since the last full reset (job start or burst). With
    /// probability `window / burst_interval` the window carries a
    /// full-memory burst: every page is touched — the promotion histogram
    /// receives the entire pre-burst age distribution, the working set
    /// spikes to the whole job, and ages restart.
    pub fn observe(&mut self, at: SimTime, window: SimDuration) -> WindowObservation {
        let diurnal = self.profile.diurnal.multiplier(at);
        self.advance_noise();
        let scan_secs = KSTALED_SCAN_PERIOD.as_secs() as f64;
        let window_secs = window.as_secs() as f64;
        let cap = (at.saturating_duration_since(self.last_reset).as_secs()
            / KSTALED_SCAN_PERIOD.as_secs())
        .min(MAX_AGE_SCANS as u64) as u8;
        let burst = match self.profile.burst_interval {
            Some(interval) if interval > SimDuration::ZERO => {
                let p = (window_secs / interval.as_secs() as f64).clamp(0.0, 1.0);
                self.rng.gen_bool(p)
            }
            _ => false,
        };

        let mut cold = ColdAgeHistogram::new();
        let mut promo = PromotionHistogram::new();
        let mut wss = 0.0f64;
        let total_pages: u64 = self.profile.rate_buckets.iter().map(|b| b.pages).sum();

        for bi in 0..self.profile.rate_buckets.len() {
            let bucket = self.profile.rate_buckets[bi];
            let lambda = bucket.rate_per_sec * diurnal * self.bucket_noise[bi];
            let n = bucket.pages as f64;
            let q = (-lambda * scan_secs).exp();
            if !burst {
                wss += n * (1.0 - q);
            }
            // Walk q^k over the truncated age distribution. At k == cap all
            // remaining mass sits at exactly that age (untouched since the
            // last reset).
            let mut qk = 1.0; // q^0
            let mut k = 0u8;
            loop {
                let qk1 = qk * q;
                let at_cap = k >= cap;
                let p_age_k = if at_cap { qk } else { qk - qk1 };
                let pages_at_k = n * p_age_k;
                if burst {
                    // Every page is accessed at its current age.
                    if k >= 1 {
                        self.add_promo_rounded(&mut promo, k, pages_at_k);
                    }
                } else {
                    self.add_rounded(&mut cold, k, pages_at_k);
                    if k >= 1 {
                        // Regular accesses arriving this window find pages
                        // at age k with probability mass p_age_k.
                        self.add_promo_rounded(&mut promo, k, n * lambda * window_secs * p_age_k);
                    }
                }
                if at_cap || (qk1 * n < 1e-3 && !burst) {
                    if !at_cap && qk1 > 0.0 {
                        // Sub-milli-page tail: collapse to k+1 (or cap).
                        let kt = (k + 1).min(cap);
                        self.add_rounded(&mut cold, kt, n * qk1);
                    }
                    break;
                }
                qk = qk1;
                k += 1;
            }
        }

        if burst {
            // Post-burst: every page hot, the whole job is the working set.
            cold.clear();
            cold.record_page(PageAge::HOT, total_pages);
            wss = total_pages as f64;
            self.last_reset = at;
        }

        WindowObservation {
            at,
            window,
            working_set: PageCount::new(wss.round() as u64),
            cold_hist: cold,
            promo_delta: promo,
            multiplier: diurnal,
        }
    }

    fn advance_noise(&mut self) {
        if self.sigma == 0.0 {
            return;
        }
        let innov_sd = self.sigma * (1.0 - self.rho * self.rho).sqrt();
        // sdfm-lint: allow(P1) reason="innovation sd is finite and non-negative for rho in [0, 1]"
        let normal = Normal::new(0.0, innov_sd).expect("positive sd");
        for x in &mut self.bucket_noise {
            let ln = self.rho * x.ln() + normal.sample(&mut self.rng);
            *x = ln.exp().clamp(0.05, 20.0);
        }
    }

    /// Stochastic rounding keeps sub-unit expectations unbiased.
    fn round_stochastic(&mut self, v: f64) -> u64 {
        let base = v.floor();
        let frac = v - base;
        base as u64 + u64::from(self.rng.gen_bool(frac.clamp(0.0, 1.0)))
    }

    fn add_rounded(&mut self, hist: &mut ColdAgeHistogram, age: u8, v: f64) {
        if v <= 0.0 {
            return;
        }
        let n = self.round_stochastic(v);
        if n > 0 {
            hist.record_page(PageAge::from_scans(age), n);
        }
    }

    fn add_promo_rounded(&mut self, hist: &mut PromotionHistogram, age: u8, v: f64) {
        if v <= 0.0 {
            return;
        }
        let n = self.round_stochastic(v);
        if n > 0 {
            hist.record_promotion(PageAge::from_scans(age), n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{DiurnalPattern, JobPriority, RateBucket};
    use sdfm_compress::gen::CompressibilityMix;
    use sdfm_types::time::MINUTE;

    fn profile(buckets: Vec<RateBucket>, diurnal: DiurnalPattern) -> JobProfile {
        JobProfile {
            template: "test".into(),
            rate_buckets: buckets,
            diurnal,
            mix: CompressibilityMix::fleet_default(),
            cpu_cores: 1.0,
            write_fraction: 0.2,
            burst_interval: None,
            priority: JobPriority::Batch,
            lifetime: SimDuration::from_hours(100),
        }
    }

    #[test]
    fn histogram_totals_match_page_count() {
        let p = profile(
            vec![
                RateBucket {
                    pages: 5_000,
                    rate_per_sec: 0.05,
                },
                RateBucket {
                    pages: 5_000,
                    rate_per_sec: 1e-7,
                },
            ],
            DiurnalPattern::FLAT,
        );
        let mut m = StatJobModel::with_noise(p, 1, 0.0);
        let obs = m.observe(SimTime::from_secs(3600), MINUTE * 5);
        let total = obs.cold_hist.total_pages();
        assert!(
            (9_900..=10_100).contains(&total),
            "histogram total {total} far from 10k pages"
        );
    }

    #[test]
    fn hot_bucket_is_working_set_frozen_bucket_is_cold() {
        let p = profile(
            vec![
                RateBucket {
                    pages: 1_000,
                    rate_per_sec: 0.5, // ~60 accesses per scan period
                },
                RateBucket {
                    pages: 9_000,
                    rate_per_sec: 1e-9,
                },
            ],
            DiurnalPattern::FLAT,
        );
        let mut m = StatJobModel::with_noise(p, 2, 0.0);
        let obs = m.observe(SimTime::from_secs(7200), MINUTE);
        let wss = obs.working_set.get();
        assert!((900..=1100).contains(&wss), "wss {wss}");
        let cold = obs.cold_hist.pages_colder_than(PageAge::from_scans(1));
        assert!((8_800..=9_200).contains(&cold), "cold {cold}");
    }

    #[test]
    fn promotion_rate_matches_analytic_form() {
        // One bucket at λ = 1/600 s (idle mean 10 min). Promotions at
        // T = 1 scan over one minute: n·λ·60·q with q = exp(-0.2).
        let lam = 1.0 / 600.0;
        let p = profile(
            vec![RateBucket {
                pages: 100_000,
                rate_per_sec: lam,
            }],
            DiurnalPattern::FLAT,
        );
        let mut m = StatJobModel::with_noise(p, 3, 0.0);
        let obs = m.observe(SimTime::from_secs(120), MINUTE);
        let got = obs
            .promo_delta
            .promotions_colder_than(PageAge::from_scans(1)) as f64;
        let expect = 100_000.0 * lam * 60.0 * (-lam * 120.0).exp();
        let rel = (got - expect).abs() / expect;
        assert!(rel < 0.05, "promotions {got} vs analytic {expect}");
    }

    #[test]
    fn diurnal_trough_reduces_working_set() {
        let d = DiurnalPattern {
            amplitude: 0.8,
            phase_secs: 0,
        };
        let p = profile(
            vec![RateBucket {
                pages: 50_000,
                rate_per_sec: 0.005,
            }],
            d,
        );
        let mut m = StatJobModel::with_noise(p.clone(), 4, 0.0);
        let peak = m.observe(SimTime::from_secs(0), MINUTE).working_set.get();
        let mut m = StatJobModel::with_noise(p, 5, 0.0);
        let trough = m
            .observe(SimTime::from_secs(43_200), MINUTE)
            .working_set
            .get();
        assert!(
            trough < peak * 7 / 10,
            "trough wss {trough} not below peak {peak}"
        );
    }

    #[test]
    fn noise_makes_windows_vary_but_preserves_scale() {
        let p = profile(
            vec![RateBucket {
                pages: 10_000,
                rate_per_sec: 0.01,
            }],
            DiurnalPattern::FLAT,
        );
        let mut m = StatJobModel::new(p, 6);
        let wss: Vec<u64> = (0..20)
            .map(|i| {
                m.observe(SimTime::from_secs(i * 300), MINUTE * 5)
                    .working_set
                    .get()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = wss.iter().collect();
        assert!(distinct.len() > 5, "noise produced no variation: {wss:?}");
        let mean = wss.iter().sum::<u64>() as f64 / wss.len() as f64;
        assert!((4_000.0..9_900.0).contains(&mean), "wss mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = profile(
            vec![RateBucket {
                pages: 1_000,
                rate_per_sec: 0.01,
            }],
            DiurnalPattern::FLAT,
        );
        let mut a = StatJobModel::new(p.clone(), 42);
        let mut b = StatJobModel::new(p, 42);
        let oa = a.observe(SimTime::from_secs(300), MINUTE * 5);
        let ob = b.observe(SimTime::from_secs(300), MINUTE * 5);
        assert_eq!(oa, ob);
    }
}
