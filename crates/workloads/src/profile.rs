//! Job profiles: the parametric description of one job's memory behavior.

use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

use sdfm_compress::gen::CompressibilityMix;
use sdfm_types::error::SdfmError;
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime, DAY};

/// Scheduling priority; the cluster evicts best-effort jobs first under
/// memory pressure (§4.2: "we selectively evict low-priority jobs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum JobPriority {
    /// Killed first under pressure.
    BestEffort,
    /// Batch work: evictable but costlier.
    Batch,
    /// Latency-sensitive serving: never evicted for memory.
    LatencySensitive,
}

/// A group of pages sharing one mean access rate.
///
/// Page popularity in a job is modeled as a mixture: a Zipf-distributed
/// head plus a frozen tail. Bucketing the continuum into discrete rate
/// groups keeps both the page-level driver and the analytic model cheap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateBucket {
    /// Pages in this bucket.
    pub pages: u64,
    /// Mean per-page access rate, in accesses per second (Poisson).
    pub rate_per_sec: f64,
}

/// A sinusoidal load modulation with one-day period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalPattern {
    /// Peak-to-trough amplitude as a fraction of peak rate, in `[0, 1)`:
    /// 0 = flat, 0.6 = trough runs at 40% of peak.
    pub amplitude: f64,
    /// Phase offset in seconds (when the peak occurs within the day).
    pub phase_secs: u64,
}

impl DiurnalPattern {
    /// A flat (no modulation) pattern.
    pub const FLAT: DiurnalPattern = DiurnalPattern {
        amplitude: 0.0,
        phase_secs: 0,
    };

    /// The rate multiplier at `t`, in `[1 - amplitude, 1]`.
    ///
    /// ```
    /// # use sdfm_workloads::profile::DiurnalPattern;
    /// # use sdfm_types::time::SimTime;
    /// let d = DiurnalPattern { amplitude: 0.5, phase_secs: 0 };
    /// let peak = d.multiplier(SimTime::ZERO);
    /// assert!((peak - 1.0).abs() < 1e-9);
    /// ```
    pub fn multiplier(&self, t: SimTime) -> f64 {
        if self.amplitude == 0.0 {
            return 1.0;
        }
        let day = DAY.as_secs() as f64;
        let x = ((t.second_of_day() as f64 - self.phase_secs as f64) / day) * TAU;
        // cos peaks at the phase offset.
        1.0 - self.amplitude * (1.0 - x.cos()) / 2.0
    }
}

/// The full parametric description of one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Template name this profile was drawn from (for reporting).
    pub template: String,
    /// Access-rate mixture over the job's pages.
    pub rate_buckets: Vec<RateBucket>,
    /// Daily load modulation.
    pub diurnal: DiurnalPattern,
    /// Page-content mixture (drives compressibility).
    pub mix: CompressibilityMix,
    /// CPU the job consumes (cores), for overhead normalization.
    pub cpu_cores: f64,
    /// Fraction of accesses that are writes (dirties pages, clearing
    /// incompressible marks).
    pub write_fraction: f64,
    /// Mean interval between full-memory bursts (GC cycles, cache
    /// compactions, batch scans) that touch every page at once; `None`
    /// disables bursts. Bursts reset all page ages and are the dominant
    /// source of threshold-pool outliers (§4.3's "sudden hike in
    /// application activity").
    pub burst_interval: Option<SimDuration>,
    /// Scheduling priority.
    pub priority: JobPriority,
    /// How long the job runs before exiting.
    pub lifetime: SimDuration,
}

impl JobProfile {
    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`SdfmError`] when the profile has no pages, a rate is
    /// negative/non-finite, the diurnal amplitude is outside `[0, 1)`, or
    /// `cpu_cores` is not positive.
    pub fn validate(&self) -> Result<(), SdfmError> {
        if self.rate_buckets.is_empty() || self.total_pages().is_zero() {
            return Err(SdfmError::empty_input("profile has no pages"));
        }
        for b in &self.rate_buckets {
            if !b.rate_per_sec.is_finite() || b.rate_per_sec < 0.0 {
                return Err(SdfmError::invalid_parameter(format!(
                    "bucket rate {} invalid",
                    b.rate_per_sec
                )));
            }
        }
        if !(0.0..1.0).contains(&self.diurnal.amplitude) {
            return Err(SdfmError::invalid_parameter(format!(
                "diurnal amplitude {} outside [0, 1)",
                self.diurnal.amplitude
            )));
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err(SdfmError::invalid_parameter(format!(
                "write fraction {} outside [0, 1]",
                self.write_fraction
            )));
        }
        if !self.cpu_cores.is_finite() || self.cpu_cores <= 0.0 {
            return Err(SdfmError::invalid_parameter(format!(
                "cpu cores {} must be positive",
                self.cpu_cores
            )));
        }
        Ok(())
    }

    /// Total pages across all buckets.
    pub fn total_pages(&self) -> PageCount {
        PageCount::new(self.rate_buckets.iter().map(|b| b.pages).sum())
    }

    /// Total access rate at peak (accesses/second).
    pub fn peak_access_rate(&self) -> f64 {
        self.rate_buckets
            .iter()
            .map(|b| b.pages as f64 * b.rate_per_sec)
            .sum()
    }

    /// The analytic steady-state fraction of pages idle for at least
    /// `idle_secs`, at the diurnal multiplier `m` (ages of a
    /// Poisson-accessed page are exponential with its rate).
    pub fn expected_cold_fraction(&self, idle_secs: f64, m: f64) -> f64 {
        let total = self.total_pages().get() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let cold: f64 = self
            .rate_buckets
            .iter()
            .map(|b| b.pages as f64 * (-b.rate_per_sec * m * idle_secs).exp())
            .sum();
        cold / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(buckets: Vec<RateBucket>) -> JobProfile {
        JobProfile {
            template: "test".into(),
            rate_buckets: buckets,
            diurnal: DiurnalPattern::FLAT,
            mix: CompressibilityMix::fleet_default(),
            cpu_cores: 1.0,
            write_fraction: 0.2,
            burst_interval: None,
            priority: JobPriority::Batch,
            lifetime: SimDuration::from_hours(24),
        }
    }

    #[test]
    fn totals_and_rates() {
        let p = profile(vec![
            RateBucket {
                pages: 100,
                rate_per_sec: 1.0,
            },
            RateBucket {
                pages: 900,
                rate_per_sec: 0.0,
            },
        ]);
        assert_eq!(p.total_pages(), PageCount::new(1000));
        assert_eq!(p.peak_access_rate(), 100.0);
        p.validate().unwrap();
    }

    #[test]
    fn cold_fraction_analytics() {
        // 100 hot pages (1/s: never idle 120s), 900 frozen pages.
        let p = profile(vec![
            RateBucket {
                pages: 100,
                rate_per_sec: 1.0,
            },
            RateBucket {
                pages: 900,
                rate_per_sec: 0.0,
            },
        ]);
        let f = p.expected_cold_fraction(120.0, 1.0);
        assert!((f - 0.9).abs() < 1e-10, "cold fraction {f}");
        // Everything is "cold" for idle 0s (exp(0) = 1).
        assert_eq!(p.expected_cold_fraction(0.0, 1.0), 1.0);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        assert!(profile(vec![]).validate().is_err());
        assert!(profile(vec![RateBucket {
            pages: 0,
            rate_per_sec: 1.0
        }])
        .validate()
        .is_err());
        assert!(profile(vec![RateBucket {
            pages: 1,
            rate_per_sec: -1.0
        }])
        .validate()
        .is_err());
        let mut p = profile(vec![RateBucket {
            pages: 1,
            rate_per_sec: 1.0,
        }]);
        p.diurnal.amplitude = 1.0;
        assert!(p.validate().is_err());
        p.diurnal.amplitude = 0.5;
        p.cpu_cores = 0.0;
        assert!(p.validate().is_err());
        p.cpu_cores = 1.0;
        p.write_fraction = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn diurnal_multiplier_range_and_period() {
        let d = DiurnalPattern {
            amplitude: 0.6,
            phase_secs: 3600,
        };
        let mut min: f64 = 1.0;
        let mut max: f64 = 0.0;
        for h in 0..24 {
            let m = d.multiplier(SimTime::from_secs(h * 3600));
            min = min.min(m);
            max = max.max(m);
        }
        assert!((max - 1.0).abs() < 1e-9, "peak {max}");
        assert!((min - 0.4).abs() < 1e-2, "trough {min}");
        // Period is one day.
        let a = d.multiplier(SimTime::from_secs(5000));
        let b = d.multiplier(SimTime::from_secs(5000 + 86_400));
        assert!((a - b).abs() < 1e-12);
        // Peak occurs at the phase offset.
        assert!((d.multiplier(SimTime::from_secs(3600)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_pattern_is_identity() {
        for t in [0u64, 1000, 50_000] {
            assert_eq!(DiurnalPattern::FLAT.multiplier(SimTime::from_secs(t)), 1.0);
        }
    }
}
