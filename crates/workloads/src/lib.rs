//! Synthetic warehouse-scale workloads.
//!
//! The paper's fleet-level results are distributions over thousands of
//! heterogeneous production jobs — which we cannot ship. This crate builds
//! the closest synthetic equivalent: parametric job profiles whose page
//! popularity follows a Zipf-with-frozen-tail law, modulated by diurnal
//! load patterns and job churn, drawn from archetype
//! [templates](templates::JobTemplate) (web frontends, Bigtable-like
//! serving, ML training, batch analytics, caches, video serving).
//!
//! Two execution modes consume the same [`JobProfile`]:
//!
//! * the [page-level driver](driver::PageLevelDriver) issues real page
//!   touches into a simulated [`sdfm_kernel::Kernel`] — full fidelity, used
//!   for the Bigtable case study and validation;
//! * the [statistical model](stat::StatJobModel) computes each window's
//!   expected cold-age histogram, promotion histogram, and working set
//!   analytically from the access-rate mixture (ages of a Poisson-accessed
//!   page are exponentially distributed) — used for fleet-scale
//!   longitudinal figures where simulating every page of every job would
//!   be prohibitive. A validation test checks the two modes agree.
//!
//! # Examples
//!
//! ```
//! use sdfm_workloads::templates::JobTemplate;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let profile = JobTemplate::Bigtable.sample_profile(&mut rng);
//! assert!(profile.total_pages().get() > 0);
//! ```

#![warn(missing_docs)]

pub mod driver;
pub mod fleet;
pub mod profile;
pub mod stat;
pub mod templates;

pub use driver::PageLevelDriver;
pub use fleet::{ClusterSpec, FleetBuilder, FleetSpec};
pub use profile::{DiurnalPattern, JobPriority, JobProfile, RateBucket};
pub use stat::{StatJobModel, WindowObservation};
pub use templates::JobTemplate;
