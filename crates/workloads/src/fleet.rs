//! Fleet construction: clusters of machines with distinct application
//! mixes.
//!
//! The paper's Figure 2 shows cold-memory percentages spanning 1–52% across
//! machines *within* clusters and wider still across clusters — driven by
//! which applications each cluster hosts. [`FleetSpec::paper_default`]
//! builds ten clusters whose template mixes are tilted toward different
//! archetypes, reproducing that spread.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::JobProfile;
use crate::templates::JobTemplate;
use sdfm_types::ids::ClusterId;

/// One cluster's composition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster identity.
    pub id: ClusterId,
    /// Machines in the cluster.
    pub machines: usize,
    /// Template mixture for jobs scheduled here.
    pub template_weights: Vec<(JobTemplate, f64)>,
    /// Jobs per machine (inclusive range); WSCs pack tens of jobs per
    /// machine.
    pub jobs_per_machine: (usize, usize),
}

impl ClusterSpec {
    /// Samples a template according to this cluster's weights.
    pub fn sample_template<R: Rng + ?Sized>(&self, rng: &mut R) -> JobTemplate {
        let total: f64 = self.template_weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for &(t, w) in &self.template_weights {
            if x < w {
                return t;
            }
            x -= w;
        }
        // sdfm-lint: allow(P1) reason="template weights are compiled-in specs, non-empty by construction"
        self.template_weights.last().expect("non-empty weights").0
    }
}

/// A whole fleet blueprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// Clusters, largest first (the "top 10 clusters" of Figures 2/6).
    pub clusters: Vec<ClusterSpec>,
}

impl FleetSpec {
    /// Ten clusters with heterogeneous application mixes, scaled by
    /// `machines_per_cluster` (the paper's clusters have tens of thousands
    /// of machines; simulations use hundreds).
    pub fn paper_default(machines_per_cluster: usize) -> Self {
        // Each cluster tilts the fleet mix toward one or two archetypes,
        // like dedicated serving / batch / storage clusters do.
        let tilts: [&[(JobTemplate, f64)]; 10] = [
            &[(JobTemplate::WebFrontend, 3.0)],
            &[
                (JobTemplate::Bigtable, 3.0),
                (JobTemplate::KeyValueCache, 1.5),
            ],
            &[(JobTemplate::MlTraining, 3.0)],
            &[
                (JobTemplate::BatchAnalytics, 3.0),
                (JobTemplate::LogProcessor, 2.0),
            ],
            &[(JobTemplate::KeyValueCache, 3.0)],
            &[(JobTemplate::VideoServer, 4.0)],
            &[(JobTemplate::LogProcessor, 4.0)],
            &[], // balanced
            &[
                (JobTemplate::WebFrontend, 2.0),
                (JobTemplate::Bigtable, 2.0),
            ],
            &[
                (JobTemplate::BatchAnalytics, 2.0),
                (JobTemplate::MlTraining, 2.0),
            ],
        ];
        let clusters = tilts
            .iter()
            .enumerate()
            .map(|(i, tilt)| {
                let template_weights = JobTemplate::ALL
                    .iter()
                    .map(|&t| {
                        let bias = tilt
                            .iter()
                            .find(|(bt, _)| *bt == t)
                            .map(|(_, f)| *f)
                            .unwrap_or(1.0);
                        (t, t.fleet_weight() * bias)
                    })
                    .collect();
                ClusterSpec {
                    id: ClusterId::new(i as u64),
                    machines: machines_per_cluster,
                    template_weights,
                    jobs_per_machine: (6, 14),
                }
            })
            .collect();
        FleetSpec { clusters }
    }
}

/// A job placed on a machine of a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedJob {
    /// The hosting cluster.
    pub cluster: ClusterId,
    /// Machine index within the cluster.
    pub machine: usize,
    /// The job's profile.
    pub profile: JobProfile,
}

/// Expands a [`FleetSpec`] into concrete job placements.
#[derive(Debug)]
pub struct FleetBuilder {
    spec: FleetSpec,
    rng: StdRng,
}

impl FleetBuilder {
    /// Creates a builder with a deterministic seed.
    pub fn new(spec: FleetSpec, seed: u64) -> Self {
        FleetBuilder {
            spec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The spec being expanded.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Samples the full job population: every machine of every cluster
    /// gets a jobs-per-machine count and per-job profiles from the
    /// cluster's template mix.
    pub fn build(&mut self) -> Vec<PlacedJob> {
        let mut jobs = Vec::new();
        for cluster in self.spec.clusters.clone() {
            for machine in 0..cluster.machines {
                let (lo, hi) = cluster.jobs_per_machine;
                let count = self.rng.gen_range(lo..=hi);
                for _ in 0..count {
                    let template = cluster.sample_template(&mut self.rng);
                    jobs.push(PlacedJob {
                        cluster: cluster.id,
                        machine,
                        profile: template.sample_profile(&mut self.rng),
                    });
                }
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_ten_clusters() {
        let spec = FleetSpec::paper_default(50);
        assert_eq!(spec.clusters.len(), 10);
        for c in &spec.clusters {
            assert_eq!(c.machines, 50);
            assert_eq!(c.template_weights.len(), JobTemplate::ALL.len());
        }
    }

    #[test]
    fn build_places_jobs_on_every_machine() {
        let mut b = FleetBuilder::new(FleetSpec::paper_default(5), 1);
        let jobs = b.build();
        // 10 clusters × 5 machines × 6..=14 jobs.
        assert!(jobs.len() >= 10 * 5 * 6);
        assert!(jobs.len() <= 10 * 5 * 14);
        for c in 0..10u64 {
            assert!(
                jobs.iter().any(|j| j.cluster == ClusterId::new(c)),
                "cluster {c} empty"
            );
        }
    }

    #[test]
    fn cluster_tilts_shift_template_frequency() {
        let spec = FleetSpec::paper_default(1);
        let mut rng = StdRng::seed_from_u64(2);
        // Cluster 6 is tilted to log processors 4×.
        let log_cluster = &spec.clusters[6];
        let balanced = &spec.clusters[7];
        let count = |c: &ClusterSpec, rng: &mut StdRng| {
            (0..1000)
                .filter(|_| c.sample_template(rng) == JobTemplate::LogProcessor)
                .count()
        };
        let tilted = count(log_cluster, &mut rng);
        let base = count(balanced, &mut rng);
        assert!(tilted > base * 2, "tilt had no effect: {tilted} vs {base}");
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = FleetBuilder::new(FleetSpec::paper_default(2), 9).build();
        let b = FleetBuilder::new(FleetSpec::paper_default(2), 9).build();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn fleet_cold_fraction_is_paper_scale() {
        // Fleet-average expected cold fraction at T=120 s should be in the
        // neighborhood of the paper's 32% (Figure 1).
        let mut b = FleetBuilder::new(FleetSpec::paper_default(3), 11);
        let jobs = b.build();
        let mut weighted_cold = 0.0;
        let mut total_pages = 0.0;
        for j in &jobs {
            let pages = j.profile.total_pages().get() as f64;
            weighted_cold += j.profile.expected_cold_fraction(120.0, 1.0) * pages;
            total_pages += pages;
        }
        let fleet = weighted_cold / total_pages;
        assert!(
            (0.2..=0.45).contains(&fleet),
            "fleet cold fraction {fleet} outside the paper's neighborhood"
        );
    }
}
