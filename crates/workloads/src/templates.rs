//! Job archetype templates.
//!
//! Each template describes one family of WSC applications with
//! characteristic memory size, page-popularity skew, frozen-tail size
//! (never-touched data: caches of stale entries, archival buffers, leaked
//! allocations), diurnal sensitivity, and content mix. Sampling a template
//! yields a concrete [`JobProfile`] with per-job variation — the source of
//! the fleet heterogeneity in Figures 2 and 3.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::profile::{DiurnalPattern, JobPriority, JobProfile, RateBucket};
use sdfm_compress::gen::{CompressibilityMix, PageClass};
use sdfm_types::time::SimDuration;

/// Buckets in the hot band (rates from `top_rate` down to the hot floor).
const HOT_BUCKETS: usize = 8;
/// Buckets in the warm band (rates spanning the threshold-control zone).
const WARM_BUCKETS: usize = 12;
/// Buckets in the cool band.
const COOL_BUCKETS: usize = 8;
/// Slowest "hot" rate: touched about once a minute, safely inside any
/// working set.
const HOT_FLOOR: f64 = 1.0 / 60.0;
/// Warm band: idle times ~1.5 minutes to 1 hour. This is where the SLO
/// bites — accesses to these pages are the would-be promotions that force
/// the controller's threshold upward, so most of this band stays in DRAM.
const WARM_FAST: f64 = 1.0 / 90.0;
const WARM_SLOW: f64 = 1.0 / 3_600.0;
/// Cool band: idle 1–8 hours; cheap to keep in far memory, the bulk of
/// realized coverage.
const COOL_FAST: f64 = 1.0 / 4_000.0;
const COOL_SLOW: f64 = 1.0 / 28_800.0;
/// Rate of "frozen" pages: about one touch per month.
const FROZEN_RATE: f64 = 1.0 / (30.0 * 86_400.0);

/// The job archetypes the synthetic fleet is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobTemplate {
    /// User-facing web serving: small, hot, strongly diurnal.
    WebFrontend,
    /// Bigtable-like storage serving: large caches, diurnal, moderate
    /// cold tail (the §6.4 case study).
    Bigtable,
    /// ML training pipelines: throughput-oriented, large working sets.
    MlTraining,
    /// Batch analytics: bursty scans over mostly-cold data.
    BatchAnalytics,
    /// In-memory key-value cache: very large cold tail of stale entries.
    KeyValueCache,
    /// Video/media serving: incompressible buffers, moderate cold tail.
    VideoServer,
    /// Log ingestion/archival: write-once data that goes cold fast.
    LogProcessor,
}

impl JobTemplate {
    /// All templates.
    pub const ALL: [JobTemplate; 7] = [
        JobTemplate::WebFrontend,
        JobTemplate::Bigtable,
        JobTemplate::MlTraining,
        JobTemplate::BatchAnalytics,
        JobTemplate::KeyValueCache,
        JobTemplate::VideoServer,
        JobTemplate::LogProcessor,
    ];

    /// Default mixture weight of this template in a generic cluster,
    /// tuned so the fleet-average cold fraction at the 120 s threshold
    /// lands near the paper's 32% (Figure 1).
    pub fn fleet_weight(self) -> f64 {
        match self {
            JobTemplate::WebFrontend => 0.22,
            JobTemplate::Bigtable => 0.18,
            JobTemplate::MlTraining => 0.14,
            JobTemplate::BatchAnalytics => 0.16,
            JobTemplate::KeyValueCache => 0.12,
            JobTemplate::VideoServer => 0.08,
            JobTemplate::LogProcessor => 0.10,
        }
    }

    fn params(self) -> TemplateParams {
        match self {
            JobTemplate::WebFrontend => TemplateParams {
                pages: (2_000, 10_000),
                frozen_frac: (0.005, 0.02),
                warm_frac: (0.03, 0.09),
                cool_frac: (0.01, 0.05),
                burst_hours: (6.0, 24.0),
                top_rate: (1.0, 5.0),
                diurnal_amp: (0.4, 0.7),
                cores: (0.5, 4.0),
                lifetime_hours: (24.0, 24.0 * 14.0),
                priority: JobPriority::LatencySensitive,
                mix_bias: Some((PageClass::Text, 2.0)),
            },
            JobTemplate::Bigtable => TemplateParams {
                pages: (20_000, 120_000),
                frozen_frac: (0.01, 0.05),
                warm_frac: (0.08, 0.16),
                cool_frac: (0.03, 0.08),
                burst_hours: (12.0, 48.0),
                top_rate: (0.5, 3.0),
                diurnal_amp: (0.3, 0.6),
                cores: (2.0, 12.0),
                lifetime_hours: (24.0 * 7.0, 24.0 * 60.0),
                priority: JobPriority::LatencySensitive,
                mix_bias: Some((PageClass::StructuredRecords, 2.5)),
            },
            JobTemplate::MlTraining => TemplateParams {
                pages: (10_000, 60_000),
                frozen_frac: (0.02, 0.06),
                warm_frac: (0.12, 0.24),
                cool_frac: (0.05, 0.12),
                burst_hours: (2.0, 8.0),
                top_rate: (0.5, 2.0),
                diurnal_amp: (0.0, 0.15),
                cores: (4.0, 16.0),
                lifetime_hours: (4.0, 72.0),
                priority: JobPriority::Batch,
                mix_bias: Some((PageClass::HeapPointers, 1.8)),
            },
            JobTemplate::BatchAnalytics => TemplateParams {
                pages: (5_000, 50_000),
                frozen_frac: (0.03, 0.09),
                warm_frac: (0.18, 0.32),
                cool_frac: (0.08, 0.16),
                burst_hours: (2.0, 6.0),
                top_rate: (0.2, 1.5),
                diurnal_amp: (0.0, 0.3),
                cores: (1.0, 8.0),
                lifetime_hours: (1.0, 24.0),
                priority: JobPriority::Batch,
                mix_bias: None,
            },
            JobTemplate::KeyValueCache => TemplateParams {
                pages: (10_000, 100_000),
                frozen_frac: (0.05, 0.15),
                warm_frac: (0.22, 0.38),
                cool_frac: (0.10, 0.20),
                burst_hours: (24.0, 96.0),
                top_rate: (1.0, 6.0),
                diurnal_amp: (0.2, 0.5),
                cores: (0.5, 4.0),
                lifetime_hours: (24.0 * 3.0, 24.0 * 30.0),
                priority: JobPriority::LatencySensitive,
                mix_bias: Some((PageClass::StructuredRecords, 1.6)),
            },
            JobTemplate::VideoServer => TemplateParams {
                pages: (5_000, 40_000),
                frozen_frac: (0.03, 0.08),
                warm_frac: (0.12, 0.24),
                cool_frac: (0.06, 0.12),
                burst_hours: (12.0, 48.0),
                top_rate: (0.5, 2.0),
                diurnal_amp: (0.3, 0.6),
                cores: (1.0, 6.0),
                lifetime_hours: (24.0, 24.0 * 14.0),
                priority: JobPriority::LatencySensitive,
                mix_bias: Some((PageClass::Multimedia, 4.0)),
            },
            JobTemplate::LogProcessor => TemplateParams {
                pages: (2_000, 25_000),
                frozen_frac: (0.06, 0.18),
                warm_frac: (0.22, 0.38),
                cool_frac: (0.12, 0.28),
                burst_hours: (4.0, 12.0),
                top_rate: (0.3, 2.0),
                diurnal_amp: (0.1, 0.3),
                cores: (0.5, 3.0),
                lifetime_hours: (6.0, 24.0 * 7.0),
                priority: JobPriority::BestEffort,
                mix_bias: Some((PageClass::Text, 3.0)),
            },
        }
    }

    /// Samples a concrete job profile from this template.
    pub fn sample_profile<R: Rng + ?Sized>(self, rng: &mut R) -> JobProfile {
        let p = self.params();
        let pages = rng.gen_range(p.pages.0..=p.pages.1);
        let warm_frac = rng.gen_range(p.warm_frac.0..=p.warm_frac.1);
        let cool_frac = rng.gen_range(p.cool_frac.0..=p.cool_frac.1);
        let frozen_frac = rng.gen_range(p.frozen_frac.0..=p.frozen_frac.1);
        let top_rate = rng.gen_range(p.top_rate.0..=p.top_rate.1);
        let rate_buckets = band_rate_buckets(pages, warm_frac, cool_frac, frozen_frac, top_rate);
        let amplitude = rng.gen_range(p.diurnal_amp.0..=p.diurnal_amp.1);
        // Peak load clusters in the regional evening: fleet-level traffic
        // is diurnally correlated, not phase-uniform (that's what makes
        // Figure 2's "time of day" variation and §6.4's swing visible at
        // aggregate level).
        let diurnal = DiurnalPattern {
            amplitude,
            phase_secs: rng.gen_range(57_600..72_000),
        };
        let mix = match p.mix_bias {
            Some((class, factor)) => {
                let weights = CompressibilityMix::fleet_default()
                    .entries()
                    .iter()
                    .map(|&(c, w)| (c, if c == class { w * factor } else { w }))
                    .collect();
                // sdfm-lint: allow(P1) reason="scaling strictly positive weights by a positive factor keeps the mix valid"
                CompressibilityMix::new(weights).expect("scaled weights stay valid")
            }
            None => CompressibilityMix::fleet_default(),
        };
        let lifetime_hours = rng.gen_range(p.lifetime_hours.0..=p.lifetime_hours.1);
        JobProfile {
            template: self.to_string(),
            rate_buckets,
            diurnal,
            mix,
            cpu_cores: rng.gen_range(p.cores.0..=p.cores.1),
            write_fraction: rng.gen_range(0.05..0.35),
            burst_interval: Some(SimDuration::from_secs(
                (rng.gen_range(p.burst_hours.0..=p.burst_hours.1) * 3600.0) as u64,
            )),
            priority: p.priority,
            lifetime: SimDuration::from_secs((lifetime_hours * 3600.0) as u64),
        }
    }
}

impl fmt::Display for JobTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            JobTemplate::WebFrontend => "web-frontend",
            JobTemplate::Bigtable => "bigtable",
            JobTemplate::MlTraining => "ml-training",
            JobTemplate::BatchAnalytics => "batch-analytics",
            JobTemplate::KeyValueCache => "kv-cache",
            JobTemplate::VideoServer => "video-server",
            JobTemplate::LogProcessor => "log-processor",
        };
        write!(f, "{name}")
    }
}

struct TemplateParams {
    pages: (u64, u64),
    warm_frac: (f64, f64),
    cool_frac: (f64, f64),
    frozen_frac: (f64, f64),
    burst_hours: (f64, f64),
    top_rate: (f64, f64),
    diurnal_amp: (f64, f64),
    cores: (f64, f64),
    lifetime_hours: (f64, f64),
    priority: JobPriority,
    mix_bias: Option<(PageClass, f64)>,
}

/// Splits `pages` into four popularity bands:
///
/// * a **hot** band (rates geometric from `top_rate` down to
///   [`HOT_FLOOR`]) — the working set;
/// * a **warm** band (idle ~1.5 min–1 h) — its accesses are the would-be
///   promotions that keep the controller's threshold honest; most of it
///   must stay in DRAM under the SLO;
/// * a **cool** band (idle 1–8 h) — safely compressible, the bulk of
///   realized coverage;
/// * a small **frozen** band ([`FROZEN_RATE`]) — archival data.
///
/// Weighting cold mass toward the shorter idle times reproduces the
/// paper's steeply decaying cold-age distribution (Figure 1), which is
/// what makes the threshold choice — and therefore `K`/`S` tuning —
/// consequential.
fn band_rate_buckets(
    pages: u64,
    warm_frac: f64,
    cool_frac: f64,
    frozen_frac: f64,
    top_rate: f64,
) -> Vec<RateBucket> {
    if pages == 0 {
        return Vec::new();
    }
    let warm = (pages as f64 * warm_frac) as u64;
    let cool = (pages as f64 * cool_frac) as u64;
    let frozen = (pages as f64 * frozen_frac) as u64;
    let hot = pages - warm - cool - frozen;
    let mut buckets = Vec::with_capacity(HOT_BUCKETS + WARM_BUCKETS + COOL_BUCKETS + 1);
    push_geometric_band(
        &mut buckets,
        hot,
        top_rate.max(HOT_FLOOR),
        HOT_FLOOR,
        HOT_BUCKETS,
    );
    push_geometric_band(&mut buckets, warm, WARM_FAST, WARM_SLOW, WARM_BUCKETS);
    push_geometric_band(&mut buckets, cool, COOL_FAST, COOL_SLOW, COOL_BUCKETS);
    if frozen > 0 {
        buckets.push(RateBucket {
            pages: frozen,
            rate_per_sec: FROZEN_RATE,
        });
    }
    buckets
}

/// Distributes `count` pages evenly over `n` buckets whose rates step
/// geometrically from `fast` down to `slow`.
fn push_geometric_band(buckets: &mut Vec<RateBucket>, count: u64, fast: f64, slow: f64, n: usize) {
    if count == 0 {
        return;
    }
    let per = count / n as u64;
    let mut assigned = 0u64;
    for b in 0..n {
        let pages = if b == n - 1 { count - assigned } else { per };
        assigned += pages;
        if pages == 0 {
            continue;
        }
        // Geometric interpolation of the rate at the bucket midpoint.
        let t = (b as f64 + 0.5) / n as f64;
        let rate = fast * (slow / fast).powf(t);
        buckets.push(RateBucket {
            pages,
            rate_per_sec: rate,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn band_buckets_conserve_pages_and_decrease_in_rate() {
        let buckets = band_rate_buckets(10_000, 0.2, 0.15, 0.05, 2.0);
        let total: u64 = buckets.iter().map(|b| b.pages).sum();
        assert_eq!(total, 10_000);
        for w in buckets.windows(2) {
            assert!(
                w[1].rate_per_sec <= w[0].rate_per_sec,
                "rates must fall across bands"
            );
        }
        assert!(buckets[0].rate_per_sec <= 2.0 + 1e-9);
        assert_eq!(
            buckets.last().unwrap().rate_per_sec,
            FROZEN_RATE,
            "frozen band last"
        );
    }

    #[test]
    fn band_buckets_handle_tiny_jobs() {
        assert!(band_rate_buckets(0, 0.2, 0.2, 0.1, 1.0).is_empty());
        for n in [1u64, 5, 23] {
            let b = band_rate_buckets(n, 0.3, 0.2, 0.1, 1.0);
            assert_eq!(b.iter().map(|x| x.pages).sum::<u64>(), n, "n={n}");
        }
    }

    #[test]
    fn band_cold_fraction_is_predictable() {
        // warm 20% + cool 10% + frozen 5%: cold at 120 s should be
        // roughly 0.75×warm + cool + frozen.
        let buckets = band_rate_buckets(100_000, 0.20, 0.10, 0.05, 2.0);
        let cold: f64 = buckets
            .iter()
            .map(|b| b.pages as f64 * (-b.rate_per_sec * 120.0).exp())
            .sum::<f64>()
            / 100_000.0;
        assert!(
            (0.24..=0.36).contains(&cold),
            "cold fraction {cold} not ≈ 0.75*warm + cool + frozen"
        );
    }

    #[test]
    fn cold_age_distribution_decays_steeply() {
        // The paper's Figure 1: cold memory at 8 h is a small fraction of
        // cold memory at 120 s — most cold memory is only minutes-to-hours
        // idle. This steep decay is what makes threshold tuning matter.
        let buckets = band_rate_buckets(100_000, 0.20, 0.10, 0.03, 2.0);
        let cold_at = |secs: f64| -> f64 {
            buckets
                .iter()
                .map(|b| b.pages as f64 * (-b.rate_per_sec * secs).exp())
                .sum()
        };
        let c120 = cold_at(120.0);
        let c8h = cold_at(28_800.0);
        assert!(
            c8h / c120 < 0.45,
            "cold(8h)/cold(120s) = {:.2} — distribution too flat",
            c8h / c120
        );
        assert!(c8h / c120 > 0.05, "frozen core vanished");
    }

    #[test]
    fn all_templates_sample_valid_profiles() {
        let mut rng = StdRng::seed_from_u64(1);
        for t in JobTemplate::ALL {
            for _ in 0..10 {
                let p = t.sample_profile(&mut rng);
                p.validate()
                    .unwrap_or_else(|e| panic!("{t}: invalid profile: {e}"));
                assert_eq!(p.template, t.to_string());
            }
        }
    }

    #[test]
    fn template_cold_fractions_span_the_papers_range() {
        // Figure 3: per-job cold fraction at T=120 s spans <9% (bottom
        // decile) to >43% (top decile). Check template families order
        // correctly and cover the span.
        let mut rng = StdRng::seed_from_u64(7);
        let mean_cold = |t: JobTemplate, rng: &mut StdRng| -> f64 {
            let mut acc = 0.0;
            for _ in 0..30 {
                let p = t.sample_profile(rng);
                acc += p.expected_cold_fraction(120.0, 1.0);
            }
            acc / 30.0
        };
        let web = mean_cold(JobTemplate::WebFrontend, &mut rng);
        let log = mean_cold(JobTemplate::LogProcessor, &mut rng);
        let batch = mean_cold(JobTemplate::BatchAnalytics, &mut rng);
        assert!(web < 0.25, "web frontends too cold: {web}");
        assert!(log > 0.45, "log processors too hot: {log}");
        assert!(
            batch > web && batch < log,
            "ordering violated: {web} {batch} {log}"
        );
    }

    #[test]
    fn fleet_weights_sum_to_one() {
        let sum: f64 = JobTemplate::ALL.iter().map(|t| t.fleet_weight()).sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
    }

    #[test]
    fn video_server_mix_is_heavily_incompressible() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = JobTemplate::VideoServer.sample_profile(&mut rng);
        assert!(
            p.mix.incompressible_fraction() > 0.4,
            "video mix only {} incompressible",
            p.mix.incompressible_fraction()
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = JobTemplate::Bigtable.sample_profile(&mut StdRng::seed_from_u64(5));
        let b = JobTemplate::Bigtable.sample_profile(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
