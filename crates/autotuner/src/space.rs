//! The parameter search space: named continuous ranges with
//! normalization into the unit cube.

use rand::Rng;
use serde::{Deserialize, Serialize};

use sdfm_types::error::SdfmError;

/// One parameter's range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamRange {
    /// Parameter name (reporting only).
    pub name: String,
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl ParamRange {
    /// Creates a validated range.
    ///
    /// # Errors
    ///
    /// [`SdfmError::InvalidParameter`] unless `lo < hi` and both finite.
    pub fn new(name: impl Into<String>, lo: f64, hi: f64) -> Result<Self, SdfmError> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(SdfmError::invalid_parameter(format!(
                "range [{lo}, {hi}] must be finite and increasing"
            )));
        }
        Ok(ParamRange {
            name: name.into(),
            lo,
            hi,
        })
    }

    /// Maps a raw value into `[0, 1]` (clamping).
    pub fn normalize(&self, v: f64) -> f64 {
        ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }

    /// Maps a unit value back into the range.
    pub fn denormalize(&self, u: f64) -> f64 {
        self.lo + u.clamp(0.0, 1.0) * (self.hi - self.lo)
    }
}

/// A multi-dimensional search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    dims: Vec<ParamRange>,
}

impl SearchSpace {
    /// Creates a space.
    ///
    /// # Errors
    ///
    /// [`SdfmError::EmptyInput`] when no dimensions are given.
    pub fn new(dims: Vec<ParamRange>) -> Result<Self, SdfmError> {
        if dims.is_empty() {
            return Err(SdfmError::empty_input("search space needs dimensions"));
        }
        Ok(SearchSpace { dims })
    }

    /// The control plane's production space: `K ∈ [50, 100]` (percentile)
    /// and `S ∈ [0, 7200]` seconds of warmup.
    pub fn agent_params() -> Self {
        SearchSpace {
            dims: vec![
                ParamRange {
                    name: "k_percentile".into(),
                    lo: 50.0,
                    hi: 100.0,
                },
                ParamRange {
                    name: "s_warmup_secs".into(),
                    lo: 0.0,
                    hi: 7_200.0,
                },
            ],
        }
    }

    /// [`agent_params`](Self::agent_params) extended with the prefetcher
    /// aggressiveness knob: `prefetch_aggressiveness_permille ∈ [0, 1000]`
    /// (0 never issues, 1000 drains a full queue per scan). Keeping the
    /// two-dimensional space as the default preserves every existing
    /// tuner trajectory; prefetch-aware searches opt into this third
    /// dimension explicitly.
    pub fn agent_params_with_prefetch() -> Self {
        let mut s = Self::agent_params();
        s.dims.push(ParamRange {
            name: "prefetch_aggressiveness_permille".into(),
            lo: 0.0,
            hi: 1000.0,
        });
        s
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// The ranges.
    pub fn ranges(&self) -> &[ParamRange] {
        &self.dims
    }

    /// Normalizes a point into the unit cube.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn normalize(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.dims(), "dimension mismatch");
        point
            .iter()
            .zip(&self.dims)
            .map(|(v, r)| r.normalize(*v))
            .collect()
    }

    /// Denormalizes a unit-cube point.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn denormalize(&self, unit: &[f64]) -> Vec<f64> {
        assert_eq!(unit.len(), self.dims(), "dimension mismatch");
        unit.iter()
            .zip(&self.dims)
            .map(|(u, r)| r.denormalize(*u))
            .collect()
    }

    /// Samples a uniform random point (raw units).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.dims
            .iter()
            .map(|r| rng.gen_range(r.lo..=r.hi))
            .collect()
    }

    /// A full-factorial grid with `per_dim` points per dimension
    /// (endpoints included), in raw units.
    ///
    /// # Panics
    ///
    /// Panics when `per_dim < 2`.
    pub fn grid(&self, per_dim: usize) -> Vec<Vec<f64>> {
        assert!(per_dim >= 2, "grid needs at least the endpoints");
        let mut points: Vec<Vec<f64>> = vec![vec![]];
        for r in &self.dims {
            let mut next = Vec::with_capacity(points.len() * per_dim);
            for p in &points {
                for i in 0..per_dim {
                    let u = i as f64 / (per_dim - 1) as f64;
                    let mut q = p.clone();
                    q.push(r.denormalize(u));
                    next.push(q);
                }
            }
            points = next;
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalize_roundtrip() {
        let r = ParamRange::new("x", 10.0, 20.0).unwrap();
        assert_eq!(r.normalize(15.0), 0.5);
        assert_eq!(r.denormalize(0.5), 15.0);
        assert_eq!(r.normalize(5.0), 0.0, "clamps below");
        assert_eq!(r.normalize(25.0), 1.0, "clamps above");
    }

    #[test]
    fn validation() {
        assert!(ParamRange::new("x", 1.0, 1.0).is_err());
        assert!(ParamRange::new("x", 2.0, 1.0).is_err());
        assert!(ParamRange::new("x", f64::NAN, 1.0).is_err());
        assert!(SearchSpace::new(vec![]).is_err());
    }

    #[test]
    fn agent_space_matches_paper_knobs() {
        let s = SearchSpace::agent_params();
        assert_eq!(s.dims(), 2);
        assert_eq!(s.ranges()[0].name, "k_percentile");
        assert_eq!(s.ranges()[1].hi, 7_200.0);
    }

    #[test]
    fn prefetch_space_extends_the_agent_knobs() {
        let s = SearchSpace::agent_params_with_prefetch();
        assert_eq!(s.dims(), 3);
        // The first two dimensions are exactly the production space, so a
        // prefetch-aware tuner degenerates to the K/S search when the
        // third coordinate is ignored.
        assert_eq!(s.ranges()[..2], SearchSpace::agent_params().dims[..]);
        let pf = &s.ranges()[2];
        assert_eq!(pf.name, "prefetch_aggressiveness_permille");
        assert_eq!((pf.lo, pf.hi), (0.0, 1000.0));
        assert_eq!(pf.denormalize(0.5), 500.0);
        // The base space stays two-dimensional: existing tuner
        // trajectories are untouched.
        assert_eq!(SearchSpace::agent_params().dims(), 2);
    }

    #[test]
    fn space_normalization() {
        let s = SearchSpace::agent_params();
        let p = vec![75.0, 3_600.0];
        let u = s.normalize(&p);
        assert_eq!(u, vec![0.5, 0.5]);
        assert_eq!(s.denormalize(&u), p);
    }

    #[test]
    fn sampling_stays_in_bounds() {
        let s = SearchSpace::agent_params();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = s.sample(&mut rng);
            assert!((50.0..=100.0).contains(&p[0]));
            assert!((0.0..=7_200.0).contains(&p[1]));
        }
    }

    #[test]
    fn grid_is_full_factorial() {
        let s = SearchSpace::agent_params();
        let g = s.grid(3);
        assert_eq!(g.len(), 9);
        assert!(g.contains(&vec![50.0, 0.0]));
        assert!(g.contains(&vec![100.0, 7_200.0]));
        assert!(g.contains(&vec![75.0, 3_600.0]));
    }
}
