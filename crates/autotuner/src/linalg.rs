//! Minimal dense linear algebra: just enough for Gaussian-process
//! regression (symmetric positive-definite solves via Cholesky).

// Triangular solves and factorization read clearer with explicit indices.
#![allow(clippy::needless_range_loop)]

use std::fmt;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter().zip(v).map(|(a, b)| a * b).sum()
            })
            .collect()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:10.4} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

/// The matrix was not positive definite even after jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite;

impl fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix. `jitter` is added to
    /// the diagonal (standard GP practice to absorb numerical
    /// near-singularity).
    ///
    /// # Errors
    ///
    /// [`NotPositiveDefinite`] when a pivot is non-positive.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix, jitter: f64) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "cholesky needs a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The factor dimension.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `L x = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut x = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l.get(i, k) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Solves `Lᵀ x = b` (back substitution).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn solve_upper(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = b[i];
            for k in i + 1..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
        }
        x
    }

    /// Solves `A x = b` via the factorization.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for B random-ish: guaranteed SPD.
        Matrix::from_fn(3, 3, |i, j| {
            let b = [[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]];
            b[i][j]
        })
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let a = spd3();
        let ch = Cholesky::factor(&a, 0.0).unwrap();
        // L Lᵀ == A.
        for i in 0..3 {
            for j in 0..3 {
                let mut v = 0.0;
                for k in 0..3 {
                    v += ch.l.get(i, k) * ch.l.get(j, k);
                }
                assert!((v - a.get(i, j)).abs() < 1e-12, "({i},{j}): {v}");
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let ch = Cholesky::factor(&a, 0.0).unwrap();
        let x = ch.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn non_spd_is_rejected() {
        let a = Matrix::from_fn(2, 2, |i, j| if i == j { -1.0 } else { 0.0 });
        let r = Cholesky::factor(&a, 0.0);
        assert!(matches!(r, Err(NotPositiveDefinite)));
        assert_eq!(
            NotPositiveDefinite.to_string(),
            "matrix is not positive definite"
        );
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-1 matrix: singular without jitter.
        let a = Matrix::from_fn(2, 2, |_, _| 1.0);
        assert!(Cholesky::factor(&a, 0.0).is_err());
        assert!(Cholesky::factor(&a, 1e-6).is_ok());
    }

    #[test]
    fn triangular_solves() {
        let a = spd3();
        let ch = Cholesky::factor(&a, 0.0).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let y = ch.solve_lower(&b);
        // L y == b.
        for i in 0..3 {
            let mut v = 0.0;
            for k in 0..=i {
                v += ch.l.get(i, k) * y[k];
            }
            assert!((v - b[i]).abs() < 1e-12);
        }
        let z = ch.solve_upper(&b);
        for i in 0..3 {
            let mut v = 0.0;
            for k in i..3 {
                v += ch.l.get(k, i) * z[k];
            }
            assert!((v - b[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_and_dot() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_checks_dims() {
        let m = Matrix::zeros(2, 2);
        let _ = m.matvec(&[1.0]);
    }
}
