//! Gaussian-process regression with a fixed RBF kernel.
//!
//! Standard exact GP: given observations `(X, y)`, the posterior at `x*` is
//! `μ(x*) = k*ᵀ (K + σₙ²I)⁻¹ y` and
//! `σ²(x*) = k(x*,x*) − k*ᵀ (K + σₙ²I)⁻¹ k*`, computed via Cholesky.
//! Targets are standardized internally so the unit-variance kernel prior is
//! reasonable regardless of the objective's scale.

use crate::kernel::RbfKernel;
use crate::linalg::{dot, Cholesky, Matrix, NotPositiveDefinite};

/// A fitted Gaussian process.
#[derive(Debug)]
pub struct GaussianProcess {
    kernel: RbfKernel,
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Cholesky,
    y_mean: f64,
    y_std: f64,
}

impl GaussianProcess {
    /// Fits a GP to `(x, y)` with observation noise `noise` (variance on
    /// standardized targets).
    ///
    /// # Errors
    ///
    /// [`NotPositiveDefinite`] if the kernel matrix cannot be factored
    /// (e.g. many duplicate points with zero noise).
    ///
    /// # Panics
    ///
    /// Panics when `x` is empty or `x.len() != y.len()`.
    pub fn fit(
        kernel: RbfKernel,
        x: Vec<Vec<f64>>,
        y: &[f64],
        noise: f64,
    ) -> Result<Self, NotPositiveDefinite> {
        assert!(!x.is_empty(), "gp needs at least one observation");
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let n = x.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
        let y_std = var.sqrt().max(1e-9);
        let y_standardized: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let k = Matrix::from_fn(n, n, |i, j| {
            kernel.eval(&x[i], &x[j]) + if i == j { noise } else { 0.0 }
        });
        let chol = Cholesky::factor(&k, 1e-8)?;
        let alpha = chol.solve(&y_standardized);
        Ok(GaussianProcess {
            kernel,
            x,
            alpha,
            chol,
            y_mean,
            y_std,
        })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Always false — fitting requires at least one observation.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Posterior mean and standard deviation at `x` (in original target
    /// units).
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self.x.iter().map(|xi| self.kernel.eval(xi, x)).collect();
        let mean_std = dot(&kstar, &self.alpha);
        let v = self.chol.solve_lower(&kstar);
        let var_std = (self.kernel.eval(x, x) - dot(&v, &v)).max(0.0);
        (
            mean_std * self.y_std + self.y_mean,
            var_std.sqrt() * self.y_std,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit_1d(points: &[(f64, f64)], noise: f64) -> GaussianProcess {
        let x: Vec<Vec<f64>> = points.iter().map(|&(x, _)| vec![x]).collect();
        let y: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
        GaussianProcess::fit(RbfKernel::default_for(1), x, &y, noise).unwrap()
    }

    #[test]
    fn interpolates_observations_with_low_noise() {
        let gp = fit_1d(&[(0.0, 1.0), (0.5, 3.0), (1.0, 2.0)], 1e-6);
        for &(x, y) in &[(0.0, 1.0), (0.5, 3.0), (1.0, 2.0)] {
            let (m, s) = gp.predict(&[x]);
            assert!((m - y).abs() < 0.05, "at {x}: {m} vs {y}");
            assert!(s < 0.1, "uncertainty at data point: {s}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let gp = fit_1d(&[(0.2, 1.0), (0.3, 1.2)], 1e-6);
        let (_, s_near) = gp.predict(&[0.25]);
        let (_, s_far) = gp.predict(&[0.9]);
        assert!(s_far > s_near * 2.0, "near {s_near}, far {s_far}");
    }

    #[test]
    fn prior_mean_far_from_data_reverts_to_sample_mean() {
        let gp = fit_1d(&[(0.0, 10.0), (0.1, 12.0)], 1e-6);
        // Multiple lengthscales away, the posterior reverts toward the
        // standardized prior mean (the sample mean, 11).
        let (m, _) = gp.predict(&[5.0]);
        assert!((m - 11.0).abs() < 1.0, "far-field mean {m}");
    }

    #[test]
    fn noise_smooths_fits() {
        let noisy_points = [(0.0, 0.0), (0.001, 1.0)];
        let rough = fit_1d(&noisy_points, 1e-6);
        let smooth = fit_1d(&noisy_points, 1.0);
        let (m_rough, _) = rough.predict(&[0.0]);
        let (m_smooth, _) = smooth.predict(&[0.0]);
        // The smooth fit pulls toward the mean 0.5.
        assert!((m_smooth - 0.5).abs() < (m_rough - 0.5).abs());
    }

    #[test]
    fn recovers_smooth_function_shape() {
        // Fit y = sin(2πx) on a grid, check ranking of predictions.
        let pts: Vec<(f64, f64)> = (0..=10)
            .map(|i| {
                let x = i as f64 / 10.0;
                (x, (std::f64::consts::TAU * x).sin())
            })
            .collect();
        let gp = fit_1d(&pts, 1e-6);
        let (peak, _) = gp.predict(&[0.25]);
        let (trough, _) = gp.predict(&[0.75]);
        assert!(peak > 0.8 && trough < -0.8, "peak {peak} trough {trough}");
    }

    #[test]
    fn multidimensional_fit() {
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ];
        let y = [0.0, 1.0, 1.0, 2.0]; // x + y
        let gp = GaussianProcess::fit(RbfKernel::default_for(2), x, &y, 1e-6).unwrap();
        let (m, _) = gp.predict(&[0.5, 0.5]);
        assert!((m - 1.0).abs() < 0.3, "center {m}");
        assert_eq!(gp.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_fit_panics() {
        let _ = GaussianProcess::fit(RbfKernel::default_for(1), vec![], &[], 1e-6);
    }
}
