//! Acquisition functions: how the bandit chooses the next trial.
//!
//! GP-UCB (`μ + β·σ`) drives exploration/exploitation (the paper's GP
//! Bandit follows Srinivas et al.); expected improvement is provided as an
//! alternative; and a probability-of-feasibility factor folds in the SLO
//! constraint (the p98 promotion rate must stay under target).

/// The standard normal CDF via a rational erf approximation
/// (Abramowitz & Stegun 7.1.26; max abs error ≈ 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// The standard normal PDF.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Upper confidence bound for maximization: `μ + β·σ`.
pub fn ucb(mean: f64, sd: f64, beta: f64) -> f64 {
    mean + beta * sd
}

/// Expected improvement over the incumbent `best` (maximization).
pub fn expected_improvement(mean: f64, sd: f64, best: f64) -> f64 {
    if sd <= 0.0 {
        return (mean - best).max(0.0);
    }
    let z = (mean - best) / sd;
    (mean - best) * normal_cdf(z) + sd * normal_pdf(z)
}

/// Probability that a constraint with posterior `(mean, sd)` lies at or
/// below `limit`.
pub fn probability_feasible(mean: f64, sd: f64, limit: f64) -> f64 {
    if sd <= 0.0 {
        return if mean <= limit { 1.0 } else { 0.0 };
    }
    normal_cdf((limit - mean) / sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let v = normal_cdf(i as f64 / 10.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn ucb_trades_off_mean_and_uncertainty() {
        assert_eq!(ucb(1.0, 0.5, 2.0), 2.0);
        assert!(ucb(1.0, 1.0, 2.0) > ucb(1.5, 0.1, 2.0));
    }

    #[test]
    fn expected_improvement_properties() {
        // No uncertainty, below incumbent: zero.
        assert_eq!(expected_improvement(1.0, 0.0, 2.0), 0.0);
        // No uncertainty, above incumbent: the gap.
        assert_eq!(expected_improvement(3.0, 0.0, 2.0), 1.0);
        // Uncertainty adds value even below the incumbent.
        assert!(expected_improvement(1.0, 1.0, 2.0) > 0.0);
        // EI grows with sd at fixed mean.
        assert!(expected_improvement(1.0, 2.0, 2.0) > expected_improvement(1.0, 0.5, 2.0));
    }

    #[test]
    fn feasibility_probability() {
        assert_eq!(probability_feasible(0.1, 0.0, 0.2), 1.0);
        assert_eq!(probability_feasible(0.3, 0.0, 0.2), 0.0);
        assert!((probability_feasible(0.2, 0.1, 0.2) - 0.5).abs() < 1e-7);
        assert!(probability_feasible(0.0, 0.1, 0.2) > 0.97);
    }
}
