//! Covariance kernels for Gaussian-process regression.

use serde::{Deserialize, Serialize};

/// The squared-exponential (RBF) kernel over normalized inputs:
/// `k(x, x') = σ² · exp(−½ Σᵢ ((xᵢ − x'ᵢ) / ℓᵢ)²)`.
///
/// Inputs are expected in `[0, 1]` per dimension (the
/// [`SearchSpace`](crate::space::SearchSpace) normalizes), so a default
/// lengthscale of 0.25 means "a quarter of the range is one correlation
/// length".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RbfKernel {
    /// Signal variance σ².
    pub variance: f64,
    /// Per-dimension lengthscales ℓ.
    pub lengthscales: Vec<f64>,
}

impl RbfKernel {
    /// An isotropic kernel for `dims` dimensions.
    ///
    /// # Panics
    ///
    /// Panics unless `variance > 0` and `lengthscale > 0`.
    pub fn isotropic(dims: usize, lengthscale: f64, variance: f64) -> Self {
        assert!(variance > 0.0, "variance must be positive");
        assert!(lengthscale > 0.0, "lengthscale must be positive");
        RbfKernel {
            variance,
            lengthscales: vec![lengthscale; dims],
        }
    }

    /// The default kernel for a `dims`-dimensional normalized space.
    pub fn default_for(dims: usize) -> Self {
        Self::isotropic(dims, 0.25, 1.0)
    }

    /// Evaluates `k(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), self.lengthscales.len(), "dimension mismatch");
        assert_eq!(b.len(), self.lengthscales.len(), "dimension mismatch");
        let z: f64 = a
            .iter()
            .zip(b)
            .zip(&self.lengthscales)
            .map(|((x, y), l)| {
                let d = (x - y) / l;
                d * d
            })
            .sum();
        self.variance * (-0.5 * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_is_max_at_zero_distance() {
        let k = RbfKernel::default_for(2);
        let x = [0.3, 0.7];
        assert!((k.eval(&x, &x) - 1.0).abs() < 1e-12);
        assert!(k.eval(&x, &[0.4, 0.7]) < 1.0);
    }

    #[test]
    fn kernel_decays_monotonically_with_distance() {
        let k = RbfKernel::default_for(1);
        let mut prev = f64::INFINITY;
        for i in 0..10 {
            let v = k.eval(&[0.0], &[i as f64 / 10.0]);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn lengthscale_controls_decay() {
        let tight = RbfKernel::isotropic(1, 0.05, 1.0);
        let loose = RbfKernel::isotropic(1, 0.5, 1.0);
        let a = [0.0];
        let b = [0.2];
        assert!(tight.eval(&a, &b) < loose.eval(&a, &b));
    }

    #[test]
    fn kernel_is_symmetric() {
        let k = RbfKernel::isotropic(3, 0.3, 2.0);
        let a = [0.1, 0.5, 0.9];
        let b = [0.8, 0.2, 0.4];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
        assert!((k.eval(&a, &a) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengthscale must be positive")]
    fn rejects_zero_lengthscale() {
        let _ = RbfKernel::isotropic(1, 0.0, 1.0);
    }
}
