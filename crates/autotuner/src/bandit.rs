//! The GP Bandit suggest/observe loop with an SLO constraint.
//!
//! Each iteration: fit one GP to the objective observations and one to the
//! constraint observations, score a pool of random candidates with
//! `UCB(objective) × P(constraint ≤ limit)`, and suggest the best. The
//! first few suggestions are space-filling random seeds.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::acquisition::{probability_feasible, ucb};
use crate::gp::GaussianProcess;
use crate::kernel::RbfKernel;
use crate::space::SearchSpace;

/// One completed trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The evaluated point (raw units).
    pub point: Vec<f64>,
    /// Objective value (maximized).
    pub objective: f64,
    /// Constraint value (must stay ≤ the configured limit).
    pub constraint: f64,
}

/// Bandit configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BanditConfig {
    /// Purely random space-filling trials before the GP takes over.
    pub seed_trials: usize,
    /// Candidate pool size scored per suggestion.
    pub candidates: usize,
    /// UCB exploration weight β.
    pub beta: f64,
    /// Observation-noise variance on standardized targets.
    pub noise: f64,
    /// Constraint limit (feasible ⇔ `constraint ≤ limit`).
    pub constraint_limit: f64,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            seed_trials: 5,
            candidates: 256,
            beta: 2.0,
            noise: 1e-4,
            constraint_limit: 0.0,
        }
    }
}

impl BanditConfig {
    /// Config with an explicit constraint limit.
    pub fn with_constraint_limit(mut self, limit: f64) -> Self {
        self.constraint_limit = limit;
        self
    }
}

/// The optimizer.
#[derive(Debug)]
pub struct GpBandit {
    space: SearchSpace,
    config: BanditConfig,
    observations: Vec<Observation>,
    rng: StdRng,
}

impl GpBandit {
    /// Creates a bandit over `space`.
    pub fn new(space: SearchSpace, config: BanditConfig, seed: u64) -> Self {
        GpBandit {
            space,
            config,
            observations: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// Completed trials.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Suggests the next point to evaluate (raw units).
    pub fn suggest(&mut self) -> Vec<f64> {
        if self.observations.len() < self.config.seed_trials {
            return self.space.sample(&mut self.rng);
        }
        let x: Vec<Vec<f64>> = self
            .observations
            .iter()
            .map(|o| self.space.normalize(&o.point))
            .collect();
        let y_obj: Vec<f64> = self.observations.iter().map(|o| o.objective).collect();
        let y_con: Vec<f64> = self.observations.iter().map(|o| o.constraint).collect();
        let kernel = RbfKernel::default_for(self.space.dims());
        let obj_gp = GaussianProcess::fit(kernel.clone(), x.clone(), &y_obj, self.config.noise);
        let con_gp = GaussianProcess::fit(kernel, x, &y_con, self.config.noise);
        let (Ok(obj_gp), Ok(con_gp)) = (obj_gp, con_gp) else {
            // Degenerate geometry (duplicate points): fall back to random.
            return self.space.sample(&mut self.rng);
        };

        let mut best_point = None;
        let mut best_score = f64::NEG_INFINITY;
        for _ in 0..self.config.candidates {
            let raw = self.space.sample(&mut self.rng);
            let unit = self.space.normalize(&raw);
            let (mo, so) = obj_gp.predict(&unit);
            let (mc, sc) = con_gp.predict(&unit);
            let score = ucb(mo, so, self.config.beta)
                * probability_feasible(mc, sc, self.config.constraint_limit).max(1e-9);
            if score > best_score {
                best_score = score;
                best_point = Some(raw);
            }
        }
        best_point.expect("candidate pool is non-empty")
    }

    /// Records a completed trial.
    pub fn observe(&mut self, point: Vec<f64>, objective: f64, constraint: f64) {
        assert_eq!(point.len(), self.space.dims(), "dimension mismatch");
        self.observations.push(Observation {
            point,
            objective,
            constraint,
        });
    }

    /// The best feasible observation so far.
    pub fn best_feasible(&self) -> Option<&Observation> {
        self.observations
            .iter()
            .filter(|o| o.constraint <= self.config.constraint_limit)
            .max_by(|a, b| {
                a.objective
                    .partial_cmp(&b.objective)
                    .expect("objectives are not NaN")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ParamRange;
    use rand::Rng;

    fn space2d() -> SearchSpace {
        SearchSpace::new(vec![
            ParamRange::new("a", 0.0, 1.0).unwrap(),
            ParamRange::new("b", 0.0, 1.0).unwrap(),
        ])
        .unwrap()
    }

    /// Smooth 2-D objective peaking at (0.7, 0.3).
    fn objective(p: &[f64]) -> f64 {
        let dx = p[0] - 0.7;
        let dy = p[1] - 0.3;
        (-8.0 * (dx * dx + dy * dy)).exp()
    }

    #[test]
    fn seed_trials_are_random_then_gp_takes_over() {
        let mut b = GpBandit::new(space2d(), BanditConfig::default(), 1);
        for i in 0..5 {
            let p = b.suggest();
            b.observe(p, i as f64, 0.0);
        }
        assert_eq!(b.observations().len(), 5);
        // After seeds, suggestions still fall inside the space.
        let p = b.suggest();
        assert!((0.0..=1.0).contains(&p[0]) && (0.0..=1.0).contains(&p[1]));
    }

    #[test]
    fn bandit_beats_random_search_on_smooth_objective() {
        let budget = 30;
        let mut bandit = GpBandit::new(space2d(), BanditConfig::default(), 7);
        for _ in 0..budget {
            let p = bandit.suggest();
            let y = objective(&p);
            bandit.observe(p, y, 0.0);
        }
        let bandit_best = bandit.best_feasible().unwrap().objective;

        // Random baseline, averaged over a few seeds to reduce flake.
        let mut random_bests = Vec::new();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let s = space2d();
            let best = (0..budget)
                .map(|_| objective(&s.sample(&mut rng)))
                .fold(f64::NEG_INFINITY, f64::max);
            random_bests.push(best);
        }
        let random_mean = random_bests.iter().sum::<f64>() / random_bests.len() as f64;
        assert!(
            bandit_best >= random_mean,
            "bandit {bandit_best} worse than random mean {random_mean}"
        );
        assert!(
            bandit_best > 0.8,
            "bandit best {bandit_best} too far from peak"
        );
    }

    #[test]
    fn constraint_steers_away_from_infeasible_peak() {
        // Objective peaks at a = 1.0, but the constraint forbids a > 0.5.
        let cfg = BanditConfig::default().with_constraint_limit(0.5);
        let mut b = GpBandit::new(space2d(), cfg, 3);
        for _ in 0..40 {
            let p = b.suggest();
            let obj = p[0]; // maximize a
            let con = p[0]; // constraint: a ≤ 0.5
            b.observe(p, obj, con);
        }
        let best = b.best_feasible().expect("feasible points exist");
        assert!(best.constraint <= 0.5);
        assert!(
            best.objective > 0.30,
            "best feasible {} should approach the boundary",
            best.objective
        );
        // Later suggestions should concentrate near-feasible.
        let late: Vec<&Observation> = b.observations().iter().skip(20).collect();
        let feasible_late = late.iter().filter(|o| o.constraint <= 0.55).count();
        assert!(
            feasible_late * 2 >= late.len(),
            "only {}/{} late trials near-feasible",
            feasible_late,
            late.len()
        );
    }

    #[test]
    fn best_feasible_none_when_all_violate() {
        let cfg = BanditConfig::default().with_constraint_limit(0.0);
        let mut b = GpBandit::new(space2d(), cfg, 5);
        b.observe(vec![0.1, 0.1], 1.0, 5.0);
        assert!(b.best_feasible().is_none());
    }

    #[test]
    fn duplicate_observations_fall_back_gracefully() {
        let mut b = GpBandit::new(
            space2d(),
            BanditConfig {
                noise: 0.0,
                ..Default::default()
            },
            9,
        );
        for _ in 0..8 {
            b.observe(vec![0.5, 0.5], 1.0, 0.0);
        }
        // Must not panic even though the kernel matrix is singular.
        let p = b.suggest();
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn observe_checks_dims() {
        let mut b = GpBandit::new(space2d(), BanditConfig::default(), 1);
        b.observe(vec![0.1], 0.0, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut b = GpBandit::new(space2d(), BanditConfig::default(), seed);
            let mut out = Vec::new();
            for _ in 0..8 {
                let p = b.suggest();
                let y = objective(&p);
                b.observe(p.clone(), y, 0.0);
                out.push(p);
            }
            out
        };
        assert_eq!(run(11), run(11));
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen::<f64>(); // silence unused-import lint paths
        assert_ne!(run(11), run(12));
    }
}
