//! Staged deployment of tuned configurations (§5.3).
//!
//! "The best parameter configuration found by the pipeline is periodically
//! deployed to the entire WSC. The deployment happens in multiple stages
//! from qualification to production with rigorous monitoring at each stage
//! in order to detect bad configurations and roll back if necessary."
//!
//! [`RolloutPipeline`] is that state machine: a candidate advances through
//! qualification → canary → production as healthy observations accumulate,
//! and any unhealthy observation rolls it back to the previous good
//! configuration.

use serde::{Deserialize, Serialize};

/// The deployment stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RolloutStage {
    /// Replay-only validation against the fast model.
    Qualification,
    /// A small slice of production machines.
    Canary,
    /// Fleet-wide.
    Production,
}

impl RolloutStage {
    fn next(self) -> Option<RolloutStage> {
        match self {
            RolloutStage::Qualification => Some(RolloutStage::Canary),
            RolloutStage::Canary => Some(RolloutStage::Production),
            RolloutStage::Production => None,
        }
    }
}

/// The rollout state machine for one parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RolloutPipeline {
    /// The configuration currently serving production.
    production: Vec<f64>,
    /// The candidate in flight, if any.
    candidate: Option<Vec<f64>>,
    stage: RolloutStage,
    healthy_streak: u32,
    /// Healthy observations required to advance a stage.
    required_streak: u32,
    rollbacks: u32,
}

impl RolloutPipeline {
    /// Creates a pipeline with the current production configuration.
    pub fn new(production: Vec<f64>, required_streak: u32) -> Self {
        RolloutPipeline {
            production,
            candidate: None,
            stage: RolloutStage::Qualification,
            healthy_streak: 0,
            required_streak: required_streak.max(1),
            rollbacks: 0,
        }
    }

    /// The configuration production machines should run right now.
    pub fn active(&self) -> &[f64] {
        match (&self.candidate, self.stage) {
            (Some(c), RolloutStage::Production) => c,
            _ => &self.production,
        }
    }

    /// The configuration the current stage is exercising (the candidate
    /// when one is in flight).
    pub fn under_test(&self) -> &[f64] {
        self.candidate.as_deref().unwrap_or(&self.production)
    }

    /// The current stage.
    pub fn stage(&self) -> RolloutStage {
        self.stage
    }

    /// Times a candidate was rolled back.
    pub fn rollbacks(&self) -> u32 {
        self.rollbacks
    }

    /// Whether a candidate is in flight.
    pub fn in_flight(&self) -> bool {
        self.candidate.is_some()
    }

    /// Starts deploying a new candidate (replacing any in flight).
    pub fn propose(&mut self, candidate: Vec<f64>) {
        self.candidate = Some(candidate);
        self.stage = RolloutStage::Qualification;
        self.healthy_streak = 0;
    }

    /// Feeds one monitoring observation for the current stage. Healthy
    /// observations advance; an unhealthy one rolls the candidate back.
    /// Returns the stage after the observation.
    pub fn observe(&mut self, healthy: bool) -> RolloutStage {
        if self.candidate.is_none() {
            return self.stage;
        }
        if !healthy {
            self.candidate = None;
            self.stage = RolloutStage::Qualification;
            self.healthy_streak = 0;
            self.rollbacks += 1;
            return self.stage;
        }
        self.healthy_streak += 1;
        if self.healthy_streak >= self.required_streak {
            match self.stage.next() {
                Some(next) => {
                    self.stage = next;
                    self.healthy_streak = 0;
                }
                None => {
                    // Fully proven in production: promote.
                    // sdfm-lint: allow(P1) reason="healthy_streak only advances while a candidate rollout is in flight"
                    self.production = self.candidate.take().expect("candidate in flight");
                    self.stage = RolloutStage::Qualification;
                    self.healthy_streak = 0;
                }
            }
        }
        self.stage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_candidate_promotes_through_all_stages() {
        let mut p = RolloutPipeline::new(vec![98.0, 1200.0], 2);
        p.propose(vec![90.0, 600.0]);
        assert_eq!(p.stage(), RolloutStage::Qualification);
        assert_eq!(p.active(), &[98.0, 1200.0], "candidate not yet serving");
        // 2 healthy → canary, 2 → production, 2 → promoted.
        for _ in 0..2 {
            p.observe(true);
        }
        assert_eq!(p.stage(), RolloutStage::Canary);
        for _ in 0..2 {
            p.observe(true);
        }
        assert_eq!(p.stage(), RolloutStage::Production);
        assert_eq!(
            p.active(),
            &[90.0, 600.0],
            "candidate serves in production stage"
        );
        for _ in 0..2 {
            p.observe(true);
        }
        assert!(!p.in_flight());
        assert_eq!(p.active(), &[90.0, 600.0], "candidate promoted");
        assert_eq!(p.rollbacks(), 0);
    }

    #[test]
    fn unhealthy_observation_rolls_back() {
        let mut p = RolloutPipeline::new(vec![98.0], 2);
        p.propose(vec![50.0]);
        p.observe(true);
        p.observe(true); // canary
        p.observe(false); // bad canary metrics
        assert!(!p.in_flight());
        assert_eq!(p.active(), &[98.0], "production config restored");
        assert_eq!(p.rollbacks(), 1);
    }

    #[test]
    fn rollback_in_production_stage_restores_old_config() {
        let mut p = RolloutPipeline::new(vec![98.0], 1);
        p.propose(vec![55.0]);
        p.observe(true); // canary
        p.observe(true); // production stage: candidate serving
        assert_eq!(p.active(), &[55.0]);
        p.observe(false);
        assert_eq!(p.active(), &[98.0]);
    }

    #[test]
    fn observations_without_candidate_are_noops() {
        let mut p = RolloutPipeline::new(vec![1.0], 2);
        assert_eq!(p.observe(true), RolloutStage::Qualification);
        assert_eq!(p.observe(false), RolloutStage::Qualification);
        assert_eq!(p.rollbacks(), 0);
        assert_eq!(p.under_test(), &[1.0]);
    }

    #[test]
    fn reproposing_replaces_candidate() {
        let mut p = RolloutPipeline::new(vec![1.0], 3);
        p.propose(vec![2.0]);
        p.observe(true);
        p.propose(vec![3.0]);
        assert_eq!(p.under_test(), &[3.0]);
        assert_eq!(p.stage(), RolloutStage::Qualification);
    }
}
