//! The ML autotuner: Gaussian-Process Bandit optimization of the control
//! plane's parameters (§5.3).
//!
//! Manual tuning of `K` and `S` takes months of risky A/B tests; the paper
//! instead runs GP Bandit (the algorithm behind Google Vizier) against the
//! fast far memory model: a Gaussian process learns the shape of the
//! objective (fleet cold memory) and of the constraint (p98 promotion
//! rate), and an upper-confidence-bound acquisition picks the next
//! configuration to model — converging in tens of trials over a search
//! space with hundreds of valid configurations.
//!
//! Everything here is from scratch: dense Cholesky-based [`linalg`], an
//! RBF-kernel [`GaussianProcess`], UCB and
//! expected-improvement [`acquisition`] functions with a
//! probability-of-feasibility factor for the constraint, and the
//! [`GpBandit`] suggest/observe loop. The
//! [`rollout`] module models the staged deployment (§5.3: qualification →
//! canary → production with rollback).
//!
//! # Examples
//!
//! ```
//! use sdfm_autotuner::prelude::*;
//!
//! // Maximize a 1-D function under a trivially-true constraint.
//! let space = SearchSpace::new(vec![ParamRange::new("x", 0.0, 10.0)?])?;
//! let mut bandit = GpBandit::new(space, BanditConfig::default(), 7);
//! for _ in 0..15 {
//!     let x = bandit.suggest();
//!     let y = -(x[0] - 3.0) * (x[0] - 3.0); // peak at x = 3
//!     bandit.observe(x, y, 0.0);
//! }
//! let best = bandit.best_feasible().unwrap();
//! assert!((best.point[0] - 3.0).abs() < 2.0);
//! # Ok::<(), sdfm_types::error::SdfmError>(())
//! ```

#![warn(missing_docs)]

pub mod acquisition;
pub mod bandit;
pub mod gp;
pub mod kernel;
pub mod linalg;
pub mod rollout;
pub mod space;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::acquisition::{expected_improvement, probability_feasible, ucb};
    pub use crate::bandit::{BanditConfig, GpBandit, Observation};
    pub use crate::gp::GaussianProcess;
    pub use crate::kernel::RbfKernel;
    pub use crate::rollout::{RolloutPipeline, RolloutStage};
    pub use crate::space::{ParamRange, SearchSpace};
}

pub use prelude::*;
