//! Property tests for the GP/linear-algebra layer.

use proptest::prelude::*;
use sdfm_autotuner::acquisition::{normal_cdf, probability_feasible};
use sdfm_autotuner::gp::GaussianProcess;
use sdfm_autotuner::kernel::RbfKernel;
use sdfm_autotuner::linalg::{Cholesky, Matrix};
use sdfm_autotuner::space::{ParamRange, SearchSpace};

/// Builds a random SPD matrix A = BᵀB + εI from a square seed matrix.
fn spd_from(values: &[f64], n: usize) -> Matrix {
    let b = Matrix::from_fn(n, n, |i, j| values[i * n + j]);
    Matrix::from_fn(n, n, |i, j| {
        let mut s = 0.0;
        for k in 0..n {
            s += b.get(k, i) * b.get(k, j);
        }
        s + if i == j { 0.5 } else { 0.0 }
    })
}

proptest! {
    /// Cholesky solve inverts the matrix: ‖A·solve(b) − b‖ is tiny.
    #[test]
    fn cholesky_solve_inverts(
        values in prop::collection::vec(-3f64..3.0, 16),
        b in prop::collection::vec(-10f64..10.0, 4),
    ) {
        let a = spd_from(&values, 4);
        let ch = Cholesky::factor(&a, 0.0).expect("SPD by construction");
        let x = ch.solve(&b);
        let back = a.matvec(&x);
        for (bi, vi) in b.iter().zip(&back) {
            prop_assert!((bi - vi).abs() < 1e-6, "residual {}", (bi - vi).abs());
        }
    }

    /// The RBF kernel matrix over distinct points is positive definite
    /// (with jitter), so GP fitting never fails on clean inputs.
    #[test]
    fn kernel_matrices_factor(points in prop::collection::hash_set(0u32..1_000, 2..12)) {
        let xs: Vec<Vec<f64>> = points.iter().map(|&p| vec![p as f64 / 1_000.0]).collect();
        let kernel = RbfKernel::default_for(1);
        let k = Matrix::from_fn(xs.len(), xs.len(), |i, j| kernel.eval(&xs[i], &xs[j]));
        prop_assert!(Cholesky::factor(&k, 1e-7).is_ok());
    }

    /// GP posterior: the predictive sd at an observed point is ≤ the sd far
    /// from all data, and both are finite and non-negative.
    #[test]
    fn gp_uncertainty_ordering(
        ys in prop::collection::vec(-100f64..100.0, 3..10),
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64 * 0.05]).collect();
        let gp = GaussianProcess::fit(RbfKernel::default_for(1), xs, &ys, 1e-6)
            .expect("distinct points");
        let (_, sd_at_data) = gp.predict(&[0.0]);
        let (_, sd_far) = gp.predict(&[50.0]);
        prop_assert!(sd_at_data.is_finite() && sd_at_data >= 0.0);
        prop_assert!(sd_far >= sd_at_data, "far sd {sd_far} < data sd {sd_at_data}");
    }

    /// The normal CDF is a CDF: bounded, monotone, symmetric around 0.
    #[test]
    fn normal_cdf_properties(z in -6f64..6.0) {
        let c = normal_cdf(z);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(normal_cdf(z + 0.1) >= c);
        prop_assert!((normal_cdf(-z) - (1.0 - c)).abs() < 1e-6);
    }

    /// Feasibility probability is monotone in the limit and antitone in
    /// the constraint mean.
    #[test]
    fn feasibility_monotonicity(mean in -5f64..5.0, sd in 0.01f64..3.0, limit in -5f64..5.0) {
        let p = probability_feasible(mean, sd, limit);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(probability_feasible(mean, sd, limit + 0.5) >= p);
        prop_assert!(probability_feasible(mean + 0.5, sd, limit) <= p);
    }

    /// Search-space normalization round-trips every in-range point.
    #[test]
    fn space_normalization_roundtrip(k in 50f64..=100.0, s in 0f64..=7_200.0) {
        let space = SearchSpace::agent_params();
        let raw = vec![k, s];
        let back = space.denormalize(&space.normalize(&raw));
        prop_assert!((back[0] - k).abs() < 1e-9);
        prop_assert!((back[1] - s).abs() < 1e-6);
    }

    /// Grid points always lie inside their ranges.
    #[test]
    fn grid_stays_in_bounds(lo in -100f64..0.0, width in 1f64..100.0, per_dim in 2usize..6) {
        let space = SearchSpace::new(vec![
            ParamRange::new("x", lo, lo + width).unwrap(),
        ]).unwrap();
        for p in space.grid(per_dim) {
            prop_assert!(p[0] >= lo - 1e-9 && p[0] <= lo + width + 1e-9);
        }
    }
}
