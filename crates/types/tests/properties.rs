//! Property-based tests for the core histogram and statistics invariants.

use proptest::prelude::*;
use sdfm_types::histogram::{ColdAgeHistogram, PageAge, PromotionHistogram};
use sdfm_types::stats::{percentile, Cdf, FiveNumberSummary, Percentile};
use sdfm_types::time::SimDuration;

proptest! {
    /// Suffix sums over a cold-age histogram are monotonically non-increasing
    /// in the threshold: raising the threshold can only shrink cold memory.
    #[test]
    fn cold_histogram_suffix_monotonic(entries in prop::collection::vec((0u8..=255, 0u64..1000), 0..64)) {
        let mut h = ColdAgeHistogram::new();
        for (age, n) in &entries {
            h.record_page(PageAge::from_scans(*age), *n);
        }
        let mut prev = h.pages_colder_than(PageAge::from_scans(0));
        prop_assert_eq!(prev, h.total_pages());
        for t in 1u8..=255 {
            let cur = h.pages_colder_than(PageAge::from_scans(t));
            prop_assert!(cur <= prev, "threshold {} grew cold memory", t);
            prev = cur;
        }
    }

    /// Promotion suffix sums are likewise monotone, and the histogram merge
    /// is exactly bucketwise addition of the query results.
    #[test]
    fn promotion_merge_is_additive(
        a in prop::collection::vec((0u8..=255, 0u64..1000), 0..32),
        b in prop::collection::vec((0u8..=255, 0u64..1000), 0..32),
        t in 0u8..=255,
    ) {
        let mut ha = PromotionHistogram::new();
        for (age, n) in &a {
            ha.record_promotion(PageAge::from_scans(*age), *n);
        }
        let mut hb = PromotionHistogram::new();
        for (age, n) in &b {
            hb.record_promotion(PageAge::from_scans(*age), *n);
        }
        let qa = ha.promotions_colder_than(PageAge::from_scans(t));
        let qb = hb.promotions_colder_than(PageAge::from_scans(t));
        ha.merge(&hb);
        prop_assert_eq!(ha.promotions_colder_than(PageAge::from_scans(t)), qa + qb);
    }

    /// Quantizing a duration to an age never under-reports: the resulting
    /// age always covers at least the requested duration (until saturation).
    #[test]
    fn age_quantization_rounds_up(secs in 0u64..200_000) {
        let d = SimDuration::from_secs(secs);
        let age = PageAge::from_duration(d);
        if !age.is_saturated() {
            prop_assert!(age.as_duration().as_secs() >= secs);
            // ...and is tight: one scan less would under-cover.
            if age.as_scans() > 0 {
                let one_less = PageAge::from_scans(age.as_scans() - 1);
                prop_assert!(one_less.as_duration().as_secs() < secs);
            }
        }
    }

    /// Percentiles are monotone in p and bounded by the sample range.
    #[test]
    fn percentiles_monotone_and_bounded(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = f64::NEG_INFINITY;
        for p in (0..=100).step_by(5) {
            let v = percentile(&xs, Percentile::new(p as f64).unwrap()).unwrap();
            prop_assert!(v >= prev - 1e-9);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            prev = v;
        }
    }

    /// The CDF evaluated at its own percentile values is consistent up to
    /// the interpolation granularity: with linear interpolation between
    /// closest ranks, the fraction of samples at or below the p-quantile
    /// value can fall short of p by at most one sample.
    #[test]
    fn cdf_value_fraction_consistency(xs in prop::collection::vec(0f64..100.0, 1..100), q in 0f64..=100.0) {
        let cdf = Cdf::from_samples(&xs).unwrap();
        let v = cdf.value_at(Percentile::new(q).unwrap());
        let frac = cdf.fraction_at_or_below(v);
        let slack = 1.0 / xs.len() as f64;
        prop_assert!(frac >= q / 100.0 - slack - 1e-9,
            "fraction {} below value at p{}", frac, q);
    }

    /// Five-number summaries are correctly ordered and whiskers stay inside
    /// the data range.
    #[test]
    fn five_number_summary_ordered(xs in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let s = FiveNumberSummary::from_samples(&xs).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-9);
        prop_assert!(s.q1 <= s.median + 1e-9);
        prop_assert!(s.median <= s.q3 + 1e-9);
        prop_assert!(s.q3 <= s.max + 1e-9);
        prop_assert!(s.whisker_lo >= s.min - 1e-9 && s.whisker_hi <= s.max + 1e-9);
        prop_assert_eq!(s.count, xs.len());
    }
}
