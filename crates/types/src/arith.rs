//! Explicit-rounding integer arithmetic for unit-tagged quantities.
//!
//! The control plane is safe only because every quantity is integer
//! arithmetic in fixed units — nanoseconds, per-mille ratios, pages,
//! frames, bytes — and the two classic failure modes of that discipline
//! are silent truncation (`total_ns / pages` rounding a fast codec to
//! 0 ns/page, the PR 6 calibration bug) and silent overflow
//! (`pages * 1000` wrapping long before `u64::MAX` pages). These helpers
//! make the rounding direction part of the call site's name and widen to
//! `u128` internally so the product form `a * scale / b` never wraps.
//!
//! `sdfm-lint` rule U2 bans bare integer `/` on unit-tagged values in the
//! simulator/kernel/model/compress crates; converting a division to one of
//! these helpers is the sanctioned fix (the other is a justified waiver).
//!
//! All helpers are total: a zero divisor yields 0 rather than panicking,
//! so they are safe in control-plane code where P1 bans panics. A zero
//! result from a zero divisor is always the caller's "nothing to divide
//! by" case in this workspace (empty store, empty sample), never a
//! silent wrong answer.

/// Floor division, total: `num / den`, or 0 when `den == 0`.
///
/// ```
/// # use sdfm_types::arith::div_floor_u64;
/// assert_eq!(div_floor_u64(7, 2), 3);
/// assert_eq!(div_floor_u64(7, 0), 0);
/// ```
pub const fn div_floor_u64(num: u64, den: u64) -> u64 {
    match num.checked_div(den) {
        Some(v) => v,
        None => 0,
    }
}

/// Ceiling division, total: `⌈num / den⌉`, or 0 when `den == 0`.
///
/// ```
/// # use sdfm_types::arith::div_ceil_u64;
/// assert_eq!(div_ceil_u64(7, 2), 4);
/// assert_eq!(div_ceil_u64(6, 2), 3);
/// assert_eq!(div_ceil_u64(0, 5), 0);
/// assert_eq!(div_ceil_u64(7, 0), 0);
/// ```
pub const fn div_ceil_u64(num: u64, den: u64) -> u64 {
    if den == 0 {
        0
    } else {
        num.div_ceil(den)
    }
}

/// The per-mille share of `value`: `⌊value × permille / 1000⌋`, widened
/// through `u128` so the product never wraps.
///
/// This is the scaling direction ("how many of these pages does a 310‰
/// acceptance fraction keep"). The inverse — expressing one quantity as a
/// per-mille fraction of another — is [`permille_ratio`].
///
/// ```
/// # use sdfm_types::arith::permille_of;
/// assert_eq!(permille_of(1000, 125), 125);
/// assert_eq!(permille_of(7, 125), 0); // floor
/// assert_eq!(permille_of(u64::MAX, 1000), u64::MAX); // no wrap
/// ```
pub const fn permille_of(value: u64, permille: u64) -> u64 {
    let wide = value as u128 * permille as u128 / 1000;
    if wide > u64::MAX as u128 {
        u64::MAX
    } else {
        wide as u64
    }
}

/// `num` as a per-mille fraction of `den`: `⌊num × 1000 / den⌋`, widened
/// through `u128`; 0 when `den == 0`.
///
/// ```
/// # use sdfm_types::arith::permille_ratio;
/// assert_eq!(permille_ratio(31, 100), 310);
/// assert_eq!(permille_ratio(1, 3), 333); // floor
/// assert_eq!(permille_ratio(5, 0), 0);
/// ```
pub const fn permille_ratio(num: u64, den: u64) -> u64 {
    if den == 0 {
        return 0;
    }
    let wide = num as u128 * 1000 / den as u128;
    if wide > u64::MAX as u128 {
        u64::MAX
    } else {
        wide as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_and_ceil_bracket_the_exact_quotient() {
        for (n, d) in [(0u64, 3u64), (1, 3), (3, 3), (4, 3), (999, 1000), (1001, 1000)] {
            let f = div_floor_u64(n, d);
            let c = div_ceil_u64(n, d);
            assert!(f <= c);
            assert!(c - f <= 1);
            assert_eq!(f, n / d);
            assert_eq!(c, n.div_ceil(d));
        }
    }

    #[test]
    fn zero_divisors_are_total_not_panics() {
        assert_eq!(div_floor_u64(5, 0), 0);
        assert_eq!(div_ceil_u64(5, 0), 0);
        assert_eq!(permille_ratio(5, 0), 0);
    }

    #[test]
    fn permille_of_scales_and_floors() {
        assert_eq!(permille_of(1000, 310), 310);
        assert_eq!(permille_of(0, 310), 0);
        assert_eq!(permille_of(3, 333), 0);
        assert_eq!(permille_of(4, 333), 1);
        // Identity at 1000‰.
        assert_eq!(permille_of(123_456, 1000), 123_456);
    }

    #[test]
    fn permille_round_trip_is_within_floor_error() {
        for v in [1u64, 7, 999, 12_345] {
            let share = permille_of(v, 125);
            assert!(share <= v);
            let back = permille_ratio(share, v);
            assert!(back <= 125);
        }
    }

    /// The widening contract: the `a * scale / b` product form must not
    /// wrap at `u64` scale. The pre-helper code in `StorePressure::
    /// decay_step` and `CostModel::store_bytes` multiplied first in `u64`
    /// and overflowed for large stores; these are the regression pins.
    #[test]
    fn products_widen_instead_of_wrapping() {
        // u64::MAX * 125 would wrap; the widened form floors correctly.
        assert_eq!(permille_of(u64::MAX, 125), u64::MAX / 1000 * 125 + (u64::MAX % 1000) * 125 / 1000);
        assert_eq!(permille_ratio(u64::MAX, u64::MAX), 1000);
        // Saturation (not wrap) when the true quotient exceeds u64.
        assert_eq!(permille_of(u64::MAX, 2000), u64::MAX);
        assert_eq!(permille_ratio(u64::MAX, 1), u64::MAX);
    }
}
