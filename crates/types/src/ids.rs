//! Newtype identifiers for the entities in a warehouse-scale computer.
//!
//! Using distinct types for job, machine, cluster, and page identifiers makes
//! it impossible to, say, index a machine table with a job id — the kind of
//! mistake that is otherwise easy to make in a simulator that juggles tens of
//! thousands of numeric ids.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from a raw integer.
            ///
            /// # Examples
            ///
            /// ```
            /// # use sdfm_types::ids::*;
            #[doc = concat!("let id = ", stringify!($name), "::new(7);")]
            /// assert_eq!(id.raw(), 7);
            /// ```
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value of the identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the raw value as a `usize`, for indexing dense tables.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies a job (the unit of scheduling and memory isolation;
    /// one job maps to one memcg in the simulated kernel).
    JobId,
    "job-"
);

define_id!(
    /// Identifies a physical machine in a cluster.
    MachineId,
    "machine-"
);

define_id!(
    /// Identifies a cluster (tens of thousands of machines).
    ClusterId,
    "cluster-"
);

define_id!(
    /// Identifies a physical page frame on one machine.
    PageId,
    "page-"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_includes_prefix_and_raw_value() {
        assert_eq!(JobId::new(42).to_string(), "job-42");
        assert_eq!(MachineId::new(0).to_string(), "machine-0");
        assert_eq!(ClusterId::new(9).to_string(), "cluster-9");
        assert_eq!(PageId::new(123).to_string(), "page-123");
    }

    #[test]
    fn roundtrip_through_u64() {
        let id = JobId::from(99u64);
        assert_eq!(u64::from(id), 99);
        assert_eq!(id.index(), 99);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(PageId::new(1));
        set.insert(PageId::new(1));
        set.insert(PageId::new(2));
        assert_eq!(set.len(), 2);
        assert!(PageId::new(1) < PageId::new(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(MachineId::default().raw(), 0);
    }

    #[test]
    fn serde_is_transparent() {
        let id = JobId::new(5);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "5");
        let back: JobId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
