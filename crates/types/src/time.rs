//! Simulated time.
//!
//! The whole system advances in whole seconds of simulated time. Seconds are
//! fine-grained enough for the control plane (which acts at one-minute
//! boundaries) and the kstaled scanner (120 s period), while keeping the
//! arithmetic exact — no floating-point clock drift across a multi-day
//! longitudinal run.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// The kstaled page-table scan period used throughout the paper (§5.1):
/// ages advance in units of 120 seconds.
pub const KSTALED_SCAN_PERIOD: SimDuration = SimDuration::from_secs(120);

/// One minute of simulated time; the node agent reads kernel statistics and
/// re-evaluates the cold age threshold on this period (§4.3).
pub const MINUTE: SimDuration = SimDuration::from_secs(60);

/// One hour of simulated time.
pub const HOUR: SimDuration = SimDuration::from_secs(3600);

/// One day of simulated time (used for diurnal workload patterns).
pub const DAY: SimDuration = SimDuration::from_secs(86_400);

/// A span of simulated time, in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600)
    }

    /// Returns the duration in seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional minutes.
    ///
    /// ```
    /// # use sdfm_types::time::SimDuration;
    /// assert_eq!(SimDuration::from_secs(90).as_mins_f64(), 1.5);
    /// ```
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Integer division of two durations (e.g. how many scan periods fit in
    /// a threshold).
    pub const fn div_duration(self, other: SimDuration) -> u64 {
        self.0 / other.0
    }

    /// Checked subtraction; `None` if `other` is longer than `self`.
    pub const fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        match self.0.checked_sub(other.0) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 3600 && s.is_multiple_of(3600) {
            write!(f, "{}h", s / 3600)
        } else if s >= 60 && s.is_multiple_of(60) {
            write!(f, "{}m", s / 60)
        } else {
            write!(f, "{}s", s)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

/// An instant of simulated time, measured in seconds since the start of the
/// simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Returns seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`duration_since`](Self::duration_since).
    pub const fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Seconds into the current simulated day, for diurnal patterns.
    ///
    /// ```
    /// # use sdfm_types::time::SimTime;
    /// assert_eq!(SimTime::from_secs(86_400 + 30).second_of_day(), 30);
    /// ```
    pub const fn second_of_day(self) -> u64 {
        self.0 % DAY.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_secs(3600));
        assert_eq!(KSTALED_SCAN_PERIOD.as_secs(), 120);
        assert_eq!(MINUTE.as_secs(), 60);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(300);
        assert_eq!(t1.as_secs(), 300);
        assert_eq!(t1 - t0, SimDuration::from_secs(300));
        assert_eq!(t1.duration_since(t0).as_mins_f64(), 5.0);
        let mut t = t1;
        t += MINUTE;
        assert_eq!(t.as_secs(), 360);
        t -= MINUTE;
        assert_eq!(t, t1);
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_secs(1));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn div_duration_counts_scan_periods() {
        let t = SimDuration::from_secs(601);
        assert_eq!(t.div_duration(KSTALED_SCAN_PERIOD), 5);
    }

    #[test]
    fn second_of_day_wraps() {
        assert_eq!(SimTime::from_secs(2 * 86_400 + 7).second_of_day(), 7);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimDuration::from_secs(7200).to_string(), "2h");
        assert_eq!(SimDuration::from_secs(120).to_string(), "2m");
        assert_eq!(SimDuration::from_secs(61).to_string(), "61s");
        assert_eq!(SimTime::from_secs(10).to_string(), "t+10s");
    }

    #[test]
    fn checked_and_saturating_sub() {
        let a = SimDuration::from_secs(10);
        let b = SimDuration::from_secs(4);
        assert_eq!(a.checked_sub(b), Some(SimDuration::from_secs(6)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }
}
