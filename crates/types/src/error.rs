//! The shared error type for parameter validation across the workspace.
//!
//! Subsystems with richer failure modes (the zswap store, the scheduler, the
//! autotuner) define their own error enums; this type covers the common
//! cases — invalid parameters and empty inputs — so that leaf crates do not
//! each need a bespoke error for them.

use std::error::Error;
use std::fmt;

/// Errors produced by validation in `sdfm-types` and by simple parameterized
/// constructors across the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdfmError {
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Description of the offending parameter and value.
        what: String,
    },
    /// An operation that requires data was given none.
    EmptyInput {
        /// Description of the missing input.
        what: String,
    },
}

impl SdfmError {
    /// Creates an [`SdfmError::InvalidParameter`].
    pub fn invalid_parameter(what: impl Into<String>) -> Self {
        SdfmError::InvalidParameter { what: what.into() }
    }

    /// Creates an [`SdfmError::EmptyInput`].
    pub fn empty_input(what: impl Into<String>) -> Self {
        SdfmError::EmptyInput { what: what.into() }
    }
}

impl fmt::Display for SdfmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfmError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            SdfmError::EmptyInput { what } => write!(f, "empty input: {what}"),
        }
    }
}

impl Error for SdfmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = SdfmError::invalid_parameter("k must be in [0, 100]");
        assert_eq!(e.to_string(), "invalid parameter: k must be in [0, 100]");
        let e = SdfmError::empty_input("no samples");
        assert_eq!(e.to_string(), "empty input: no samples");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<SdfmError>();
    }
}
