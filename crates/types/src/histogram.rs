//! Page-age bookkeeping and the two per-job histograms from §4/§5.1.
//!
//! The kernel's kstaled daemon tracks, for every physical page, the number of
//! scan periods since the page was last accessed — its [`PageAge`]. The paper
//! packs this into 8 bits of `struct page`, so ages saturate at 255 scans
//! (8.5 hours at the 120 s scan period).
//!
//! From the ages, kstaled maintains two per-job histograms:
//!
//! * the [`ColdAgeHistogram`] — for each age, how many pages currently have
//!   that age. The suffix sum `pages_colder_than(T)` is the amount of memory
//!   that would be considered cold under threshold `T` (§4.4);
//! * the [`PromotionHistogram`] — for each age, how many page *accesses*
//!   found the page at that age. The suffix sum `promotions_colder_than(T)`
//!   is how many promotions the job *would have incurred* had the threshold
//!   been `T` (§4.3) — this is what lets the control plane evaluate every
//!   candidate threshold from one pass of bookkeeping.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

use crate::time::{SimDuration, KSTALED_SCAN_PERIOD};

/// Maximum representable age, in scan periods (8-bit age field, §5.1).
pub const MAX_AGE_SCANS: u8 = u8::MAX;

/// Number of distinct age values (0..=255).
pub const AGE_BUCKETS: usize = MAX_AGE_SCANS as usize + 1;

/// The age of a page: the number of kstaled scan periods since the page was
/// last observed accessed.
///
/// Age 0 means "accessed during the most recent scan period". Ages saturate
/// at [`MAX_AGE_SCANS`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PageAge(u8);

impl PageAge {
    /// A page accessed within the last scan period.
    pub const HOT: PageAge = PageAge(0);

    /// The saturated maximum age.
    pub const MAX: PageAge = PageAge(MAX_AGE_SCANS);

    /// Creates an age from a raw scan count.
    pub const fn from_scans(scans: u8) -> Self {
        PageAge(scans)
    }

    /// Returns the age as a number of scan periods.
    pub const fn as_scans(self) -> u8 {
        self.0
    }

    /// Returns the age as a simulated duration, assuming the default
    /// 120-second scan period.
    ///
    /// ```
    /// # use sdfm_types::histogram::PageAge;
    /// assert_eq!(PageAge::from_scans(2).as_duration().as_secs(), 240);
    /// ```
    pub const fn as_duration(self) -> SimDuration {
        SimDuration::from_secs(self.0 as u64 * KSTALED_SCAN_PERIOD.as_secs())
    }

    /// Quantizes a duration to an age, rounding *up* to the next scan period
    /// and saturating at [`MAX_AGE_SCANS`]. Rounding up makes a threshold
    /// conservative: a page is only called cold once it has demonstrably been
    /// idle for at least the requested duration.
    ///
    /// ```
    /// # use sdfm_types::histogram::PageAge;
    /// # use sdfm_types::time::SimDuration;
    /// assert_eq!(PageAge::from_duration(SimDuration::from_secs(121)).as_scans(), 2);
    /// ```
    pub fn from_duration(d: SimDuration) -> Self {
        let scans = d.as_secs().div_ceil(KSTALED_SCAN_PERIOD.as_secs());
        PageAge(scans.min(MAX_AGE_SCANS as u64) as u8)
    }

    /// The age after one more scan without an access (saturating).
    pub const fn incremented(self) -> PageAge {
        PageAge(self.0.saturating_add(1))
    }

    /// True when the age has saturated.
    pub const fn is_saturated(self) -> bool {
        self.0 == MAX_AGE_SCANS
    }
}

impl fmt::Display for PageAge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "age={} scans ({})", self.0, self.as_duration())
    }
}

/// Dense per-age counters shared by both histogram kinds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct AgeCounts {
    counts: Vec<u64>,
}

impl AgeCounts {
    fn new() -> Self {
        AgeCounts {
            counts: vec![0; AGE_BUCKETS],
        }
    }

    fn record(&mut self, age: PageAge, n: u64) {
        self.counts[age.0 as usize] += n;
    }

    fn suffix_sum(&self, from: PageAge) -> u64 {
        self.counts[from.0 as usize..].iter().sum()
    }

    fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn clear(&mut self) {
        self.counts.fill(0);
    }

    fn merge(&mut self, other: &AgeCounts) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
    }

    /// Moves every bucket up by one age, merging the top two buckets into
    /// the saturated bucket. This is the effect of one kstaled scan on a
    /// population of pages none of which were accessed.
    fn shift_up_one(&mut self) {
        let top = self.counts[AGE_BUCKETS - 1] + self.counts[AGE_BUCKETS - 2];
        for i in (1..AGE_BUCKETS - 1).rev() {
            self.counts[i] = self.counts[i - 1];
        }
        self.counts[AGE_BUCKETS - 1] = top;
        self.counts[0] = 0;
    }

    fn remove(&mut self, age: PageAge, n: u64) {
        let bucket = &mut self.counts[age.0 as usize];
        debug_assert!(
            *bucket >= n,
            "removing {n} pages from age-{} bucket holding {bucket}",
            age.0
        );
        *bucket = bucket.saturating_sub(n);
    }

    fn move_weight(&mut self, from: PageAge, to: PageAge, n: u64) {
        if from == to || n == 0 {
            return;
        }
        self.remove(from, n);
        self.counts[to.0 as usize] += n;
    }

    fn iter(&self) -> impl Iterator<Item = (PageAge, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (PageAge(i as u8), c))
    }

    fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }
}

impl Default for AgeCounts {
    fn default() -> Self {
        Self::new()
    }
}

/// Histogram over the current ages of a job's resident pages (§4.4).
///
/// `pages_colder_than(T)` answers "how much of this job's memory would be
/// cold under threshold `T`", which the system uses both to estimate the
/// working set size (pages *not* cold under the minimum threshold) and for
/// offline what-if analysis of memory savings.
///
/// # Examples
///
/// ```
/// use sdfm_types::histogram::{ColdAgeHistogram, PageAge};
///
/// let mut h = ColdAgeHistogram::new();
/// h.record_page(PageAge::from_scans(0), 10); // 10 hot pages
/// h.record_page(PageAge::from_scans(5), 4);  // 4 pages idle for 10 min
/// assert_eq!(h.pages_colder_than(PageAge::from_scans(1)), 4);
/// assert_eq!(h.total_pages(), 14);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ColdAgeHistogram {
    inner: AgeCounts,
}

impl ColdAgeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` pages currently at `age`.
    pub fn record_page(&mut self, age: PageAge, n: u64) {
        self.inner.record(age, n);
    }

    /// Number of pages whose age is at least `threshold` — the cold memory
    /// size under that threshold, in pages.
    pub fn pages_colder_than(&self, threshold: PageAge) -> u64 {
        self.inner.suffix_sum(threshold)
    }

    /// Number of pages whose age is *below* `threshold` — the §4.2 working
    /// set estimate when called with the minimum cold age threshold.
    pub fn pages_younger_than(&self, threshold: PageAge) -> u64 {
        self.total_pages() - self.pages_colder_than(threshold)
    }

    /// Total pages recorded.
    pub fn total_pages(&self) -> u64 {
        self.inner.total()
    }

    /// Resets all buckets to zero.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Adds every bucket of `other` into `self` (for cluster-level rollups).
    pub fn merge(&mut self, other: &ColdAgeHistogram) {
        self.inner.merge(&other.inner);
    }

    /// Ages the whole histogram by one scan period in O(buckets): every
    /// bucket moves up by one age and the top two buckets merge into the
    /// saturated bucket — the effect of a kstaled scan on a population in
    /// which no page was accessed. Callers then fix up the accessed pages
    /// with [`move_pages`](Self::move_pages).
    pub fn shift_up_one(&mut self) {
        self.inner.shift_up_one();
    }

    /// Removes `n` pages currently recorded at `age` (page freed or
    /// migrated out). Debug builds assert the bucket actually holds them.
    pub fn remove_page(&mut self, age: PageAge, n: u64) {
        self.inner.remove(age, n);
    }

    /// Moves `n` pages from the `from` bucket to the `to` bucket — an
    /// incremental age update for pages whose age changed without the rest
    /// of the histogram moving (e.g. an accessed page resetting to HOT
    /// after a [`shift_up_one`](Self::shift_up_one)).
    pub fn move_pages(&mut self, from: PageAge, to: PageAge, n: u64) {
        self.inner.move_weight(from, to, n);
    }

    /// Iterates over `(age, page count)` pairs, including empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (PageAge, u64)> + '_ {
        self.inner.iter()
    }

    /// True when no pages have been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl AddAssign<&ColdAgeHistogram> for ColdAgeHistogram {
    fn add_assign(&mut self, rhs: &ColdAgeHistogram) {
        self.merge(rhs);
    }
}

/// Histogram over the page ages observed at access time (§4.3).
///
/// Every time a page is accessed, kstaled records the age the page had
/// accumulated before the access reset it. For a candidate threshold `T`,
/// the suffix sum over ages `>= T` is exactly the number of promotions the
/// job would have suffered under `T`: those accesses hit pages that would
/// have already been in far memory.
///
/// # Examples
///
/// The paper's §4.3 worked example: pages A and B were idle for 5 and 10
/// minutes respectively, then both were accessed. Under `T = 8 min` only B
/// counts; under `T = 2 min` both do.
///
/// ```
/// use sdfm_types::histogram::{PromotionHistogram, PageAge};
/// use sdfm_types::time::SimDuration;
///
/// let mut h = PromotionHistogram::new();
/// h.record_promotion(PageAge::from_duration(SimDuration::from_mins(5)), 1);  // A
/// h.record_promotion(PageAge::from_duration(SimDuration::from_mins(10)), 1); // B
///
/// let t8 = PageAge::from_duration(SimDuration::from_mins(8));
/// let t2 = PageAge::from_duration(SimDuration::from_mins(2));
/// assert_eq!(h.promotions_colder_than(t8), 1);
/// assert_eq!(h.promotions_colder_than(t2), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PromotionHistogram {
    inner: AgeCounts,
}

impl PromotionHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` accesses to pages that had accumulated `age_at_access`.
    pub fn record_promotion(&mut self, age_at_access: PageAge, n: u64) {
        self.inner.record(age_at_access, n);
    }

    /// Number of recorded accesses whose page age was at least `threshold` —
    /// the promotions that would have occurred under that threshold.
    pub fn promotions_colder_than(&self, threshold: PageAge) -> u64 {
        self.inner.suffix_sum(threshold)
    }

    /// Total accesses recorded (with age ≥ 1; accesses to hot pages are not
    /// promotions under any threshold but may still be recorded at age 0).
    pub fn total_promotions(&self) -> u64 {
        self.inner.total()
    }

    /// Resets all buckets to zero.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &PromotionHistogram) {
        self.inner.merge(&other.inner);
    }

    /// Iterates over `(age at access, access count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PageAge, u64)> + '_ {
        self.inner.iter()
    }

    /// True when no accesses have been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl AddAssign<&PromotionHistogram> for PromotionHistogram {
    fn add_assign(&mut self, rhs: &PromotionHistogram) {
        self.merge(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn age_saturates_on_increment() {
        let mut a = PageAge::from_scans(254);
        a = a.incremented();
        assert_eq!(a.as_scans(), 255);
        assert!(!PageAge::from_scans(254).is_saturated());
        a = a.incremented();
        assert_eq!(a, PageAge::MAX);
        assert!(a.is_saturated());
    }

    #[test]
    fn age_duration_roundtrip() {
        for scans in [0u8, 1, 2, 100, 255] {
            let a = PageAge::from_scans(scans);
            assert_eq!(PageAge::from_duration(a.as_duration()), a);
        }
    }

    #[test]
    fn from_duration_rounds_up_and_saturates() {
        assert_eq!(
            PageAge::from_duration(SimDuration::from_secs(0)).as_scans(),
            0
        );
        assert_eq!(
            PageAge::from_duration(SimDuration::from_secs(1)).as_scans(),
            1
        );
        assert_eq!(
            PageAge::from_duration(SimDuration::from_secs(120)).as_scans(),
            1
        );
        assert_eq!(
            PageAge::from_duration(SimDuration::from_hours(100)).as_scans(),
            255
        );
    }

    #[test]
    fn cold_histogram_suffix_sums() {
        let mut h = ColdAgeHistogram::new();
        h.record_page(PageAge::from_scans(0), 5);
        h.record_page(PageAge::from_scans(1), 3);
        h.record_page(PageAge::from_scans(255), 2);
        assert_eq!(h.total_pages(), 10);
        assert_eq!(h.pages_colder_than(PageAge::from_scans(0)), 10);
        assert_eq!(h.pages_colder_than(PageAge::from_scans(1)), 5);
        assert_eq!(h.pages_colder_than(PageAge::from_scans(2)), 2);
        assert_eq!(h.pages_younger_than(PageAge::from_scans(1)), 5);
    }

    #[test]
    fn promotion_histogram_matches_paper_worked_example() {
        // §4.3: pages A (5 min idle) and B (10 min idle) both accessed one
        // minute ago. Promotion rate is 1/min for T=8min, 2/min for T=2min.
        let mut h = PromotionHistogram::new();
        h.record_promotion(PageAge::from_duration(SimDuration::from_mins(5)), 1);
        h.record_promotion(PageAge::from_duration(SimDuration::from_mins(10)), 1);
        let t8 = PageAge::from_duration(SimDuration::from_mins(8));
        let t2 = PageAge::from_duration(SimDuration::from_mins(2));
        assert_eq!(h.promotions_colder_than(t8), 1);
        assert_eq!(h.promotions_colder_than(t2), 2);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = ColdAgeHistogram::new();
        a.record_page(PageAge::from_scans(3), 1);
        let mut b = ColdAgeHistogram::new();
        b.record_page(PageAge::from_scans(3), 2);
        b.record_page(PageAge::from_scans(7), 5);
        a += &b;
        assert_eq!(a.pages_colder_than(PageAge::from_scans(3)), 8);
        assert_eq!(a.pages_colder_than(PageAge::from_scans(4)), 5);
    }

    #[test]
    fn clear_empties() {
        let mut h = PromotionHistogram::new();
        assert!(h.is_empty());
        h.record_promotion(PageAge::from_scans(9), 4);
        assert!(!h.is_empty());
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.total_promotions(), 0);
    }

    #[test]
    fn iter_covers_all_buckets() {
        let mut h = ColdAgeHistogram::new();
        h.record_page(PageAge::from_scans(10), 7);
        let v: Vec<_> = h.iter().filter(|&(_, c)| c != 0).collect();
        assert_eq!(v, vec![(PageAge::from_scans(10), 7)]);
        assert_eq!(h.iter().count(), AGE_BUCKETS);
    }

    #[test]
    fn shift_up_one_matches_per_page_aging() {
        let mut h = ColdAgeHistogram::new();
        h.record_page(PageAge::from_scans(0), 5);
        h.record_page(PageAge::from_scans(7), 3);
        h.record_page(PageAge::from_scans(254), 2);
        h.record_page(PageAge::from_scans(255), 4);
        h.shift_up_one();
        // Per-page: each age increments saturating at 255.
        let mut expect = ColdAgeHistogram::new();
        expect.record_page(PageAge::from_scans(1), 5);
        expect.record_page(PageAge::from_scans(8), 3);
        expect.record_page(PageAge::from_scans(255), 6);
        assert_eq!(h, expect);
        assert_eq!(h.total_pages(), 14, "shift must conserve total weight");
    }

    #[test]
    fn move_pages_is_weight_neutral() {
        let mut h = ColdAgeHistogram::new();
        h.record_page(PageAge::from_scans(9), 10);
        h.move_pages(PageAge::from_scans(9), PageAge::HOT, 4);
        assert_eq!(h.total_pages(), 10);
        assert_eq!(h.pages_colder_than(PageAge::from_scans(1)), 6);
        // Same-bucket and zero-count moves are no-ops.
        h.move_pages(PageAge::from_scans(9), PageAge::from_scans(9), 6);
        h.move_pages(PageAge::from_scans(9), PageAge::HOT, 0);
        assert_eq!(h.pages_colder_than(PageAge::from_scans(1)), 6);
    }

    #[test]
    fn remove_page_subtracts_from_one_bucket() {
        let mut h = ColdAgeHistogram::new();
        h.record_page(PageAge::from_scans(3), 5);
        h.remove_page(PageAge::from_scans(3), 2);
        assert_eq!(h.total_pages(), 3);
        assert_eq!(h.pages_colder_than(PageAge::from_scans(3)), 3);
    }

    #[test]
    #[should_panic(expected = "removing")]
    #[cfg(debug_assertions)]
    fn remove_page_underflow_asserts_in_debug() {
        let mut h = ColdAgeHistogram::new();
        h.record_page(PageAge::from_scans(3), 1);
        h.remove_page(PageAge::from_scans(3), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut h = PromotionHistogram::new();
        h.record_promotion(PageAge::from_scans(42), 13);
        let json = serde_json::to_string(&h).unwrap();
        let back: PromotionHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
