//! Core vocabulary types for the software-defined far memory (SDFM) system.
//!
//! This crate defines the identifiers, simulated-time representation, size
//! arithmetic, histogram structures, and summary statistics shared by every
//! other crate in the workspace. It deliberately has no dependencies on the
//! rest of the system so that substrates (kernel simulation, cluster manager,
//! autotuner) can all speak the same vocabulary without coupling.
//!
//! The design follows the paper's §4: cold pages are defined by *age* (time
//! since last access, tracked in units of the kstaled scan period), and the
//! control plane consumes two per-job histograms — the [cold age
//! histogram](histogram::ColdAgeHistogram) and the [promotion
//! histogram](histogram::PromotionHistogram) — plus the job's working set
//! size.
//!
//! # Examples
//!
//! ```
//! use sdfm_types::prelude::*;
//!
//! let t = SimTime::ZERO + SimDuration::from_secs(120);
//! assert_eq!(t.as_secs(), 120);
//!
//! let mut h = ColdAgeHistogram::new();
//! h.record_page(PageAge::from_scans(3), 1);
//! assert_eq!(h.pages_colder_than(PageAge::from_scans(2)), 1);
//! ```

#![warn(missing_docs)]

pub mod arith;
pub mod error;
pub mod histogram;
pub mod ids;
pub mod rate;
pub mod size;
pub mod stats;
pub mod time;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::arith::{div_ceil_u64, div_floor_u64, permille_of, permille_ratio};
    pub use crate::error::SdfmError;
    pub use crate::histogram::{ColdAgeHistogram, PageAge, PromotionHistogram, MAX_AGE_SCANS};
    pub use crate::ids::{ClusterId, JobId, MachineId, PageId};
    pub use crate::rate::{NormalizedPromotionRate, PromotionRate};
    pub use crate::size::{ByteSize, PageCount, PAGE_SIZE};
    pub use crate::stats::{Cdf, FiveNumberSummary, Percentile};
    pub use crate::time::{SimDuration, SimTime, KSTALED_SCAN_PERIOD, MINUTE};
}

pub use prelude::*;
