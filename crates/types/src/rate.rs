//! Promotion-rate types and the far-memory performance SLO (§4.2).
//!
//! The performance overhead of far memory is accessing pages that live
//! there; the paper's service-level indicator is the *promotion rate* — the
//! rate at which pages are swapped back from far memory to near memory.
//! Because jobs differ enormously in size, the SLO is expressed on the
//! *normalized* rate: promotions per minute as a fraction of the job's
//! working set size, with the production target `P = 0.2 %/min`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

use crate::size::PageCount;
use crate::time::SimDuration;

/// An absolute promotion rate, in pages promoted per minute.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PromotionRate(f64);

impl PromotionRate {
    /// Zero promotions per minute.
    pub const ZERO: PromotionRate = PromotionRate(0.0);

    /// Creates a rate from pages per minute.
    ///
    /// # Panics
    ///
    /// Panics if `pages_per_min` is negative or not finite.
    pub fn from_pages_per_min(pages_per_min: f64) -> Self {
        assert!(
            pages_per_min.is_finite() && pages_per_min >= 0.0,
            "promotion rate must be finite and non-negative, got {pages_per_min}"
        );
        PromotionRate(pages_per_min)
    }

    /// Creates a rate from a promotion count observed over a window.
    ///
    /// Returns [`PromotionRate::ZERO`] for an empty window.
    pub fn from_count(promotions: u64, window: SimDuration) -> Self {
        if window == SimDuration::ZERO {
            return PromotionRate::ZERO;
        }
        PromotionRate(promotions as f64 / window.as_mins_f64())
    }

    /// Returns pages per minute.
    pub const fn pages_per_min(self) -> f64 {
        self.0
    }

    /// Normalizes by a working set size, yielding the SLI the SLO is
    /// defined on. A zero working set normalizes to an infinite rate when
    /// promotions are nonzero (any promotion against an empty working set
    /// violates every finite target) and zero otherwise.
    pub fn normalized(self, working_set: PageCount) -> NormalizedPromotionRate {
        if working_set.is_zero() {
            if self.0 > 0.0 {
                NormalizedPromotionRate(f64::INFINITY)
            } else {
                NormalizedPromotionRate(0.0)
            }
        } else {
            NormalizedPromotionRate(self.0 / working_set.get() as f64)
        }
    }
}

impl fmt::Display for PromotionRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} pages/min", self.0)
    }
}

impl Add for PromotionRate {
    type Output = PromotionRate;
    fn add(self, rhs: PromotionRate) -> PromotionRate {
        PromotionRate(self.0 + rhs.0)
    }
}

/// A promotion rate normalized to the job's working set size: the fraction
/// of the working set promoted from far memory per minute.
///
/// This is the quantity the SLO bounds: the paper's production target is
/// [`NormalizedPromotionRate::PAPER_SLO_TARGET`], 0.2 % of the working set
/// per minute, enforced at the 98th percentile fleet-wide.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NormalizedPromotionRate(f64);

impl NormalizedPromotionRate {
    /// Zero.
    pub const ZERO: NormalizedPromotionRate = NormalizedPromotionRate(0.0);

    /// The production SLO target from §4.2: P = 0.2 %/min.
    pub const PAPER_SLO_TARGET: NormalizedPromotionRate = NormalizedPromotionRate(0.002);

    /// Creates a normalized rate from a fraction of the working set per
    /// minute (0.002 == 0.2 %/min).
    ///
    /// # Panics
    ///
    /// Panics if `fraction_per_min` is negative or NaN (infinity is allowed:
    /// it represents promotions against an empty working set).
    pub fn from_fraction_per_min(fraction_per_min: f64) -> Self {
        assert!(
            !fraction_per_min.is_nan() && fraction_per_min >= 0.0,
            "normalized rate must be non-negative and not NaN, got {fraction_per_min}"
        );
        NormalizedPromotionRate(fraction_per_min)
    }

    /// Creates a normalized rate from percent of working set per minute.
    pub fn from_percent_per_min(percent_per_min: f64) -> Self {
        Self::from_fraction_per_min(percent_per_min / 100.0)
    }

    /// Returns the fraction of working set per minute.
    pub const fn fraction_per_min(self) -> f64 {
        self.0
    }

    /// Returns percent of working set per minute.
    pub fn percent_per_min(self) -> f64 {
        self.0 * 100.0
    }

    /// True when this rate meets (does not exceed) `target`.
    ///
    /// ```
    /// # use sdfm_types::rate::NormalizedPromotionRate;
    /// let slo = NormalizedPromotionRate::PAPER_SLO_TARGET;
    /// assert!(NormalizedPromotionRate::from_percent_per_min(0.1).meets(slo));
    /// assert!(!NormalizedPromotionRate::from_percent_per_min(0.3).meets(slo));
    /// ```
    pub fn meets(self, target: NormalizedPromotionRate) -> bool {
        self.0 <= target.0
    }
}

impl fmt::Display for NormalizedPromotionRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} %/min", self.percent_per_min())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::MINUTE;

    #[test]
    fn from_count_divides_by_minutes() {
        let r = PromotionRate::from_count(30, MINUTE * 2);
        assert_eq!(r.pages_per_min(), 15.0);
    }

    #[test]
    fn from_count_empty_window_is_zero() {
        assert_eq!(
            PromotionRate::from_count(100, SimDuration::ZERO),
            PromotionRate::ZERO
        );
    }

    #[test]
    fn normalization_divides_by_wss() {
        let r = PromotionRate::from_pages_per_min(2.0).normalized(PageCount::new(1000));
        assert!((r.fraction_per_min() - 0.002).abs() < 1e-12);
        assert!((r.percent_per_min() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn normalization_of_empty_working_set() {
        let r = PromotionRate::from_pages_per_min(1.0).normalized(PageCount::ZERO);
        assert!(r.fraction_per_min().is_infinite());
        assert!(!r.meets(NormalizedPromotionRate::PAPER_SLO_TARGET));
        let z = PromotionRate::ZERO.normalized(PageCount::ZERO);
        assert_eq!(z, NormalizedPromotionRate::ZERO);
    }

    #[test]
    fn slo_target_is_point_two_percent() {
        assert!((NormalizedPromotionRate::PAPER_SLO_TARGET.percent_per_min() - 0.2).abs() < 1e-12);
        assert_eq!(
            NormalizedPromotionRate::from_percent_per_min(0.2),
            NormalizedPromotionRate::PAPER_SLO_TARGET
        );
    }

    #[test]
    fn meets_is_inclusive() {
        let slo = NormalizedPromotionRate::PAPER_SLO_TARGET;
        assert!(slo.meets(slo));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rate_rejected() {
        let _ = PromotionRate::from_pages_per_min(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative and not NaN")]
    fn nan_normalized_rate_rejected() {
        let _ = NormalizedPromotionRate::from_fraction_per_min(f64::NAN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            PromotionRate::from_pages_per_min(1.5).to_string(),
            "1.50 pages/min"
        );
        assert_eq!(
            NormalizedPromotionRate::from_percent_per_min(0.2).to_string(),
            "0.2000 %/min"
        );
    }

    #[test]
    fn rates_add() {
        let a = PromotionRate::from_pages_per_min(1.0);
        let b = PromotionRate::from_pages_per_min(2.5);
        assert_eq!((a + b).pages_per_min(), 3.5);
    }
}
