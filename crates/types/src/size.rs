//! Memory-size arithmetic.
//!
//! The system works at OS-page granularity (§4): the kernel migrates whole
//! 4 KiB pages between near memory (DRAM) and far memory (the compressed
//! zswap store). [`PageCount`] counts pages; [`ByteSize`] counts bytes (e.g.
//! compressed payload sizes inside the zsmalloc arena, which are *not*
//! page-granular).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// The size of one OS page in bytes (x86-64 base pages).
pub const PAGE_SIZE: usize = 4096;

/// A count of whole OS pages.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PageCount(u64);

impl PageCount {
    /// Zero pages.
    pub const ZERO: PageCount = PageCount(0);

    /// Creates a count of `n` pages.
    pub const fn new(n: u64) -> Self {
        PageCount(n)
    }

    /// Returns the raw number of pages.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Total bytes occupied by this many uncompressed pages.
    pub const fn bytes(self) -> ByteSize {
        ByteSize(self.0 * PAGE_SIZE as u64)
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: PageCount) -> PageCount {
        PageCount(self.0.saturating_sub(other.0))
    }

    /// The fraction `self / total`, or 0.0 when `total` is zero.
    ///
    /// ```
    /// # use sdfm_types::size::PageCount;
    /// assert_eq!(PageCount::new(25).fraction_of(PageCount::new(100)), 0.25);
    /// assert_eq!(PageCount::new(25).fraction_of(PageCount::ZERO), 0.0);
    /// ```
    pub fn fraction_of(self, total: PageCount) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }

    /// True when the count is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for PageCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pages", self.0)
    }
}

impl Add for PageCount {
    type Output = PageCount;
    fn add(self, rhs: PageCount) -> PageCount {
        PageCount(self.0 + rhs.0)
    }
}

impl AddAssign for PageCount {
    fn add_assign(&mut self, rhs: PageCount) {
        self.0 += rhs.0;
    }
}

impl Sub for PageCount {
    type Output = PageCount;
    fn sub(self, rhs: PageCount) -> PageCount {
        PageCount(self.0 - rhs.0)
    }
}

impl SubAssign for PageCount {
    fn sub_assign(&mut self, rhs: PageCount) {
        self.0 -= rhs.0;
    }
}

impl Sum for PageCount {
    fn sum<I: Iterator<Item = PageCount>>(iter: I) -> PageCount {
        PageCount(iter.map(|p| p.0).sum())
    }
}

impl From<u64> for PageCount {
    fn from(n: u64) -> Self {
        PageCount(n)
    }
}

/// A size in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from raw bytes.
    pub const fn new(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib * 1024)
    }

    /// Creates a size from mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib * 1024 * 1024)
    }

    /// Creates a size from gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib * 1024 * 1024 * 1024)
    }

    /// Returns the raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Number of whole pages needed to hold this many bytes (rounds up).
    ///
    /// ```
    /// # use sdfm_types::size::ByteSize;
    /// assert_eq!(ByteSize::new(4097).pages_ceil().get(), 2);
    /// ```
    pub const fn pages_ceil(self) -> PageCount {
        PageCount(self.0.div_ceil(PAGE_SIZE as u64))
    }

    /// The fraction `self / total`, or 0.0 when `total` is zero.
    pub fn fraction_of(self, total: ByteSize) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const UNITS: [(&str, u64); 4] = [
            ("GiB", 1 << 30),
            ("MiB", 1 << 20),
            ("KiB", 1 << 10),
            ("B", 1),
        ];
        for (name, scale) in UNITS {
            if self.0 >= scale {
                let whole = self.0 / scale;
                let frac = (self.0 % scale) * 10 / scale;
                if frac == 0 {
                    return write!(f, "{whole} {name}");
                }
                return write!(f, "{whole}.{frac} {name}");
            }
        }
        write!(f, "0 B")
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        ByteSize(iter.map(|b| b.0).sum())
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        ByteSize(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_bytes_roundtrip() {
        let p = PageCount::new(3);
        assert_eq!(p.bytes().get(), 3 * 4096);
        assert_eq!(p.bytes().pages_ceil(), p);
    }

    #[test]
    fn pages_ceil_rounds_up() {
        assert_eq!(ByteSize::new(0).pages_ceil(), PageCount::ZERO);
        assert_eq!(ByteSize::new(1).pages_ceil().get(), 1);
        assert_eq!(ByteSize::new(4096).pages_ceil().get(), 1);
        assert_eq!(ByteSize::new(4097).pages_ceil().get(), 2);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(ByteSize::from_kib(4).get(), 4096);
        assert_eq!(ByteSize::from_mib(1).get(), 1 << 20);
        assert_eq!(ByteSize::from_gib(2).get(), 2u64 << 30);
    }

    #[test]
    fn fraction_handles_zero_denominator() {
        assert_eq!(ByteSize::new(5).fraction_of(ByteSize::ZERO), 0.0);
        assert_eq!(ByteSize::new(1).fraction_of(ByteSize::new(4)), 0.25);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: PageCount = [1u64, 2, 3].into_iter().map(PageCount::new).sum();
        assert_eq!(total.get(), 6);
        let total: ByteSize = [10u64, 20].into_iter().map(ByteSize::new).sum();
        assert_eq!(total.get(), 30);
        assert_eq!(
            PageCount::new(1).saturating_sub(PageCount::new(5)),
            PageCount::ZERO
        );
        assert_eq!(
            ByteSize::new(1).saturating_sub(ByteSize::new(5)),
            ByteSize::ZERO
        );
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(ByteSize::new(0).to_string(), "0 B");
        assert_eq!(ByteSize::new(512).to_string(), "512 B");
        assert_eq!(ByteSize::from_kib(4).to_string(), "4 KiB");
        assert_eq!(ByteSize::new(1536).to_string(), "1.5 KiB");
        assert_eq!(ByteSize::from_gib(1).to_string(), "1 GiB");
        assert_eq!(PageCount::new(2).to_string(), "2 pages");
    }
}
