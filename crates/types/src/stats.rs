//! Summary statistics used by the fleet-level evaluation figures.
//!
//! The paper's figures are distributions: CDFs of per-job quantities
//! (Figures 3, 7, 8, 9), violin/box summaries across machines (Figures 2
//! and 6), and percentile-based SLO checks (the 98th-percentile promotion
//! rate). This module provides exact, deterministic implementations of those
//! summaries over `f64` samples.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::SdfmError;

/// A percentile in `[0, 100]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Percentile(f64);

impl Percentile {
    /// The median.
    pub const P50: Percentile = Percentile(50.0);
    /// The 90th percentile.
    pub const P90: Percentile = Percentile(90.0);
    /// The 98th percentile — the fleet-wide SLO enforcement point (§5.3).
    pub const P98: Percentile = Percentile(98.0);
    /// The 99th percentile.
    pub const P99: Percentile = Percentile(99.0);

    /// Creates a percentile.
    ///
    /// # Errors
    ///
    /// Returns [`SdfmError::InvalidParameter`] unless `0 <= p <= 100`.
    pub fn new(p: f64) -> Result<Self, SdfmError> {
        if p.is_finite() && (0.0..=100.0).contains(&p) {
            Ok(Percentile(p))
        } else {
            Err(SdfmError::invalid_parameter(format!(
                "percentile must be in [0, 100], got {p}"
            )))
        }
    }

    /// Returns the percentile value in `[0, 100]`.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the percentile as a quantile in `[0, 1]`.
    pub fn quantile(self) -> f64 {
        self.0 / 100.0
    }
}

impl fmt::Display for Percentile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Computes the `p`-th percentile of `samples` by linear interpolation
/// between closest ranks (the same convention as numpy's default).
///
/// Returns `None` for an empty sample set. Does not require the input to be
/// sorted; NaN samples are ignored.
///
/// # Examples
///
/// ```
/// use sdfm_types::stats::{percentile, Percentile};
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, Percentile::P50), Some(2.5));
/// ```
pub fn percentile(samples: &[f64], p: Percentile) -> Option<f64> {
    let mut xs: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered above"));
    Some(percentile_of_sorted(&xs, p))
}

/// Like [`percentile`], but assumes `sorted` is already ascending and
/// NaN-free. Useful when taking many percentiles of the same data.
///
/// # Panics
///
/// Panics if `sorted` is empty.
pub fn percentile_of_sorted(sorted: &[f64], p: Percentile) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p.quantile() * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Arithmetic mean; `None` for an empty set. NaN samples are ignored.
pub fn mean(samples: &[f64]) -> Option<f64> {
    let (sum, n) = samples
        .iter()
        .filter(|x| !x.is_nan())
        .fold((0.0, 0u64), |(s, n), &x| (s + x, n + 1));
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// The five-number summary plus 1.5×IQR whiskers — the statistics drawn by
/// the violin/box plots of Figures 2 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumberSummary {
    /// Smallest sample.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Lower whisker: `max(min, q1 - 1.5*IQR)`.
    pub whisker_lo: f64,
    /// Upper whisker: `min(max, q3 + 1.5*IQR)`.
    pub whisker_hi: f64,
    /// Number of samples summarized.
    pub count: usize,
}

impl FiveNumberSummary {
    /// Summarizes a sample set.
    ///
    /// Returns `None` when `samples` is empty (after dropping NaNs).
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        let mut xs: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered above"));
        let q1 = percentile_of_sorted(&xs, Percentile::new(25.0).expect("25 is valid"));
        let median = percentile_of_sorted(&xs, Percentile::P50);
        let q3 = percentile_of_sorted(&xs, Percentile::new(75.0).expect("75 is valid"));
        let iqr = q3 - q1;
        let min = xs[0];
        let max = *xs.last().expect("non-empty");
        Some(FiveNumberSummary {
            min,
            q1,
            median,
            q3,
            max,
            whisker_lo: (q1 - 1.5 * iqr).max(min),
            whisker_hi: (q3 + 1.5 * iqr).min(max),
            count: xs.len(),
        })
    }

    /// The interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for FiveNumberSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.count
        )
    }
}

/// An empirical cumulative distribution function over `f64` samples.
///
/// Built once from samples, then queried for fractions-below and for
/// evenly spaced plot points (the series the CDF figures print).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples, ignoring NaNs.
    ///
    /// # Errors
    ///
    /// Returns [`SdfmError::EmptyInput`] when no non-NaN samples remain.
    pub fn from_samples(samples: &[f64]) -> Result<Self, SdfmError> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
        if sorted.is_empty() {
            return Err(SdfmError::empty_input("cdf requires at least one sample"));
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered above"));
        Ok(Cdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of samples `<= x`.
    ///
    /// ```
    /// # use sdfm_types::stats::Cdf;
    /// let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
    /// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
    /// ```
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let n_below = self.sorted.partition_point(|&s| s <= x);
        n_below as f64 / self.sorted.len() as f64
    }

    /// The value at percentile `p`.
    pub fn value_at(&self, p: Percentile) -> f64 {
        percentile_of_sorted(&self.sorted, p)
    }

    /// `steps + 1` evenly spaced `(value, cumulative fraction)` points from
    /// p0 to p100, suitable for printing a CDF series.
    ///
    /// # Panics
    ///
    /// Panics when `steps` is zero.
    pub fn series(&self, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps > 0, "series needs at least one step");
        (0..=steps)
            .map(|i| {
                let q = i as f64 / steps as f64;
                let p = Percentile::new(q * 100.0).expect("q in [0,1]");
                (percentile_of_sorted(&self.sorted, p), q)
            })
            .collect()
    }

    /// Access to the sorted samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_linear_interpolation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, Percentile::P50), Some(2.5));
        assert_eq!(percentile(&xs, Percentile::new(0.0).unwrap()), Some(1.0));
        assert_eq!(percentile(&xs, Percentile::new(100.0).unwrap()), Some(4.0));
        // p25 of [1,2,3,4]: rank = 0.25*3 = 0.75 -> 1 + 0.75*(2-1) = 1.75
        assert_eq!(percentile(&xs, Percentile::new(25.0).unwrap()), Some(1.75));
    }

    #[test]
    fn percentile_single_sample_and_empty() {
        assert_eq!(percentile(&[7.0], Percentile::P98), Some(7.0));
        assert_eq!(percentile(&[], Percentile::P50), None);
        assert_eq!(percentile(&[f64::NAN], Percentile::P50), None);
    }

    #[test]
    fn percentile_ignores_nan() {
        let xs = [1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&xs, Percentile::P50), Some(2.0));
    }

    #[test]
    fn percentile_rejects_out_of_range() {
        assert!(Percentile::new(-1.0).is_err());
        assert!(Percentile::new(100.1).is_err());
        assert!(Percentile::new(f64::NAN).is_err());
        assert!(Percentile::new(98.0).is_ok());
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[f64::NAN, 4.0]), Some(4.0));
    }

    #[test]
    fn five_number_summary_of_uniform() {
        let xs: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let s = FiveNumberSummary::from_samples(&xs).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 51.0);
        assert_eq!(s.max, 101.0);
        assert_eq!(s.q1, 26.0);
        assert_eq!(s.q3, 76.0);
        assert_eq!(s.iqr(), 50.0);
        // whiskers clamp to data range here since 26-75 < 1 is false:
        // q1 - 1.5*50 = -49 -> clamped to min=1
        assert_eq!(s.whisker_lo, 1.0);
        assert_eq!(s.whisker_hi, 101.0);
        assert_eq!(s.count, 101);
    }

    #[test]
    fn five_number_summary_whiskers_inside_range() {
        // Outlier-heavy data: whisker must stop short of max.
        let mut xs: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        xs.push(1000.0);
        let s = FiveNumberSummary::from_samples(&xs).unwrap();
        assert!(s.whisker_hi < 1000.0);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn five_number_summary_empty() {
        assert!(FiveNumberSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn cdf_fraction_and_values() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.value_at(Percentile::P50), 2.5);
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn cdf_series_is_monotonic() {
        let xs: Vec<f64> = (0..50).map(|i| ((i * 37) % 50) as f64).collect();
        let cdf = Cdf::from_samples(&xs).unwrap();
        let series = cdf.series(20);
        assert_eq!(series.len(), 21);
        for w in series.windows(2) {
            assert!(w[1].0 >= w[0].0, "values must be non-decreasing");
            assert!(w[1].1 >= w[0].1, "fractions must be non-decreasing");
        }
    }

    #[test]
    fn cdf_rejects_empty() {
        assert!(Cdf::from_samples(&[]).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Percentile::P98.to_string(), "p98");
        let s = FiveNumberSummary::from_samples(&[1.0, 2.0, 3.0]).unwrap();
        assert!(s.to_string().contains("med=2.000"));
    }
}
