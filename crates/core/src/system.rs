//! The single-machine far-memory system facade.

use sdfm_agent::TraceRecord;
use sdfm_agent::{AgentParams, SloConfig};
use sdfm_cluster::{Machine, TelemetryDb};
use sdfm_kernel::{KernelConfig, MachineStats, MemcgStats};
use sdfm_types::error::SdfmError;
use sdfm_types::ids::{ClusterId, JobId, MachineId};
use sdfm_types::size::ByteSize;
use sdfm_types::time::{SimDuration, SimTime, MINUTE};
use sdfm_workloads::profile::JobProfile;

/// Configuration for a [`FarMemorySystem`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Machine/kernel parameters.
    pub kernel: KernelConfig,
    /// Node-agent control parameters.
    pub agent: AgentParams,
    /// The far-memory SLO.
    pub slo: SloConfig,
    /// Trace export period.
    pub export_period: SimDuration,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            kernel: KernelConfig::default(),
            agent: AgentParams::default(),
            slo: SloConfig::default(),
            export_period: SimDuration::from_secs(300),
        }
    }
}

/// One machine running software-defined far memory over simulated jobs.
///
/// This is the embedding-facing API: submit jobs, advance time, observe
/// savings. Internally it is the same kernel + node agent stack the
/// cluster simulation runs.
#[derive(Debug)]
pub struct FarMemorySystem {
    machine: Machine,
    telemetry: TelemetryDb,
    now: SimTime,
    next_job: u64,
}

impl FarMemorySystem {
    /// Boots a system.
    pub fn new(config: SystemConfig) -> Self {
        FarMemorySystem {
            machine: Machine::new(
                MachineId::new(0),
                ClusterId::new(0),
                config.kernel,
                config.agent,
                config.slo,
                config.export_period,
            ),
            telemetry: TelemetryDb::new(),
            now: SimTime::ZERO,
            next_job: 1,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Admits a job described by `profile`.
    ///
    /// # Errors
    ///
    /// [`SdfmError::InvalidParameter`] when the profile fails validation or
    /// the machine lacks capacity.
    pub fn add_job(&mut self, profile: JobProfile) -> Result<JobId, SdfmError> {
        profile.validate()?;
        let id = JobId::new(self.next_job);
        if !self
            .machine
            .try_place(id, &profile, self.now, 0x5DF0 ^ self.next_job)
        {
            return Err(SdfmError::invalid_parameter(format!(
                "machine cannot host {} ({} free)",
                profile.total_pages(),
                self.machine.free_frames()
            )));
        }
        self.next_job += 1;
        Ok(id)
    }

    /// Removes a job immediately.
    pub fn remove_job(&mut self, job: JobId) {
        self.machine.remove_job(job);
    }

    /// Advances one minute: workload accesses, kstaled/kreclaimd on their
    /// cadences, the agent's control decision, telemetry.
    pub fn step_minute(&mut self) {
        self.now += MINUTE;
        self.machine.step_minute(self.now, &mut self.telemetry);
    }

    /// Advances `minutes` minutes.
    pub fn run_minutes(&mut self, minutes: u64) {
        for _ in 0..minutes {
            self.step_minute();
        }
    }

    /// Machine-level memory accounting.
    pub fn machine_stats(&self) -> MachineStats {
        self.machine.kernel().machine_stats()
    }

    /// DRAM currently saved by compression.
    pub fn memory_saved(&self) -> ByteSize {
        self.machine_stats().bytes_saved()
    }

    /// A job's kernel counters.
    ///
    /// # Errors
    ///
    /// [`SdfmError::InvalidParameter`] when the job is not running here.
    pub fn job_stats(&self, job: JobId) -> Result<MemcgStats, SdfmError> {
        self.machine
            .kernel()
            .memcg(job)
            .map(|cg| cg.stats())
            .map_err(|e| SdfmError::invalid_parameter(e.to_string()))
    }

    /// Accumulated telemetry.
    pub fn telemetry(&self) -> &TelemetryDb {
        &self.telemetry
    }

    /// Drains exported trace records (for the offline model).
    pub fn take_traces(&mut self) -> Vec<TraceRecord> {
        self.telemetry.take_traces()
    }

    /// Rolls out new agent parameters.
    pub fn set_agent_params(&mut self, params: AgentParams) {
        self.machine.set_agent_params(params);
    }

    /// Jobs currently running.
    pub fn job_count(&self) -> usize {
        self.machine.job_count()
    }
}

impl Default for FarMemorySystem {
    fn default() -> Self {
        Self::new(SystemConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfm_compress::gen::CompressibilityMix;
    use sdfm_workloads::profile::{DiurnalPattern, JobPriority, RateBucket};

    fn profile(pages: u64) -> JobProfile {
        JobProfile {
            template: "test".into(),
            rate_buckets: vec![
                RateBucket {
                    pages: pages / 5,
                    rate_per_sec: 0.5,
                },
                RateBucket {
                    pages: pages - pages / 5,
                    rate_per_sec: 1e-9,
                },
            ],
            diurnal: DiurnalPattern::FLAT,
            mix: CompressibilityMix::fleet_default(),
            cpu_cores: 2.0,
            write_fraction: 0.1,
            burst_interval: None,
            priority: JobPriority::Batch,
            lifetime: SimDuration::from_hours(100),
        }
    }

    #[test]
    fn end_to_end_savings_materialize() {
        let mut sys = FarMemorySystem::new(SystemConfig {
            agent: AgentParams::new(95.0, SimDuration::from_mins(4)).unwrap(),
            ..SystemConfig::default()
        });
        let job = sys.add_job(profile(5_000)).unwrap();
        sys.run_minutes(30);
        let saved = sys.memory_saved();
        assert!(
            saved.get() > 2_000 * 4096 / 2,
            "saved only {saved} after 30 minutes"
        );
        let js = sys.job_stats(job).unwrap();
        assert!(js.zswapped_pages > 1_000);
        assert!(!sys.telemetry().machine_snapshots().is_empty());
        assert!(!sys.take_traces().is_empty());
    }

    #[test]
    fn add_job_validates_and_checks_capacity() {
        let mut sys = FarMemorySystem::default();
        let mut bad = profile(100);
        bad.cpu_cores = 0.0;
        assert!(sys.add_job(bad).is_err());
        let too_big = profile(10_000_000);
        assert!(sys.add_job(too_big).is_err());
        assert_eq!(sys.job_count(), 0);
    }

    #[test]
    fn remove_job_frees_capacity() {
        let mut sys = FarMemorySystem::default();
        let before = sys.machine_stats().free;
        let job = sys.add_job(profile(1_000)).unwrap();
        assert!(sys.machine_stats().free < before);
        sys.remove_job(job);
        assert_eq!(sys.machine_stats().free, before);
        assert!(sys.job_stats(job).is_err());
    }

    #[test]
    fn clock_advances_per_minute() {
        let mut sys = FarMemorySystem::default();
        sys.run_minutes(7);
        assert_eq!(sys.now().as_secs(), 7 * 60);
    }
}
