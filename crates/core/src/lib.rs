//! Software-defined far memory: the end-to-end system.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates: proactively compressing cold pages into a
//! software-defined far memory tier under a strict promotion-rate SLO,
//! with ML-based autotuning of the control plane.
//!
//! * [`FarMemorySystem`] — the single-machine product: kernel + node
//!   agent + telemetry behind one API. Embed this to run software-defined
//!   far memory over simulated jobs.
//! * [`FleetSim`] — the fleet-scale longitudinal simulator: thousands of
//!   statistically-modeled jobs across the ten-cluster synthetic fleet,
//!   with the real §4.3 controller making per-job decisions each window.
//!   All fleet-level figures derive from it.
//! * [`TcoModel`] — the §6.1 total-cost-of-ownership arithmetic (coverage
//!   × cold ceiling × compression savings → DRAM cost reduction).
//! * [`AutotunePipeline`] — the §5.3 loop: GP-Bandit suggestions evaluated
//!   against the fast far memory model, yielding tuned `(K, S)`.
//! * [`experiments`] — reproductions of every figure and headline table in
//!   the paper's evaluation, consumed by the `sdfm-bench` binaries.
//!
//! # Examples
//!
//! ```
//! use sdfm_core::{FarMemorySystem, SystemConfig};
//! use sdfm_workloads::templates::JobTemplate;
//! use rand::SeedableRng;
//!
//! let mut system = FarMemorySystem::new(SystemConfig::default());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut profile = JobTemplate::WebFrontend.sample_profile(&mut rng);
//! # for b in &mut profile.rate_buckets { b.pages = (b.pages / 100).max(1); }
//! let job = system.add_job(profile).expect("capacity available");
//! system.run_minutes(5);
//! assert!(system.machine_stats().resident.get() > 0);
//! # let _ = job;
//! ```

#![warn(missing_docs)]

pub mod autotune;
pub mod experiments;
pub mod fleet_sim;
pub mod system;
pub mod tco;

pub use autotune::{AutotunePipeline, TuneTrial};
pub use fleet_sim::{
    FleetSim, FleetSimConfig, FleetSimError, FleetWindowStats, JobWindowStat, RatioSource,
};
pub use system::{FarMemorySystem, SystemConfig};
pub use tco::TcoModel;
