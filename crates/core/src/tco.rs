//! The total-cost-of-ownership model (§6.1, §6.3).
//!
//! The paper's arithmetic: with cold-memory coverage `C` (fraction of cold
//! memory actually stored in far memory), a cold-memory ceiling `F`
//! (fraction of total memory that is cold at the minimum threshold — 32%
//! fleet-wide), and compression ratio `r`, the DRAM freed is
//! `C × F × (1 − 1/r)` of total capacity. At the paper's measured points
//! (`C = 20%`, `F = 32%`, `r = 3`) that is 4.3% — "4–5% savings in memory
//! TCO", with compressed pages being "67% or higher memory cost reduction"
//! (`1 − 1/3`).

use serde::{Deserialize, Serialize};

use sdfm_kernel::CostModel;
use sdfm_types::error::SdfmError;

/// TCO arithmetic for a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoModel {
    /// Effective compression ratio of stored pages.
    pub compression_ratio: f64,
    /// DRAM cost per GiB (arbitrary currency; only ratios matter).
    pub dram_cost_per_gib: f64,
    /// CPU cost per core-second, for netting out compression overhead.
    pub cpu_cost_per_core_sec: f64,
}

impl TcoModel {
    /// The paper's measured operating point: 3× ratio.
    pub fn paper_default() -> Self {
        TcoModel {
            compression_ratio: 3.0,
            dram_cost_per_gib: 5.0,
            cpu_cost_per_core_sec: 1e-5,
        }
    }

    /// Creates a validated model.
    ///
    /// # Errors
    ///
    /// [`SdfmError::InvalidParameter`] unless `compression_ratio > 1` and
    /// the costs are non-negative.
    pub fn new(
        compression_ratio: f64,
        dram_cost_per_gib: f64,
        cpu_cost_per_core_sec: f64,
    ) -> Result<Self, SdfmError> {
        if compression_ratio <= 1.0 || !compression_ratio.is_finite() {
            return Err(SdfmError::invalid_parameter(format!(
                "compression ratio {compression_ratio} must exceed 1"
            )));
        }
        if dram_cost_per_gib < 0.0 || cpu_cost_per_core_sec < 0.0 {
            return Err(SdfmError::invalid_parameter("costs must be non-negative"));
        }
        Ok(TcoModel {
            compression_ratio,
            dram_cost_per_gib,
            cpu_cost_per_core_sec,
        })
    }

    /// A model whose ratio is the [`CostModel`]'s *realized* compression
    /// ratio — so TCO arithmetic runs off the same measured number that
    /// sizes the simulated store, not an independent constant.
    ///
    /// # Errors
    ///
    /// [`SdfmError::InvalidParameter`] if the cost model's ratio does not
    /// exceed 1× (a realized ratio at or below unity means compression
    /// saves nothing and the TCO question is moot).
    pub fn from_cost(cost: &CostModel) -> Result<Self, SdfmError> {
        let paper = Self::paper_default();
        Self::new(
            cost.ratio(),
            paper.dram_cost_per_gib,
            paper.cpu_cost_per_core_sec,
        )
    }

    /// Memory-cost reduction of a compressed page: `1 − 1/r` (the
    /// headline "67% or higher" at `r = 3`).
    pub fn compressed_page_cost_reduction(&self) -> f64 {
        1.0 - 1.0 / self.compression_ratio
    }

    /// Fraction of total DRAM freed given coverage `C` and cold ceiling
    /// `F` (both fractions).
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are in `[0, 1]`.
    pub fn dram_savings_fraction(&self, coverage: f64, cold_ceiling: f64) -> f64 {
        assert!((0.0..=1.0).contains(&coverage), "coverage {coverage}");
        assert!(
            (0.0..=1.0).contains(&cold_ceiling),
            "cold ceiling {cold_ceiling}"
        );
        coverage * cold_ceiling * self.compressed_page_cost_reduction()
    }

    /// Absolute DRAM savings for a fleet of `total_gib` memory.
    pub fn dram_savings_cost(&self, coverage: f64, cold_ceiling: f64, total_gib: f64) -> f64 {
        self.dram_savings_fraction(coverage, cold_ceiling) * total_gib * self.dram_cost_per_gib
    }

    /// CPU cost of compression work: `core_seconds` spent compressing and
    /// decompressing.
    pub fn cpu_overhead_cost(&self, core_seconds: f64) -> f64 {
        core_seconds * self.cpu_cost_per_core_sec
    }

    /// Net saving: DRAM saved minus CPU spent.
    pub fn net_savings(
        &self,
        coverage: f64,
        cold_ceiling: f64,
        total_gib: f64,
        cpu_core_seconds: f64,
    ) -> f64 {
        self.dram_savings_cost(coverage, cold_ceiling, total_gib)
            - self.cpu_overhead_cost(cpu_core_seconds)
    }

    /// The break-even per-GiB cost of a device tier, as a fraction of
    /// DRAM cost: `1/r`.
    ///
    /// A compressed page still occupies `1/r` of its size in DRAM, so a
    /// device tier (SSD, remote) only beats buying that DRAM when its
    /// per-GiB cost ratio is *below* this number — at the paper's 3×
    /// ratio, an SSD must cost less than a third of DRAM per GiB before a
    /// second tier wins on capacity cost alone (latency aside, §8).
    pub fn tier_break_even_cost_ratio(&self) -> f64 {
        1.0 / self.compression_ratio
    }

    /// Fraction of total DRAM cost freed by parking covered cold memory
    /// on a device tier whose per-GiB cost is `tier_cost_ratio` × DRAM:
    /// `C × F × (1 − c)`. The device-tier analogue of
    /// [`dram_savings_fraction`](Self::dram_savings_fraction), which it
    /// beats exactly when `c < 1/r`.
    ///
    /// # Panics
    ///
    /// Panics unless all three arguments are in `[0, 1]` — a tier costing
    /// more than DRAM can never save money by holding pages.
    pub fn tier_savings_fraction(
        &self,
        coverage: f64,
        cold_ceiling: f64,
        tier_cost_ratio: f64,
    ) -> f64 {
        assert!((0.0..=1.0).contains(&coverage), "coverage {coverage}");
        assert!(
            (0.0..=1.0).contains(&cold_ceiling),
            "cold ceiling {cold_ceiling}"
        );
        assert!(
            (0.0..=1.0).contains(&tier_cost_ratio),
            "tier cost ratio {tier_cost_ratio}"
        );
        coverage * cold_ceiling * (1.0 - tier_cost_ratio)
    }

    /// Per-byte transfer dollars accrued by costed tiers, converted from
    /// the chain's nanocent ledger
    /// ([`BackendStats::bytes_transferred`](sdfm_kernel::BackendStats) ×
    /// the config's per-byte price) into the model's currency units
    /// (1 unit = 100 cents = 10¹¹ nanocents).
    pub fn transfer_cost(&self, nanocents: u64) -> f64 {
        nanocents as f64 * 1e-11
    }

    /// Net saving of a device tier: DRAM cost freed minus the tier's
    /// transfer traffic — the "when does an SSD tier beat buying DRAM"
    /// number. Compare against [`net_savings`](Self::net_savings) for the
    /// compressed-RAM alternative on the same coverage.
    pub fn net_tier_savings(
        &self,
        coverage: f64,
        cold_ceiling: f64,
        total_gib: f64,
        tier_cost_ratio: f64,
        transfer_nanocents: u64,
    ) -> f64 {
        self.tier_savings_fraction(coverage, cold_ceiling, tier_cost_ratio)
            * total_gib
            * self.dram_cost_per_gib
            - self.transfer_cost(transfer_nanocents)
    }
}

impl Default for TcoModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        let m = TcoModel::paper_default();
        // 3× ratio → 67% per-page cost reduction.
        assert!((m.compressed_page_cost_reduction() - 2.0 / 3.0).abs() < 1e-12);
        // 20% coverage × 32% ceiling × 67% → 4.3% — the paper's "4–5%".
        let savings = m.dram_savings_fraction(0.20, 0.32);
        assert!(
            (0.04..0.05).contains(&savings),
            "savings {savings} outside 4–5%"
        );
    }

    #[test]
    fn validation() {
        assert!(TcoModel::new(1.0, 1.0, 0.0).is_err());
        assert!(TcoModel::new(f64::NAN, 1.0, 0.0).is_err());
        assert!(TcoModel::new(2.0, -1.0, 0.0).is_err());
        assert!(TcoModel::new(2.0, 1.0, 0.0).is_ok());
    }

    #[test]
    fn savings_scale_linearly() {
        let m = TcoModel::paper_default();
        let a = m.dram_savings_fraction(0.10, 0.32);
        let b = m.dram_savings_fraction(0.20, 0.32);
        assert!((b - 2.0 * a).abs() < 1e-12);
        // Cost in currency: 1000 GiB fleet.
        let cost = m.dram_savings_cost(0.20, 0.32, 1_000.0);
        assert!((cost - 0.0426666 * 1_000.0 * 5.0).abs() < 1.0);
    }

    #[test]
    fn net_savings_subtract_cpu() {
        let m = TcoModel::paper_default();
        let gross = m.dram_savings_cost(0.2, 0.32, 1_000.0);
        let net = m.net_savings(0.2, 0.32, 1_000.0, 1e6);
        assert!(net < gross);
        assert!((gross - net - m.cpu_overhead_cost(1e6)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn coverage_out_of_range_panics() {
        TcoModel::paper_default().dram_savings_fraction(1.5, 0.3);
    }

    /// The tier arithmetic: a device tier beats compressed RAM exactly
    /// when its per-GiB cost is below the `1/r` break-even ratio.
    #[test]
    fn tier_break_even_against_compression() {
        let m = TcoModel::paper_default();
        let be = m.tier_break_even_cost_ratio();
        assert!((be - 1.0 / 3.0).abs() < 1e-12);
        let (c, f) = (0.20, 0.32);
        let zswap = m.dram_savings_fraction(c, f);
        // A cheap SSD (10% of DRAM cost) frees more dollars than the
        // compressed store on the same coverage.
        assert!(m.tier_savings_fraction(c, f, 0.10) > zswap);
        // An expensive device (50% of DRAM) loses to compression.
        assert!(m.tier_savings_fraction(c, f, 0.50) < zswap);
        // At the break-even ratio the two are equal.
        assert!((m.tier_savings_fraction(c, f, be) - zswap).abs() < 1e-12);
    }

    #[test]
    fn net_tier_savings_subtract_transfer_traffic() {
        let m = TcoModel::paper_default();
        let gross = m.net_tier_savings(0.2, 0.32, 1_000.0, 0.1, 0);
        assert!(gross > 0.0);
        // 10^11 nanocents = 1 currency unit.
        let net = m.net_tier_savings(0.2, 0.32, 1_000.0, 0.1, 100_000_000_000);
        assert!((gross - net - 1.0).abs() < 1e-9);
        // Enough remote traffic can erase the capacity win entirely.
        let drowned = m.net_tier_savings(0.2, 0.32, 1_000.0, 0.1, u64::MAX);
        assert!(drowned < 0.0);
    }

    #[test]
    #[should_panic(expected = "tier cost ratio")]
    fn tier_cost_ratio_out_of_range_panics() {
        TcoModel::paper_default().tier_savings_fraction(0.2, 0.3, 1.5);
    }

    /// The measured pipeline reaches the TCO arithmetic: a cost model with
    /// measured ratios produces per-page savings in the paper's "67% or
    /// higher" regime.
    #[test]
    fn tco_from_measured_cost_model() {
        use sdfm_compress::codec::CodecKind;
        let cost = CostModel::measured_ratios(CodecKind::Lzo);
        let m = TcoModel::from_cost(&cost).expect("measured ratio exceeds 1×");
        assert!((m.compression_ratio - cost.ratio()).abs() < 1e-12);
        assert!(
            m.compressed_page_cost_reduction() >= 0.55,
            "measured per-page reduction {} below the paper's regime",
            m.compressed_page_cost_reduction()
        );
        // A degenerate unit ratio is rejected, not silently accepted.
        let unit = CostModel {
            ratio_permille: 1000,
            ..cost
        };
        assert!(TcoModel::from_cost(&unit).is_err());
    }
}
