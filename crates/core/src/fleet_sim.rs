//! The fleet-scale longitudinal simulator.
//!
//! Drives thousands of statistically-modeled jobs (`sdfm-workloads`'
//! analytic model, validated against the page-level kernel) through the
//! *real* §4.3 controller (`sdfm-agent`'s [`JobController`]), window by
//! window, across the ten-cluster synthetic fleet. Far-memory occupancy,
//! coverage, promotion rates, and compression CPU are derived per job per
//! window; churn replaces expired jobs with fresh samples from their
//! cluster's mix.
//!
//! Every fleet-level figure (1, 2, 3, 5, 6, 7, 8) is computed from this
//! simulator's output.

use std::sync::OnceLock;

use crossbeam::thread;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sdfm_agent::{AgentParams, JobController, SloConfig};
use sdfm_compress::codec::CodecKind;
use sdfm_compress::measure::ClassPayloadTable;
use sdfm_kernel::{
    ChainPolicy, CostModel, CpuAccounting, Kernel, KernelConfig, PrefetchPolicy,
    PrefetchWindowCounts, StorePressure,
};
use sdfm_pool::WorkerPool;
use sdfm_types::arith::permille_of;
use sdfm_types::histogram::{PageAge, PromotionHistogram};
use sdfm_types::ids::{ClusterId, JobId};
use sdfm_types::rate::PromotionRate;
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime, DAY, KSTALED_SCAN_PERIOD};
use sdfm_workloads::fleet::FleetSpec;
use sdfm_workloads::profile::JobProfile;
use sdfm_workloads::{PageLevelDriver, StatJobModel, WindowObservation};

/// How the per-job window step fans out across workers. Both engines
/// produce bit-identical output; they differ only in scheduling cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelEngine {
    /// A persistent [`WorkerPool`] created lazily on the first parallel
    /// window and shut down when the simulator drops. Removes the
    /// per-window thread create/join round trip — the production default.
    #[default]
    PersistentPool,
    /// The pre-pool behavior: spawn scoped threads on every window. Kept
    /// as the baseline the `fleet_sim` bench compares the pool against.
    SpawnPerCall,
}

/// Where a job's realized compression outcome (acceptance fraction and
/// ratio of stored pages) comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RatioSource {
    /// Derived per job from a *measured* per-class payload table: the real
    /// codec compressed generated pages of every class, and each job's
    /// [`CompressibilityMix`](sdfm_compress::gen::CompressibilityMix)
    /// weights those measurements. The default — the paper's ~3× ratio and
    /// ~31% rejection emerge from the codec, not from constants.
    Measured(ClassPayloadTable),
    /// The static modeled fallback: the mix's *typical* incompressibility
    /// (class labels, no codec in the loop) and the [`CostModel`]'s
    /// configured ratio. Kept as an explicit mode for what-if runs with
    /// hand-set ratios.
    Modeled,
}

impl Default for RatioSource {
    fn default() -> Self {
        // lzo is the paper's production codec (§5.1); the table is
        // deterministic and cached process-wide.
        RatioSource::Measured(*ClassPayloadTable::measured_default(CodecKind::Lzo))
    }
}

/// Errors from the fleet window step. These all indicate a simulator
/// invariant breaking mid-window — a worker dying or the sharded
/// reassembly losing a job — and are surfaced as typed values so callers
/// decide whether to abort or retry instead of the simulator panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetSimError {
    /// A parallel window worker panicked; the payload is the panic
    /// message surfaced by the engine.
    WorkerPanicked(String),
    /// The machine-boundary shard cuts failed to cover a job: the slot at
    /// `index` came back empty during index-ordered reassembly.
    MissingJobSlot {
        /// The original job index whose window stat never arrived.
        index: usize,
    },
}

impl std::fmt::Display for FleetSimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetSimError::WorkerPanicked(msg) => {
                write!(f, "fleet window worker panicked: {msg}")
            }
            FleetSimError::MissingJobSlot { index } => {
                write!(f, "job index {index} missing from sharded window step")
            }
        }
    }
}

impl std::error::Error for FleetSimError {}

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// The fleet blueprint.
    pub spec: FleetSpec,
    /// Initial agent parameters.
    pub params: AgentParams,
    /// The SLO.
    pub slo: SloConfig,
    /// Control/observation window (the paper's trace granularity is 5
    /// minutes).
    pub window: SimDuration,
    /// Per-bucket rate noise (0 = deterministic expectations).
    pub noise_sigma: f64,
    /// Replace expired jobs with fresh samples.
    pub churn: bool,
    /// Per-page compression costs for CPU accounting.
    pub cost: CostModel,
    /// Where per-job realized compression ratios come from.
    pub ratio_source: RatioSource,
    /// Store-lifecycle policy: how fast a disabled job's zswap store
    /// decays back to DRAM (mirrors the kernel's writeback machinery).
    pub pressure: StorePressure,
    /// Optional three-tier demotion chain (zswap → SSD → remote): each
    /// window one decay step of a job's coldest stored pages sinks down
    /// the ladder, and a disabled job's store demotes instead of writing
    /// back. `None` (the default) keeps the two-tier behavior unchanged.
    pub chain: Option<ChainPolicy>,
    /// Optional correlation prefetcher (stride + Markov next-page
    /// prediction) sitting between the demotion chain and the promotion
    /// path. Stat-tier jobs apply the policy's statistical window
    /// recurrence ([`PrefetchPolicy::window_counts`]); page-level jobs
    /// below the fidelity cutoff run the real per-memcg predictor. `None`
    /// (the default) keeps the demand-fault-only behavior, bit for bit.
    pub prefetch: Option<PrefetchPolicy>,
    /// Worker threads for the per-job window step (1 = sequential). The
    /// output is identical at any thread count: each job's state is
    /// self-contained, and results are aggregated in job order.
    pub threads: usize,
    /// How the parallel window step schedules its workers.
    pub engine: ParallelEngine,
    /// Hierarchical fidelity cutoff: machines whose **global index** —
    /// cluster-major order straight from the spec (cluster 0's machines
    /// first, then cluster 1's, …) — is *below* this count run their jobs
    /// on real page-level kernels ([`Kernel`] + [`PageLevelDriver`]:
    /// per-page ages, kstaled sweeps, actual histograms), while the rest
    /// keep the validated [`StatJobModel`] recurrence. The selection is a
    /// pure function of the spec, so it is deterministic and identical at
    /// any thread count. `0` (the default) runs the whole fleet on the
    /// stat recurrence — the previous behavior, bit for bit.
    pub fidelity_cutoff: usize,
}

impl FleetSimConfig {
    /// A small default fleet (10 clusters × `machines_per_cluster`).
    pub fn new(machines_per_cluster: usize) -> Self {
        FleetSimConfig {
            spec: FleetSpec::paper_default(machines_per_cluster),
            params: AgentParams::default(),
            slo: SloConfig::default(),
            window: SimDuration::from_secs(300),
            noise_sigma: StatJobModel::DEFAULT_SIGMA,
            churn: true,
            cost: CostModel::PAPER_DEFAULT,
            ratio_source: RatioSource::default(),
            pressure: StorePressure::PAPER_DEFAULT,
            chain: None,
            prefetch: None,
            // 0 = unrequested: honors `SDFM_THREADS`, then host parallelism,
            // so CI runs on different hosts resolve reproducibly.
            threads: sdfm_pool::resolve_threads(0),
            engine: ParallelEngine::default(),
            fidelity_cutoff: 0,
        }
    }
}

/// One job's outcome in one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobWindowStat {
    /// The job.
    pub job: JobId,
    /// Hosting cluster.
    pub cluster: ClusterId,
    /// Machine index within the cluster.
    pub machine: usize,
    /// Total pages.
    pub total_pages: u64,
    /// Working set.
    pub working_set: u64,
    /// Cold pages at the minimum threshold.
    pub cold_pages: u64,
    /// Pages held in far memory this window.
    pub far_pages: u64,
    /// Promotions this window.
    pub promotions: u64,
    /// The threshold in force (scans).
    pub threshold_scans: u8,
    /// Whether zswap was active (past warmup).
    pub enabled: bool,
    /// Normalized promotion rate (fraction of WSS per minute).
    pub normalized_rate: f64,
    /// Compression events charged this window (stored pages only; rejected
    /// attempts are counted in `rejected_events`).
    pub compress_events: u64,
    /// Compression attempts the cutoff rejected this window — wasted
    /// cycles the paper still pays for (§5.1). Each cold page is attempted
    /// once and then marked incompressible, so a steady cold mass stops
    /// generating new rejections.
    pub rejected_events: u64,
    /// Decompression events charged this window (promotions plus store
    /// writebacks).
    pub decompress_events: u64,
    /// Pages sitting in the zswap store at the end of this window (equals
    /// `far_pages` while enabled; decays toward zero while disabled).
    pub store_pages: u64,
    /// Page frames of real memory the job's store occupies at its realized
    /// compression ratio (`store_pages / ratio`, rounded up).
    pub store_frames: u64,
    /// The job's realized compression ratio over stored pages, per-mille.
    pub ratio_permille: u32,
    /// Store pages written back to DRAM this window by the lifecycle
    /// policy (each one a charged decompression).
    pub writeback_events: u64,
    /// Pages parked on the SSD tier at window end (chain runs only).
    pub ssd_pages: u64,
    /// Pages parked on the remote tier at window end (chain runs only).
    pub remote_pages: u64,
    /// Store pages demoted into the SSD tier this window (each a charged
    /// decompression plus a device store).
    pub ssd_demotions: u64,
    /// Store pages that overflowed the SSD quota onto the remote tier
    /// this window.
    pub remote_demotions: u64,
    /// Device pages faulted back from the SSD tier this window.
    pub ssd_faults: u64,
    /// Device pages faulted back from the remote tier this window.
    pub remote_faults: u64,
    /// Predicted pages the prefetcher promoted ahead of demand this
    /// window (each a charged decompression, like any promotion).
    pub prefetch_issued: u64,
    /// Issued prefetches whose demand fault was fully hidden (these are
    /// *excluded* from `promotions`, which counts demand stalls).
    pub prefetch_used: u64,
    /// Issued prefetches reclaimed again untouched (mispredictions the
    /// store recompresses — wasted promote/compress cycles).
    pub prefetch_wasted: u64,
    /// Demand faults that beat the scan-cadence drain to a correctly
    /// predicted page (timeliness loss; these stay in `promotions`).
    pub prefetch_late: u64,
    /// The job's CPU footprint (cores).
    pub cpu_cores: f64,
}

/// Fleet-wide aggregates for one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetWindowStats {
    /// Window end.
    pub at: SimTime,
    /// Sum of job memory (pages).
    pub total_pages: u64,
    /// Sum of cold pages at the minimum threshold.
    pub cold_pages: u64,
    /// Sum of far-memory pages.
    pub far_pages: u64,
    /// Sum of pages still in the zswap store (includes disabled jobs'
    /// decaying stores, which `far_pages` excludes).
    pub store_pages: u64,
    /// Sum of page frames those stores actually occupy at each job's
    /// realized ratio — the DRAM the compressed pool costs.
    pub store_frames: u64,
    /// Sum of pages parked on the SSD tier (chain runs only).
    pub ssd_pages: u64,
    /// Sum of pages parked on the remote tier (chain runs only).
    pub remote_pages: u64,
    /// Sum of prefetched promotions issued this window.
    pub prefetch_issued: u64,
    /// Sum of issued prefetches whose demand fault was hidden.
    pub prefetch_used: u64,
    /// Sum of issued prefetches reclaimed again untouched.
    pub prefetch_wasted: u64,
    /// Sum of demand faults that beat the prefetch drain.
    pub prefetch_late: u64,
    /// Per-job detail.
    pub per_job: Vec<JobWindowStat>,
}

impl FleetWindowStats {
    /// Fleet cold-memory coverage this window.
    ///
    /// Far memory is always a subset of the cold memory at the minimum
    /// threshold, so coverage lies in `[0, 1]`. A window with no cold
    /// memory at all (e.g. an empty fleet) has nothing to cover and
    /// explicitly reports zero coverage rather than dividing by zero.
    pub fn coverage(&self) -> f64 {
        debug_assert!(
            self.far_pages <= self.cold_pages,
            "far pages {} exceed cold pages {}: thresholds below the SLO minimum?",
            self.far_pages,
            self.cold_pages
        );
        if self.cold_pages == 0 {
            0.0
        } else {
            self.far_pages as f64 / self.cold_pages as f64
        }
    }

    /// Fleet cold fraction (cold / total).
    pub fn cold_fraction(&self) -> f64 {
        if self.total_pages == 0 {
            0.0
        } else {
            self.cold_pages as f64 / self.total_pages as f64
        }
    }
}

/// A high-fidelity job below the cutoff: a real page-level [`Kernel`]
/// driven window by window, observed through the same histogram surface
/// the stat model synthesizes — so everything downstream of the
/// observation (controller, per-mille store arithmetic, CPU ledger) is
/// shared between the two fidelity tiers.
struct PageLevelJob {
    kernel: Kernel,
    driver: PageLevelDriver,
    /// Simulated seconds elapsed since the last kstaled scan (the 300 s
    /// window is not a multiple of the 120 s scan period; the remainder
    /// carries over so long runs scan at exactly the kernel cadence).
    scan_debt_secs: u64,
    /// Snapshot of the kernel's cumulative promotion histogram at the
    /// previous window; the observation needs the per-window delta.
    prev_promo: PromotionHistogram,
}

impl PageLevelJob {
    fn observe(&mut self, at: SimTime, window: SimDuration) -> WindowObservation {
        let job = self.driver.job();
        // Interleave drive slices with kstaled scans at the real cadence.
        // Running the window's touches first and its scans back-to-back
        // afterwards would let the second scan see zero accessed bits and
        // age *every* page — the kernel would report its entire footprint
        // cold. Slicing the window at scan boundaries (carrying the
        // remainder across windows) reproduces the page-level ordering
        // the cross-validation suite validates against.
        let start = at.as_secs().saturating_sub(window.as_secs());
        let mut cursor = 0u64;
        let mut remaining = window.as_secs();
        while remaining > 0 {
            let until_scan = KSTALED_SCAN_PERIOD.as_secs() - self.scan_debt_secs;
            let slice = remaining.min(until_scan);
            cursor += slice;
            self.driver
                .run_window(
                    &mut self.kernel,
                    SimTime::from_secs(start + cursor),
                    SimDuration::from_secs(slice),
                )
                // sdfm-lint: allow(P1) reason="the memcg is created at spawn and never torn down while the job lives"
                .expect("page-level drive failed");
            self.scan_debt_secs += slice;
            remaining -= slice;
            if self.scan_debt_secs >= KSTALED_SCAN_PERIOD.as_secs() {
                self.kernel.run_scan();
                self.scan_debt_secs = 0;
            }
        }
        // sdfm-lint: allow(P1) reason="the memcg is created at spawn and never torn down while the job lives"
        let cg = self.kernel.memcg(job).expect("page-level memcg vanished");
        let cold_hist = cg.cold_age_histogram().clone();
        let promo = cg.promotion_histogram().clone();
        let mut promo_delta = PromotionHistogram::new();
        for ((age, cur), (_, prev)) in promo.iter().zip(self.prev_promo.iter()) {
            if cur > prev {
                promo_delta.record_promotion(age, cur - prev);
            }
        }
        self.prev_promo = promo;
        let working_set = PageCount::new(cold_hist.pages_younger_than(PageAge::from_scans(1)));
        WindowObservation {
            at,
            window,
            working_set,
            cold_hist,
            promo_delta,
            multiplier: 1.0,
        }
    }
}

/// Which engine produces a job's per-window observations.
// The stat variant stays inline by design: virtually every job in a
// fleet-scale run is stat-tier, and boxing it would put a pointer chase
// on the hot observe path to shrink an enum only the rare page-level
// jobs (already boxed) care about.
#[allow(clippy::large_enum_variant)]
enum JobEngine {
    /// The validated analytic recurrence (machines at or above the
    /// fidelity cutoff — the fleet-scale default).
    Stat(StatJobModel),
    /// A real page-level kernel (machines below the cutoff). Boxed: the
    /// kernel holds per-page state and would bloat every stat job's
    /// `SimJob` by its full size otherwise.
    PageLevel(Box<PageLevelJob>),
}

struct SimJob {
    id: JobId,
    cluster: ClusterId,
    cluster_idx: usize,
    machine: usize,
    engine: JobEngine,
    controller: JobController,
    cumulative_promo: PromotionHistogram,
    expires: SimTime,
    /// Fraction of the job's pages the cutoff accepts, per-mille — from the
    /// measured table (or the modeled fallback) over the job's mix.
    stored_permille: u32,
    /// Realized compression ratio of the job's stored pages, per-mille.
    ratio_permille: u32,
    /// High-water mark of cold pages already attempted and rejected: the
    /// kernel marks incompressible pages so their wasted compression is
    /// charged once, not every window (§5.1).
    rejected_marked: u64,
    cpu_cores: f64,
    total_pages: u64,
    /// Pages currently in the job's zswap store. Tracks `far_pages` while
    /// zswap is enabled; after a disable the store-lifecycle policy decays
    /// it window by window (writebacks, each a charged decompression)
    /// until it reaches zero — mirroring the kernel's writeback machinery.
    /// On re-enable, only growth beyond what is still stored is charged
    /// as compression work.
    store_pages: u64,
    /// Pages parked on the SSD tier (chain runs only).
    ssd_pages: u64,
    /// Pages parked on the remote tier (chain runs only).
    remote_pages: u64,
}

// The parallel window step hands chunks of jobs to scoped worker threads;
// everything a job owns (the stat model with its RNG, the real controller)
// must therefore cross thread boundaries.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<StatJobModel>();
    assert_send::<PageLevelJob>();
    assert_send::<JobController>();
    assert_send::<SimJob>();
};

/// The simulator.
pub struct FleetSim {
    config: FleetSimConfig,
    jobs: Vec<SimJob>,
    now: SimTime,
    next_id: u64,
    rng: StdRng,
    /// Per-worker output buffers — `(original job index, stat)` pairs,
    /// kept across windows so the parallel step's per-segment output
    /// allocates nothing in steady state.
    scratch: Vec<Vec<(usize, JobWindowStat)>>,
    /// The persistent worker pool, created lazily on the first parallel
    /// window ([`ParallelEngine::PersistentPool`] only) and shut down —
    /// workers joined — when the simulator drops.
    pool: OnceLock<WorkerPool>,
    /// Cumulative CPU charged at the configured [`CostModel`] for every
    /// compression (stored and rejected) and decompression the fleet
    /// performed — same ledger the page-level kernel keeps.
    cpu: CpuAccounting,
}

impl std::fmt::Debug for FleetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSim")
            .field("jobs", &self.jobs.len())
            .field("now", &self.now)
            .finish()
    }
}

impl FleetSim {
    /// Builds the initial job population.
    pub fn new(config: FleetSimConfig, seed: u64) -> Self {
        let mut sim = FleetSim {
            config,
            jobs: Vec::new(),
            // Start the clock one day in so that a stationary population
            // of job ages fits strictly in the past.
            now: SimTime::ZERO + DAY,
            next_id: 1,
            rng: StdRng::seed_from_u64(seed),
            scratch: Vec::new(),
            pool: OnceLock::new(),
            cpu: CpuAccounting::default(),
        };
        let clusters = sim.config.spec.clusters.clone();
        for (ci, cluster) in clusters.iter().enumerate() {
            for machine in 0..cluster.machines {
                let (lo, hi) = cluster.jobs_per_machine;
                let count = sim.rng.gen_range(lo..=hi);
                for _ in 0..count {
                    let template = cluster.sample_template(&mut sim.rng);
                    let profile = template.sample_profile(&mut sim.rng);
                    sim.spawn_job(ci, machine, profile, true);
                }
            }
        }
        sim
    }

    fn spawn_job(
        &mut self,
        cluster_idx: usize,
        machine: usize,
        profile: JobProfile,
        stagger: bool,
    ) {
        let id = JobId::new(self.next_id);
        self.next_id += 1;
        let seed = self.rng.gen();
        // The initial population must look stationary: job ages are spread
        // over their lifetimes (capped at a day). Churn replacements start
        // fresh.
        let age_head_start = if stagger {
            let span = profile.lifetime.as_secs().min(DAY.as_secs()).max(1);
            self.rng.gen_range(0..span)
        } else {
            0
        };
        let started = SimTime::from_secs(self.now.as_secs().saturating_sub(age_head_start));
        let expires = started + profile.lifetime;
        let (stored_permille, ratio_permille) = match &self.config.ratio_source {
            RatioSource::Measured(table) => (
                table.stored_permille(&profile.mix),
                table.ratio_permille(&profile.mix),
            ),
            RatioSource::Modeled => (
                1000u32.saturating_sub(
                    (profile.mix.incompressible_fraction() * 1000.0).round() as u32,
                ),
                self.config.cost.ratio_permille,
            ),
        };
        let cpu_cores = profile.cpu_cores;
        let total_pages = profile.total_pages().get();
        let cluster = self.config.spec.clusters[cluster_idx].id;
        // Both arms consume exactly the one `seed` drawn above, so the
        // sim-level RNG stream — and therefore every *other* job's seed and
        // the churn sequence — is untouched by where the cutoff falls.
        let engine = if self.page_level_machine(cluster_idx, machine) {
            let capacity = profile.total_pages() + profile.total_pages();
            let mut kernel = Kernel::new(KernelConfig {
                capacity,
                codec: CodecKind::Lzo,
                cost: self.config.cost,
                // Below the cutoff the policy runs for real: the kernel's
                // per-memcg predictor, drained at kstaled cadence.
                prefetch: self
                    .config
                    .prefetch
                    .map(|p| p.kernel_config())
                    .unwrap_or_default(),
            });
            let mut driver = PageLevelDriver::new(id, profile, seed);
            driver
                .populate(&mut kernel)
                // sdfm-lint: allow(P1) reason="the kernel is freshly booted with twice the job's pages of DRAM, so populate cannot hit a limit"
                .expect("page-level populate failed");
            JobEngine::PageLevel(Box::new(PageLevelJob {
                kernel,
                driver,
                scan_debt_secs: 0,
                prev_promo: PromotionHistogram::new(),
            }))
        } else {
            let mut model = StatJobModel::with_noise(profile, seed, self.config.noise_sigma);
            model.set_start(started);
            JobEngine::Stat(model)
        };
        self.jobs.push(SimJob {
            id,
            cluster,
            cluster_idx,
            machine,
            engine,
            controller: JobController::new(self.config.params, self.config.slo, started),
            cumulative_promo: PromotionHistogram::new(),
            expires,
            stored_permille,
            ratio_permille,
            rejected_marked: 0,
            cpu_cores,
            total_pages,
            store_pages: 0,
            ssd_pages: 0,
            remote_pages: 0,
        });
    }

    /// Whether the machine at `(cluster_idx, machine)` sits below the
    /// fidelity cutoff. The global index is cluster-major straight from
    /// the spec, so the answer is a pure function of config — stable
    /// across churn, threads, and window count.
    fn page_level_machine(&self, cluster_idx: usize, machine: usize) -> bool {
        if self.config.fidelity_cutoff == 0 {
            return false;
        }
        let global: usize = self.config.spec.clusters[..cluster_idx]
            .iter()
            .map(|c| c.machines)
            .sum::<usize>()
            + machine;
        global < self.config.fidelity_cutoff
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Jobs alive.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Rolls out new agent parameters fleet-wide (takes effect at the next
    /// window).
    pub fn set_params(&mut self, params: AgentParams) {
        self.config.params = params;
        for j in &mut self.jobs {
            j.controller.set_params(params);
        }
    }

    /// Advances one job by one window: observe, decide, and charge the
    /// window's far memory, promotions, and compression CPU.
    ///
    /// Deliberately a free-standing function of the job and copied window
    /// scalars — it never touches the sim-level RNG or any shared state, so
    /// disjoint job chunks can step concurrently with results identical to
    /// the sequential order.
    fn step_job(
        j: &mut SimJob,
        now: SimTime,
        window: SimDuration,
        min_threshold: PageAge,
        pressure: StorePressure,
        chain: Option<ChainPolicy>,
        prefetch: Option<PrefetchPolicy>,
    ) -> JobWindowStat {
        let obs = match &mut j.engine {
            JobEngine::Stat(model) => model.observe(now, window),
            JobEngine::PageLevel(pl) => pl.observe(now, window),
        };
        j.cumulative_promo.merge(&obs.promo_delta);
        let decision = j
            .controller
            .on_minute(now, &obs.cold_hist, &j.cumulative_promo);
        let cold_min = obs.cold_hist.pages_colder_than(min_threshold);
        let enabled = decision.zswap_enabled;
        let threshold = decision.threshold;
        // Integer per-mille scaling: the realized acceptance fraction of
        // the job's mix decides how much of the cold mass actually lands
        // in the store. Exact integer arithmetic keeps the step
        // scheduling-independent bit for bit.
        let stored = j.stored_permille as u64;
        let (far, promos, reject_candidates) = if enabled {
            let cold_at_thr = obs.cold_hist.pages_colder_than(threshold);
            let promos_at_thr = obs.promo_delta.promotions_colder_than(threshold);
            let far = permille_of(cold_at_thr, stored);
            (far, permille_of(promos_at_thr, stored), cold_at_thr - far)
        } else {
            (0, 0, 0)
        };
        // Prefetch recurrence (shared with the offline model): of the
        // window's would-be demand promotions, the policy's coverage and
        // aggressiveness decide how many were predicted and promoted
        // ahead of demand (`used` — those stalls vanish), how many extra
        // mispredictions rode along (`wasted` — promoted and recompressed
        // for nothing), and how many correct predictions lost the race to
        // the fault (`late` — they stall like any demand miss). With no
        // policy every count is zero and the arithmetic below reduces to
        // the pre-prefetch expressions bit for bit.
        let pf = match prefetch {
            Some(p) if enabled => p.window_counts(promos),
            _ => PrefetchWindowCounts::default(),
        };
        // Demand promotions the job actually stalls on; `used ≤ promos`
        // by construction of the recurrence.
        let demand_promos = promos - pf.used;
        // CPU events: only pages *entering* the store compress. An enabled
        // window is charged the growth beyond what is still stored, plus
        // the re-compression of pages that faulted out and went cold again
        // (the promotion rate). Incompressible candidates are attempted
        // once — wasted cycles the paper still pays (§5.1) — then marked,
        // so only cold mass beyond the high-water mark generates new
        // rejections. While disabled, the store-lifecycle policy writes
        // the dead store back window by window — each writeback a charged
        // decompression — so a long-disabled job's store reaches zero and
        // a much later re-enable pays for the full cold mass.
        let mut ssd_faults = 0u64;
        let mut remote_faults = 0u64;
        let (compress_events, rejected_events, writeback_events) = if enabled {
            // With a chain attached, `far` is the job's *total* far-memory
            // footprint; device residency comes off the top and the store
            // holds the rest, so demoted pages are never recompressed.
            let device = j.ssd_pages + j.remote_pages;
            let store_target = if far >= device {
                far - device
            } else {
                // The cold mass shrank below the device residency: the
                // warmest device pages fault back (SSD before remote),
                // each a charged device load.
                let mut need = device - far;
                ssd_faults = need.min(j.ssd_pages);
                j.ssd_pages -= ssd_faults;
                need -= ssd_faults;
                remote_faults = need.min(j.remote_pages);
                j.remote_pages -= remote_faults;
                0
            };
            // Every page leaving the store goes cold again and
            // recompresses: demand promotions plus issued prefetches,
            // i.e. `promos + wasted` (used prefetches replace demand
            // faults one for one).
            let events = store_target.saturating_sub(j.store_pages) + promos + pf.wasted;
            j.store_pages = store_target;
            let fresh_rejects = reject_candidates.saturating_sub(j.rejected_marked);
            j.rejected_marked = j.rejected_marked.max(reject_candidates);
            (events, fresh_rejects, 0)
        } else if chain.is_some() {
            // A chain gives the dead store somewhere slower to go: the
            // demotion step below drains it down the ladder instead of
            // writing it back to DRAM (the kernel's
            // `store_lifecycle_tick` demote path).
            (0, 0, 0)
        } else {
            let writebacks = pressure.decay_step(j.store_pages);
            j.store_pages -= writebacks;
            (0, 0, writebacks)
        };
        // Demotion trickle: one decay step of the store's coldest pages
        // sinks to the SSD tier up to the per-job quota and overflows to
        // remote — under the chain's own policy while enabled, under the
        // lifecycle pressure while disabled. Each demotion loads the page
        // out of the store (a charged decompression) and stores it on the
        // device (charged tier I/O), exactly like the kernel's
        // `demote_coldest`.
        let (ssd_demotions, remote_demotions) = match chain {
            Some(cp) => {
                let policy = if enabled { cp.demote } else { pressure };
                let step = policy.decay_step(j.store_pages);
                let to_ssd = step.min(cp.ssd_quota_pages.saturating_sub(j.ssd_pages));
                let to_remote = step - to_ssd;
                j.store_pages -= step;
                j.ssd_pages += to_ssd;
                j.remote_pages += to_remote;
                (to_ssd, to_remote)
            }
            None => (0, 0),
        };
        let demote_events = ssd_demotions + remote_demotions;
        let rate = PromotionRate::from_count(demand_promos, window)
            .normalized(decision.working_set)
            .fraction_per_min();
        // The frames the store occupies at the job's realized ratio —
        // this, not the raw page count, is what the compressed pool costs.
        let store_frames = if j.store_pages == 0 {
            0
        } else {
            (j.store_pages * 1000).div_ceil(j.ratio_permille.max(1000) as u64)
        };
        JobWindowStat {
            job: j.id,
            cluster: j.cluster,
            machine: j.machine,
            total_pages: j.total_pages,
            working_set: decision.working_set.get(),
            cold_pages: cold_min,
            far_pages: far,
            promotions: demand_promos,
            threshold_scans: threshold.as_scans(),
            enabled,
            normalized_rate: rate,
            compress_events,
            rejected_events,
            // Every store departure decompresses exactly once: demand
            // promotions, prefetched promotions, writebacks, demotions.
            decompress_events: demand_promos + pf.issued + writeback_events + demote_events,
            store_pages: j.store_pages,
            store_frames,
            ratio_permille: j.ratio_permille,
            writeback_events,
            ssd_pages: j.ssd_pages,
            remote_pages: j.remote_pages,
            ssd_demotions,
            remote_demotions,
            ssd_faults,
            remote_faults,
            prefetch_issued: pf.issued,
            prefetch_used: pf.used,
            prefetch_wasted: pf.wasted,
            prefetch_late: pf.late,
            cpu_cores: j.cpu_cores,
        }
    }

    /// Advances one window and returns the fleet stats.
    ///
    /// The per-job work fans out across [`FleetSimConfig::threads`]
    /// workers — by default on the simulator's persistent [`WorkerPool`] —
    /// sharded at *machine* granularity (segment cuts fall only on
    /// machine boundaries, and results are reassembled by original job
    /// index, so scheduling never reaches the output); job churn then
    /// runs sequentially on the sim-level RNG. The result — including the
    /// order of `per_job` and the RNG stream — is bit-for-bit identical
    /// at any thread count and under either [`ParallelEngine`].
    ///
    /// # Errors
    ///
    /// [`FleetSimError`] when a parallel worker panics or the sharded
    /// reassembly comes back with a hole — both simulator bugs surfaced
    /// as typed values rather than panics, so harnesses decide how to
    /// fail. The window's side effects (job state, CPU ledger) are
    /// undefined after an error; callers should not step further.
    pub fn step_window(&mut self) -> Result<FleetWindowStats, FleetSimError> {
        self.now += self.config.window;
        let now = self.now;
        let window = self.config.window;
        let min_threshold = self.config.slo.min_threshold;
        let pressure = self.config.pressure;
        let chain = self.config.chain;
        let prefetch = self.config.prefetch;
        let mut stats = FleetWindowStats {
            at: now,
            total_pages: 0,
            cold_pages: 0,
            far_pages: 0,
            store_pages: 0,
            store_frames: 0,
            ssd_pages: 0,
            remote_pages: 0,
            prefetch_issued: 0,
            prefetch_used: 0,
            prefetch_wasted: 0,
            prefetch_late: 0,
            per_job: Vec::with_capacity(self.jobs.len()),
        };

        let workers = self.config.threads.max(1).min(self.jobs.len().max(1));
        if workers <= 1 {
            for j in &mut self.jobs {
                stats.per_job.push(Self::step_job(
                    j,
                    now,
                    window,
                    min_threshold,
                    pressure,
                    chain,
                    prefetch,
                ));
            }
        } else {
            // Shard at MACHINE granularity. Jobs are ordered by index
            // pairs — `self.jobs` itself never moves, so the churn RNG
            // sequence and `per_job` order are untouched — into
            // cluster-major machine order, and segment cuts fall only on
            // machine boundaries. All of one machine's jobs (in
            // particular a page-level kernel and its co-resident
            // neighbors) therefore step on a single worker, and the sort
            // and cut points are pure functions of the job list, so the
            // partition — and with it the output — is identical at any
            // thread count.
            let mut order: Vec<(usize, &mut SimJob)> =
                self.jobs.iter_mut().enumerate().collect();
            order.sort_by_key(|(i, j)| (j.cluster_idx, j.machine, *i));
            let len = order.len();
            let target = len.div_ceil(workers);
            // Segment lengths: close a segment at the first machine
            // boundary at or past the per-worker target.
            let mut seg_lens: Vec<usize> = Vec::with_capacity(workers);
            let mut start = 0usize;
            for k in 1..=len {
                let boundary = k == len || {
                    let a = &order[k - 1].1;
                    let b = &order[k].1;
                    (a.cluster_idx, a.machine) != (b.cluster_idx, b.machine)
                };
                if boundary && k - start >= target {
                    seg_lens.push(k - start);
                    start = k;
                }
            }
            if start < len {
                seg_lens.push(len - start);
            }
            let mut segments: Vec<&mut [(usize, &mut SimJob)]> =
                Vec::with_capacity(seg_lens.len());
            let mut rest = order.as_mut_slice();
            for &n in &seg_lens {
                let tmp = rest;
                let (seg, tail) = tmp.split_at_mut(n);
                segments.push(seg);
                rest = tail;
            }
            self.scratch.resize_with(segments.len(), Vec::new);
            match self.config.engine {
                ParallelEngine::PersistentPool => {
                    let threads = self.config.threads;
                    let pool = self.pool.get_or_init(|| WorkerPool::new(threads));
                    let tasks: Vec<_> = segments
                        .into_iter()
                        .zip(self.scratch.iter_mut())
                        .map(|(seg, buf)| {
                            move || {
                                buf.clear();
                                buf.extend(seg.iter_mut().map(|(i, j)| {
                                    let stat = Self::step_job(
                                        j, now, window, min_threshold, pressure, chain, prefetch,
                                    );
                                    (*i, stat)
                                }));
                            }
                        })
                        .collect();
                    if let Err(e) = pool.run(tasks) {
                        // A job-step panic is a simulator bug; surface it
                        // as a typed error instead of tearing the caller
                        // down with a re-raised panic.
                        return Err(FleetSimError::WorkerPanicked(e.to_string()));
                    }
                }
                ParallelEngine::SpawnPerCall => {
                    if let Err(e) = thread::scope(|s| {
                        for (seg, buf) in segments.into_iter().zip(self.scratch.iter_mut()) {
                            s.spawn(move |_| {
                                buf.clear();
                                buf.extend(seg.iter_mut().map(|(i, j)| {
                                    let stat = Self::step_job(
                                        j, now, window, min_threshold, pressure, chain, prefetch,
                                    );
                                    (*i, stat)
                                }));
                            });
                        }
                    }) {
                        return Err(FleetSimError::WorkerPanicked(format!("{e:?}")));
                    }
                }
            }
            // Index-ordered reassembly: every original index appears in
            // exactly one segment, so slotting by index reproduces the
            // sequential `per_job` order bit for bit. That partition is
            // an invariant of the machine-boundary cuts, and it is
            // *checked*: a hole is reported as a typed error rather than
            // assumed away.
            let mut slots: Vec<Option<JobWindowStat>> = vec![None; len];
            for buf in &mut self.scratch {
                for (i, stat) in buf.drain(..) {
                    slots[i] = Some(stat);
                }
            }
            for (index, slot) in slots.into_iter().enumerate() {
                match slot {
                    Some(stat) => stats.per_job.push(stat),
                    None => return Err(FleetSimError::MissingJobSlot { index }),
                }
            }
        }
        let cost = self.config.cost;
        for s in &stats.per_job {
            stats.total_pages += s.total_pages;
            stats.cold_pages += s.cold_pages;
            stats.far_pages += s.far_pages;
            stats.store_pages += s.store_pages;
            stats.store_frames += s.store_frames;
            stats.ssd_pages += s.ssd_pages;
            stats.remote_pages += s.remote_pages;
            stats.prefetch_issued += s.prefetch_issued;
            stats.prefetch_used += s.prefetch_used;
            stats.prefetch_wasted += s.prefetch_wasted;
            stats.prefetch_late += s.prefetch_late;
            // Device traffic is priced by the chain's backend configs:
            // demotions pay the tier's store cost, fault-backs its fault
            // cost — the same per-op arithmetic the page-level chain
            // charges through `charge_tier_io`.
            let (tier_io_ns, tier_io_events) = match chain {
                Some(cp) => (
                    s.ssd_demotions * cp.ssd.store_op_ns()
                        + s.remote_demotions * cp.remote.store_op_ns()
                        + s.ssd_faults * cp.ssd.fault_ns()
                        + s.remote_faults * cp.remote.fault_ns(),
                    s.ssd_demotions + s.remote_demotions + s.ssd_faults + s.remote_faults,
                ),
                None => (0, 0),
            };
            // Charge the window's events into the fleet CPU ledger exactly
            // like the page-level kernel would: rejected attempts burn the
            // same compression cycles, counted both in the total and apart.
            self.cpu.merge(&CpuAccounting {
                compress_ns: (s.compress_events + s.rejected_events) * cost.compress_ns,
                decompress_ns: s.decompress_events * cost.decompress_ns,
                compress_events: s.compress_events + s.rejected_events,
                decompress_events: s.decompress_events,
                rejected_compress_events: s.rejected_events,
                tier_io_ns,
                tier_io_events,
            });
        }

        // Churn: replace expired jobs.
        if self.config.churn {
            let expired: Vec<usize> = self
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| self.now >= j.expires)
                .map(|(i, _)| i)
                .collect();
            for i in expired.into_iter().rev() {
                let old = self.jobs.swap_remove(i);
                let cluster = self.config.spec.clusters[old.cluster_idx].clone();
                let template = cluster.sample_template(&mut self.rng);
                let profile = template.sample_profile(&mut self.rng);
                self.spawn_job(old.cluster_idx, old.machine, profile, false);
            }
        }
        Ok(stats)
    }

    /// Runs `windows` windows, returning all stats (callers doing long
    /// runs should prefer folding over [`step_window`](Self::step_window)).
    ///
    /// # Errors
    ///
    /// The first [`FleetSimError`] any window surfaces; windows already
    /// stepped are discarded.
    pub fn run_windows(&mut self, windows: usize) -> Result<Vec<FleetWindowStats>, FleetSimError> {
        (0..windows).map(|_| self.step_window()).collect()
    }

    /// The minimum threshold in force (for reporting).
    pub fn min_threshold(&self) -> PageAge {
        self.config.slo.min_threshold
    }

    /// The cost model in force.
    pub fn cost(&self) -> CostModel {
        self.config.cost
    }

    /// Cumulative fleet CPU charged at the cost model since construction —
    /// compressions (stored and rejected, counted apart) and
    /// decompressions, same ledger as the page-level kernel.
    pub fn cpu_accounting(&self) -> CpuAccounting {
        self.cpu
    }

    /// The window length.
    pub fn window(&self) -> SimDuration {
        self.config.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfm_types::rate::NormalizedPromotionRate;
    use sdfm_types::stats::{percentile, Percentile};

    fn small_sim(seed: u64) -> FleetSim {
        let mut cfg = FleetSimConfig::new(2);
        cfg.noise_sigma = 0.1;
        FleetSim::new(cfg, seed)
    }

    #[test]
    fn population_spans_all_clusters() {
        let sim = small_sim(1);
        // 10 clusters × 2 machines × 6..=14 jobs.
        assert!(sim.job_count() >= 120 && sim.job_count() <= 280);
    }

    #[test]
    fn coverage_builds_up_after_warmup() {
        let mut sim = small_sim(2);
        let mut last = None;
        for _ in 0..24 {
            last = Some(sim.step_window().unwrap());
        }
        let s = last.unwrap();
        assert!(
            s.cold_fraction() > 0.15 && s.cold_fraction() < 0.55,
            "fleet cold fraction {} off paper scale",
            s.cold_fraction()
        );
        assert!(
            s.coverage() > 0.05,
            "coverage {} never materialized",
            s.coverage()
        );
        assert!(s.coverage() < 0.75, "coverage {} too high", s.coverage());
    }

    #[test]
    fn p98_promotion_rate_respects_slo_scale() {
        let mut sim = small_sim(3);
        // Warm up two hours, then observe one hour.
        for _ in 0..24 {
            sim.step_window().unwrap();
        }
        let mut rates = Vec::new();
        for _ in 0..12 {
            let s = sim.step_window().unwrap();
            rates.extend(
                s.per_job
                    .iter()
                    .filter(|j| j.enabled)
                    .map(|j| j.normalized_rate),
            );
        }
        let p98 = percentile(&rates, Percentile::P98).unwrap();
        let target = NormalizedPromotionRate::PAPER_SLO_TARGET.fraction_per_min();
        assert!(
            p98 <= target * 3.0,
            "p98 rate {p98} far above the SLO target {target}"
        );
    }

    #[test]
    fn churn_replaces_expired_jobs() {
        let mut cfg = FleetSimConfig::new(1);
        cfg.churn = true;
        let mut sim = FleetSim::new(cfg, 4);
        let initial: Vec<JobId> = sim.jobs.iter().map(|j| j.id).collect();
        // Batch jobs live as little as an hour; run a simulated day.
        for _ in 0..288 {
            sim.step_window().unwrap();
        }
        let now: Vec<JobId> = sim.jobs.iter().map(|j| j.id).collect();
        let survivors = now.iter().filter(|id| initial.contains(id)).count();
        assert!(survivors < initial.len(), "no churn over a simulated day");
        assert_eq!(now.len(), initial.len(), "population size preserved");
    }

    #[test]
    fn param_rollout_changes_behavior() {
        let mut a = small_sim(5);
        let mut b = small_sim(5);
        // b gets an extreme warmup: zswap effectively always off.
        b.set_params(AgentParams::new(98.0, SimDuration::from_hours(10_000)).unwrap());
        let mut far_a = 0u64;
        let mut far_b = 0u64;
        for _ in 0..12 {
            far_a += a.step_window().unwrap().far_pages;
            far_b += b.step_window().unwrap().far_pages;
        }
        assert!(far_a > 0);
        assert_eq!(far_b, 0, "infinite warmup must disable far memory");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = small_sim(7);
        let mut b = small_sim(7);
        for _ in 0..3 {
            assert_eq!(a.step_window().unwrap(), b.step_window().unwrap());
        }
    }

    /// Two independent runs at the same seed must agree *byte for byte*
    /// once serialized — stronger than `PartialEq` (which NaN payloads or
    /// `-0.0` could slip through) and exactly what the DESIGN.md
    /// determinism contract promises. The parallel step runs at an
    /// asymmetric thread count to exercise the chunked path.
    #[test]
    fn two_runs_serialize_bit_identically() {
        let run = || {
            let mut cfg = FleetSimConfig::new(2);
            cfg.noise_sigma = 0.1;
            cfg.threads = 3;
            let mut sim = FleetSim::new(cfg, 13);
            let windows = sim.run_windows(8).unwrap();
            serde_json::to_string(&windows).expect("fleet stats serialize")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        assert!(a == b, "two same-seed runs serialized differently");
    }

    #[test]
    fn step_window_identical_across_thread_counts() {
        let sim_with_threads = |threads: usize| {
            let mut cfg = FleetSimConfig::new(2);
            cfg.noise_sigma = 0.1;
            cfg.threads = threads;
            FleetSim::new(cfg, 11)
        };
        let mut seq = sim_with_threads(1);
        let mut two = sim_with_threads(2);
        let mut eight = sim_with_threads(8);
        // Long enough to cross warmup boundaries and churn at least once.
        for w in 0..16 {
            let a = seq.step_window().unwrap();
            let b = two.step_window().unwrap();
            let c = eight.step_window().unwrap();
            assert_eq!(a, b, "1 vs 2 threads diverged at window {w}");
            assert_eq!(a, c, "1 vs 8 threads diverged at window {w}");
        }
    }

    /// The persistent pool and the per-call spawn baseline must be
    /// observationally indistinguishable: same seed, same windows, same
    /// bytes. This is the contract that lets the bench compare their cost
    /// while everything else routes through the pool.
    #[test]
    fn pool_and_spawn_per_call_engines_agree() {
        let sim_with_engine = |engine: ParallelEngine| {
            let mut cfg = FleetSimConfig::new(2);
            cfg.noise_sigma = 0.1;
            cfg.threads = 4;
            cfg.engine = engine;
            FleetSim::new(cfg, 29)
        };
        let mut pooled = sim_with_engine(ParallelEngine::PersistentPool);
        let mut spawned = sim_with_engine(ParallelEngine::SpawnPerCall);
        for w in 0..12 {
            let a = pooled.step_window().unwrap();
            let b = spawned.step_window().unwrap();
            assert_eq!(a, b, "engines diverged at window {w}");
        }
    }

    #[test]
    fn reenable_charges_only_the_far_memory_delta() {
        // Deterministic expectations so far memory is stable across the
        // disable gap.
        let mut cfg = FleetSimConfig::new(2);
        cfg.noise_sigma = 0.0;
        cfg.churn = false;
        let mut sim = FleetSim::new(cfg, 9);
        let always_on = AgentParams::new(98.0, SimDuration::ZERO).unwrap();
        let never_on = AgentParams::new(98.0, SimDuration::from_hours(10_000)).unwrap();

        sim.set_params(always_on);
        let mut steady = None;
        for _ in 0..12 {
            steady = Some(sim.step_window().unwrap());
        }
        let steady = steady.unwrap();
        assert!(steady.far_pages > 0, "no far memory built up");

        // Disable fleet-wide: the store keeps most of its contents (the
        // lifecycle policy decays it by one window's step, no more).
        sim.set_params(never_on);
        let off = sim.step_window().unwrap();
        assert_eq!(off.far_pages, 0);
        assert_eq!(
            off.per_job.iter().map(|j| j.compress_events).sum::<u64>(),
            0
        );
        assert!(
            off.store_pages > 0,
            "one disabled window must not flush the store"
        );
        assert!(off.store_pages < steady.far_pages, "no decay happened");

        // Re-enable: only growth beyond the still-stored pages (plus the
        // steady promotion trickle) may be charged — not the full reservoir.
        sim.set_params(always_on);
        let back = sim.step_window().unwrap();
        assert!(back.far_pages > 0, "re-enable produced no far memory");
        let compress: u64 = back.per_job.iter().map(|j| j.compress_events).sum();
        assert!(
            compress < back.far_pages / 2,
            "re-enable recompressed the whole store: {} events for {} far pages",
            compress,
            back.far_pages
        );
    }

    /// The immortal-store regression: a disabled job's store must decay to
    /// zero under the lifecycle policy — window by window, each writeback
    /// a charged decompression — instead of surviving forever.
    #[test]
    fn disabled_store_decays_to_zero_under_lifecycle_policy() {
        let mut cfg = FleetSimConfig::new(2);
        cfg.noise_sigma = 0.0;
        cfg.churn = false;
        let pressure = cfg.pressure;
        let mut sim = FleetSim::new(cfg, 9);
        let always_on = AgentParams::new(98.0, SimDuration::ZERO).unwrap();
        let never_on = AgentParams::new(98.0, SimDuration::from_hours(10_000)).unwrap();

        sim.set_params(always_on);
        let mut steady = None;
        for _ in 0..12 {
            steady = Some(sim.step_window().unwrap());
        }
        let steady = steady.unwrap();
        assert!(steady.far_pages > 0, "no far memory built up");
        assert_eq!(steady.store_pages, steady.far_pages);

        sim.set_params(never_on);
        let mut prev = steady.store_pages;
        let mut drained_at = None;
        // The fleet store is a few hundred thousand pages; the geometric
        // phase plus per-job linear tails drain it well inside 200 windows.
        for w in 0..200 {
            let s = sim.step_window().unwrap();
            let writebacks: u64 = s.per_job.iter().map(|j| j.writeback_events).sum();
            let decompressions: u64 = s.per_job.iter().map(|j| j.decompress_events).sum();
            assert_eq!(s.far_pages, 0, "disabled fleet reported far memory");
            assert_eq!(
                s.store_pages,
                prev - writebacks,
                "store decay disagrees with the writeback count at window {w}"
            );
            assert!(
                decompressions >= writebacks,
                "writebacks were not charged as decompressions"
            );
            // Each job decays by exactly its policy step.
            for j in &s.per_job {
                let before = j.store_pages + j.writeback_events;
                assert_eq!(j.writeback_events, pressure.decay_step(before));
            }
            if s.store_pages < prev {
                // Monotone decrease while nonempty.
            } else {
                assert_eq!(s.store_pages, 0, "store stopped decaying at window {w}");
            }
            prev = s.store_pages;
            if prev == 0 {
                drained_at = Some(w);
                break;
            }
        }
        assert!(
            drained_at.is_some(),
            "store never drained: {prev} pages left"
        );

        // After a full drain, a re-enable pays for the whole cold mass
        // again — the delta-charging shortcut no longer applies.
        sim.set_params(AgentParams::new(98.0, SimDuration::ZERO).unwrap());
        let back = sim.step_window().unwrap();
        let compress: u64 = back.per_job.iter().map(|j| j.compress_events).sum();
        let promos: u64 = back.per_job.iter().map(|j| j.promotions).sum();
        assert_eq!(
            compress,
            back.far_pages + promos,
            "re-enable after a full drain must recompress everything"
        );
    }

    /// The tentpole: store sizing and CPU accounting run off *measured*
    /// per-job ratios. Over the fleet the implied aggregate ratio of the
    /// compressed pool must land in the paper's ~3× regime, emerging from
    /// the codec measurements, not from a constant.
    #[test]
    fn measured_ratios_size_the_store_in_paper_regime() {
        assert!(
            matches!(FleetSimConfig::new(1).ratio_source, RatioSource::Measured(_)),
            "measured ratios must be the default"
        );
        let mut sim = small_sim(19);
        let mut last = None;
        for _ in 0..16 {
            last = Some(sim.step_window().unwrap());
        }
        let s = last.unwrap();
        assert!(s.store_pages > 0, "no store built up");
        assert!(
            s.store_frames > 0 && s.store_frames < s.store_pages,
            "store frames {} not compressed below {} pages",
            s.store_frames,
            s.store_pages
        );
        let fleet_ratio = s.store_pages as f64 / s.store_frames as f64;
        assert!(
            (2.2..=4.6).contains(&fleet_ratio),
            "fleet-implied ratio {fleet_ratio} outside the ~3× regime"
        );
        // Per-job ratios span a real distribution (Figure 9a), not one value.
        let ratios: Vec<u32> = s
            .per_job
            .iter()
            .filter(|j| j.store_pages > 0)
            .map(|j| j.ratio_permille)
            .collect();
        assert!(ratios.len() > 10, "too few stored jobs to check spread");
        let (lo, hi) = (
            *ratios.iter().min().unwrap(),
            *ratios.iter().max().unwrap(),
        );
        assert!(hi > lo, "every job got the same ratio — not measured");
        assert!(lo >= 1000 && hi <= 20_000, "ratio bounds implausible");
    }

    /// Rejected compression attempts are charged once per cold page (the
    /// kernel marks incompressible pages), flow into the fleet CPU ledger,
    /// and stop once the cold mass is fully attempted.
    #[test]
    fn rejections_are_charged_once_and_ledgered() {
        let mut cfg = FleetSimConfig::new(2);
        cfg.noise_sigma = 0.0;
        cfg.churn = false;
        let mut sim = FleetSim::new(cfg, 9);
        sim.set_params(AgentParams::new(98.0, SimDuration::ZERO).unwrap());
        let first_windows = sim.run_windows(12).unwrap();
        let rejected_total: u64 = first_windows
            .iter()
            .flat_map(|w| w.per_job.iter())
            .map(|j| j.rejected_events)
            .sum();
        assert!(rejected_total > 0, "no rejections ever charged");
        // Steady state: the cold mass is marked; new rejections dry up.
        let late = sim.step_window().unwrap();
        let late_rejects: u64 = late.per_job.iter().map(|j| j.rejected_events).sum();
        let late_compress: u64 = late.per_job.iter().map(|j| j.compress_events).sum();
        assert!(
            late_rejects <= late_compress / 2 + 1,
            "steady-state rejections {late_rejects} still dominate {late_compress} compressions"
        );
        // The ledger saw every event, with rejects costed like stores.
        let cpu = sim.cpu_accounting();
        assert!(cpu.rejected_compress_events >= rejected_total);
        assert!(cpu.compress_events > cpu.rejected_compress_events);
        assert_eq!(
            cpu.compress_ns,
            cpu.compress_events * sim.cost().compress_ns,
            "ledger ns disagrees with events × cost"
        );
        assert!(cpu.decompress_events > 0);
    }

    /// The modeled fallback stays available and actually behaves like the
    /// static model: one fleet-wide ratio from the cost model.
    #[test]
    fn modeled_fallback_uses_static_constants() {
        let mut cfg = FleetSimConfig::new(2);
        cfg.noise_sigma = 0.0;
        cfg.ratio_source = RatioSource::Modeled;
        let mut sim = FleetSim::new(cfg, 21);
        let mut last = None;
        for _ in 0..10 {
            last = Some(sim.step_window().unwrap());
        }
        let s = last.unwrap();
        assert!(s.store_pages > 0);
        for j in s.per_job.iter().filter(|j| j.store_pages > 0) {
            assert_eq!(
                j.ratio_permille,
                CostModel::PAPER_DEFAULT.ratio_permille,
                "modeled mode must use the configured ratio"
            );
        }
    }

    /// Two-run determinism for the realized-ratio path specifically: the
    /// measured table is computed independently per run (process-wide
    /// cache aside) and the integer per-mille arithmetic is exact, so
    /// same-seed runs serialize identically even across thread counts.
    #[test]
    fn realized_ratio_path_two_runs_bit_identical() {
        let run = |threads: usize| {
            let mut cfg = FleetSimConfig::new(2);
            cfg.noise_sigma = 0.1;
            cfg.threads = threads;
            cfg.ratio_source = RatioSource::Measured(ClassPayloadTable::measure(
                CodecKind::Lzo,
                16,
                42, // independent of the cached default: measured per run
            ));
            let mut sim = FleetSim::new(cfg, 23);
            let windows = sim.run_windows(8).unwrap();
            serde_json::to_string(&windows).expect("fleet stats serialize")
        };
        let (a, b, c) = (run(1), run(1), run(4));
        assert!(a == b, "two same-seed measured runs diverged");
        assert!(a == c, "measured path diverged across thread counts");
    }

    /// Bit-identity across thread counts with store pressure active: the
    /// decay arithmetic runs inside the parallel job step, so it must not
    /// perturb the scheduling-independence contract.
    #[test]
    fn store_decay_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut cfg = FleetSimConfig::new(2);
            cfg.noise_sigma = 0.1;
            cfg.threads = threads;
            let mut sim = FleetSim::new(cfg, 17);
            let always_on = AgentParams::new(98.0, SimDuration::ZERO).unwrap();
            let never_on = AgentParams::new(98.0, SimDuration::from_hours(10_000)).unwrap();
            sim.set_params(always_on);
            let mut out = sim.run_windows(6).unwrap();
            // Disable mid-run: every job's store decays in parallel.
            sim.set_params(never_on);
            out.extend(sim.run_windows(6).unwrap());
            serde_json::to_string(&out).expect("fleet stats serialize")
        };
        let (one, two, four) = (run(1), run(2), run(4));
        assert!(one == two, "1 vs 2 threads diverged under store pressure");
        assert!(one == four, "1 vs 4 threads diverged under store pressure");
        // The disabled half must actually exercise decay.
        let parsed: Vec<FleetWindowStats> = serde_json::from_str(&one).unwrap();
        let decayed: u64 = parsed[6..]
            .iter()
            .flat_map(|w| w.per_job.iter())
            .map(|j| j.writeback_events)
            .sum();
        assert!(decayed > 0, "no writebacks in the disabled phase");
    }

    /// The three-tier chain trajectory is bit-identical at any thread
    /// count (the ISSUE's acceptance gate at threads 1/2/4), and two
    /// same-seed runs serialize to the same bytes.
    #[test]
    fn three_tier_chain_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut cfg = FleetSimConfig::new(2);
            cfg.noise_sigma = 0.1;
            cfg.threads = threads;
            // A tight per-job SSD quota so overflow reaches the remote tier.
            cfg.chain = Some(ChainPolicy::paper_default(64));
            let mut sim = FleetSim::new(cfg, 31);
            let windows = sim.run_windows(16).unwrap();
            serde_json::to_string(&windows).expect("fleet stats serialize")
        };
        let (one, again, two, four) = (run(1), run(1), run(2), run(4));
        assert!(one == again, "two same-seed chain runs diverged");
        assert!(one == two, "1 vs 2 threads diverged under the chain");
        assert!(one == four, "1 vs 4 threads diverged under the chain");
        let parsed: Vec<FleetWindowStats> = serde_json::from_str(&one).unwrap();
        let last = parsed.last().unwrap();
        // The decay trickle populated the SSD tier and its quota overflow
        // reached the remote tier.
        assert!(last.ssd_pages > 0, "nothing demoted to SSD");
        assert!(last.remote_pages > 0, "SSD quota never overflowed");
        // Demotions and fault-backs were charged as device traffic.
        for w in &parsed {
            for j in &w.per_job {
                if j.enabled {
                    // The far footprint is conserved across the ladder.
                    assert_eq!(
                        j.far_pages,
                        j.store_pages + j.ssd_pages + j.remote_pages,
                        "far-memory pages leaked between tiers"
                    );
                }
                assert_eq!(
                    j.decompress_events,
                    j.promotions + j.writeback_events + j.ssd_demotions + j.remote_demotions,
                    "demotions not charged as store loads"
                );
            }
        }
    }

    /// The hierarchical fidelity cutoff keeps the bit-identity contract:
    /// with page-level kernels running on the machines below the cutoff,
    /// the fleet trajectory still serializes to the same bytes at threads
    /// 1, 2, and 4 (the machine-boundary shard cuts guarantee a kernel
    /// and its co-resident jobs never straddle workers).
    #[test]
    fn fidelity_cutoff_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut cfg = FleetSimConfig::new(1);
            cfg.noise_sigma = 0.1;
            cfg.threads = threads;
            cfg.fidelity_cutoff = 3;
            let mut sim = FleetSim::new(cfg, 37);
            let windows = sim.run_windows(6).unwrap();
            serde_json::to_string(&windows).expect("fleet stats serialize")
        };
        let (one, again, two, four) = (run(1), run(1), run(2), run(4));
        assert!(one == again, "two same-seed cutoff runs diverged");
        assert!(one == two, "1 vs 2 threads diverged with the cutoff active");
        assert!(one == four, "1 vs 4 threads diverged with the cutoff active");
    }

    /// Turning the cutoff on must not perturb any job *outside* it:
    /// `spawn_job` draws exactly one seed per job regardless of engine, so
    /// the sim-level RNG stream — template sampling, churn, every stat
    /// job's noise seed — is identical between cutoff 0 and cutoff K. The
    /// stat-tier jobs therefore reproduce their cutoff-free trajectories
    /// bit for bit, and the page-level jobs report physically coherent
    /// stats (cold ⊆ total, far ⊆ cold, cold mass actually observed).
    #[test]
    fn cutoff_perturbs_only_the_machines_below_it() {
        let cfg = FleetSimConfig::new(1);
        let page_clusters: Vec<ClusterId> =
            cfg.spec.clusters[..2].iter().map(|c| c.id).collect();
        let run = |cutoff: usize| {
            let mut cfg = FleetSimConfig::new(1);
            cfg.noise_sigma = 0.1;
            cfg.threads = 2;
            cfg.fidelity_cutoff = cutoff;
            let mut sim = FleetSim::new(cfg, 41);
            sim.run_windows(6).unwrap()
        };
        let base = run(0);
        let cut = run(2);
        for (w, (wa, wb)) in base.iter().zip(cut.iter()).enumerate() {
            assert_eq!(wa.at, wb.at);
            assert_eq!(wa.per_job.len(), wb.per_job.len(), "population diverged");
            for (ja, jb) in wa.per_job.iter().zip(wb.per_job.iter()) {
                assert_eq!(ja.job, jb.job, "job order diverged at window {w}");
                if page_clusters.contains(&ja.cluster) {
                    continue; // below the cutoff: fidelity legitimately differs
                }
                assert_eq!(ja, jb, "stat-tier job perturbed by the cutoff at window {w}");
            }
        }
        let last = cut.last().unwrap();
        let page_jobs: Vec<&JobWindowStat> = last
            .per_job
            .iter()
            .filter(|j| page_clusters.contains(&j.cluster))
            .collect();
        assert!(!page_jobs.is_empty(), "no page-level jobs materialized");
        for j in &page_jobs {
            assert!(j.cold_pages <= j.total_pages, "cold exceeds total");
            assert!(j.far_pages <= j.cold_pages, "far exceeds cold");
        }
        assert!(
            page_jobs.iter().any(|j| j.cold_pages > 0),
            "page-level kernels observed no cold memory after 15 scans"
        );
    }

    /// With a chain attached, a disabled job's store demotes down the
    /// ladder instead of writing back to DRAM — the fast-model mirror of
    /// the kernel's `store_lifecycle_tick` demote path.
    #[test]
    fn disabled_store_demotes_instead_of_writing_back_under_chain() {
        let mut cfg = FleetSimConfig::new(2);
        cfg.noise_sigma = 0.0;
        cfg.churn = false;
        cfg.chain = Some(ChainPolicy::paper_default(128));
        let mut sim = FleetSim::new(cfg, 9);
        sim.set_params(AgentParams::new(98.0, SimDuration::ZERO).unwrap());
        let mut steady = None;
        for _ in 0..12 {
            steady = Some(sim.step_window().unwrap());
        }
        let steady = steady.unwrap();
        assert!(steady.store_pages > 0, "no store built up");

        sim.set_params(AgentParams::new(98.0, SimDuration::from_hours(10_000)).unwrap());
        let mut prev = steady.store_pages + steady.ssd_pages + steady.remote_pages;
        for w in 0..40 {
            let s = sim.step_window().unwrap();
            let writebacks: u64 = s.per_job.iter().map(|j| j.writeback_events).sum();
            let demoted: u64 = s
                .per_job
                .iter()
                .map(|j| j.ssd_demotions + j.remote_demotions)
                .sum();
            assert_eq!(writebacks, 0, "chain run wrote back at window {w}");
            // Every page leaving the store lands on a device tier: the
            // total far-memory mass is conserved while disabled.
            let held = s.store_pages + s.ssd_pages + s.remote_pages;
            assert_eq!(held, prev, "pages vanished during demotion at window {w}");
            prev = held;
            if s.store_pages == 0 {
                assert!(demoted == 0 || w > 0);
                break;
            }
            assert!(demoted > 0, "store stopped demoting at window {w}");
        }
        // Device traffic reached the fleet CPU ledger.
        let cpu = sim.cpu_accounting();
        assert!(cpu.tier_io_events > 0, "no tier I/O charged");
        assert!(cpu.tier_io_ns > 0);
    }

    /// The ISSUE acceptance gate: with the prefetcher enabled, two
    /// same-seed runs serialize to the same bytes and the trajectory is
    /// bit-identical at threads 1, 2, and 4.
    #[test]
    fn prefetch_enabled_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut cfg = FleetSimConfig::new(2);
            cfg.noise_sigma = 0.1;
            cfg.threads = threads;
            cfg.prefetch = Some(PrefetchPolicy::paper_default(
                sdfm_kernel::PrefetchMode::StrideMarkov,
            ));
            let mut sim = FleetSim::new(cfg, 43);
            let windows = sim.run_windows(12).unwrap();
            serde_json::to_string(&windows).expect("fleet stats serialize")
        };
        let (one, again, two, four) = (run(1), run(1), run(2), run(4));
        assert!(one == again, "two same-seed prefetch runs diverged");
        assert!(one == two, "1 vs 2 threads diverged with prefetch on");
        assert!(one == four, "1 vs 4 threads diverged with prefetch on");
        // The stage actually fired somewhere in the run.
        let parsed: Vec<FleetWindowStats> = serde_json::from_str(&one).unwrap();
        let issued: u64 = parsed.iter().map(|w| w.prefetch_issued).sum();
        assert!(issued > 0, "prefetcher never issued anything");
    }

    /// Prefetch under the fidelity cutoff: page-level kernels run the
    /// real per-memcg predictor while stat jobs use the recurrence, and
    /// the combined trajectory still serializes identically at threads
    /// 1, 2, and 4.
    #[test]
    fn prefetch_under_fidelity_cutoff_is_bit_identical() {
        let run = |threads: usize| {
            let mut cfg = FleetSimConfig::new(1);
            cfg.noise_sigma = 0.1;
            cfg.threads = threads;
            cfg.fidelity_cutoff = 2;
            cfg.prefetch = Some(PrefetchPolicy::paper_default(
                sdfm_kernel::PrefetchMode::Stride,
            ));
            let mut sim = FleetSim::new(cfg, 47);
            let windows = sim.run_windows(6).unwrap();
            serde_json::to_string(&windows).expect("fleet stats serialize")
        };
        let (one, again, two, four) = (run(1), run(1), run(2), run(4));
        assert!(one == again, "two same-seed cutoff+prefetch runs diverged");
        assert!(one == two, "1 vs 2 threads diverged (cutoff + prefetch)");
        assert!(one == four, "1 vs 4 threads diverged (cutoff + prefetch)");
    }

    /// Accuracy-counter conservation and ledger balance: per job per
    /// window `used + wasted == issued`, every decompression source adds
    /// up, and hidden faults actually reduce reported demand promotions
    /// relative to the same seed without prefetching.
    #[test]
    fn prefetch_counters_conserve_and_hide_demand_faults() {
        let run = |prefetch: Option<PrefetchPolicy>| {
            let mut cfg = FleetSimConfig::new(2);
            cfg.noise_sigma = 0.0;
            cfg.churn = false;
            cfg.prefetch = prefetch;
            let mut sim = FleetSim::new(cfg, 51);
            sim.set_params(AgentParams::new(98.0, SimDuration::ZERO).unwrap());
            sim.run_windows(12).unwrap()
        };
        let base = run(None);
        let with = run(Some(PrefetchPolicy::paper_default(
            sdfm_kernel::PrefetchMode::StrideMarkov,
        )));
        let mut issued_total = 0u64;
        for w in &with {
            assert_eq!(
                w.prefetch_used + w.prefetch_wasted,
                w.prefetch_issued,
                "window-level conservation broke"
            );
            for j in &w.per_job {
                assert_eq!(
                    j.prefetch_used + j.prefetch_wasted,
                    j.prefetch_issued,
                    "per-job conservation broke"
                );
                assert_eq!(
                    j.decompress_events,
                    j.promotions
                        + j.prefetch_issued
                        + j.writeback_events
                        + j.ssd_demotions
                        + j.remote_demotions,
                    "decompression sources do not add up"
                );
            }
            issued_total += w.prefetch_issued;
        }
        assert!(issued_total > 0, "prefetcher never issued anything");
        let demand =
            |ws: &[FleetWindowStats]| -> u64 { ws.iter().flat_map(|w| &w.per_job).map(|j| j.promotions).sum() };
        let (base_promos, with_promos) = (demand(&base), demand(&with));
        assert!(
            with_promos < base_promos,
            "prefetching hid no demand faults: {with_promos} vs {base_promos}"
        );
        // No-prefetch windows report all-zero counters.
        for w in &base {
            assert_eq!(w.prefetch_issued + w.prefetch_used + w.prefetch_wasted + w.prefetch_late, 0);
        }
    }

    /// A policy with zero aggressiveness issues nothing and must be
    /// byte-identical to running with no policy at all — the `None`
    /// default therefore reproduces the pre-prefetch trajectory bit for
    /// bit (the same arithmetic with every count pinned to zero).
    #[test]
    fn zero_aggressiveness_prefetch_is_inert() {
        let run = |prefetch: Option<PrefetchPolicy>| {
            let mut cfg = FleetSimConfig::new(2);
            cfg.noise_sigma = 0.1;
            cfg.threads = 3;
            cfg.prefetch = prefetch;
            let mut sim = FleetSim::new(cfg, 53);
            let windows = sim.run_windows(8).unwrap();
            serde_json::to_string(&windows).expect("fleet stats serialize")
        };
        let none = run(None);
        let zero = run(Some(PrefetchPolicy::new(
            sdfm_kernel::PrefetchMode::StrideMarkov,
            0,
        )));
        assert!(none == zero, "zero-aggressiveness policy perturbed the run");
    }
}
