//! The end-to-end autotuning pipeline (§5.3).
//!
//! Iterates the paper's three steps: (1) GP Bandit proposes a `(K, S)`
//! configuration from the observations so far; (2) the fast far memory
//! model replays the fleet trace under it, producing the objective (fleet
//! cold memory) and the constraint (p98 normalized promotion rate);
//! (3) the result joins the observation pool. The best feasible
//! configuration is then handed to the staged rollout.

use sdfm_agent::{AgentParams, SloConfig};
use sdfm_autotuner::{BanditConfig, GpBandit, SearchSpace};
use sdfm_model::{FarMemoryModel, ModelConfig};
use sdfm_types::time::SimDuration;
use serde::{Deserialize, Serialize};

/// One completed tuning trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuneTrial {
    /// The configuration evaluated.
    pub k_percentile: f64,
    /// Warmup seconds.
    pub s_warmup_secs: f64,
    /// Fleet cold memory under it (pages; the objective).
    pub cold_pages: f64,
    /// p98 normalized promotion rate (fraction of WSS per minute; the
    /// constraint).
    pub p98_rate: f64,
    /// Whether the constraint held.
    pub feasible: bool,
}

/// GP Bandit over the fast far memory model.
#[derive(Debug)]
pub struct AutotunePipeline {
    bandit: GpBandit,
    model: FarMemoryModel,
    slo: SloConfig,
    trials: Vec<TuneTrial>,
}

impl AutotunePipeline {
    /// Creates a pipeline over a trace-backed model.
    pub fn new(model: FarMemoryModel, slo: SloConfig, seed: u64) -> Self {
        let space = SearchSpace::agent_params();
        let config = BanditConfig::default().with_constraint_limit(slo.target.fraction_per_min());
        AutotunePipeline {
            bandit: GpBandit::new(space, config, seed),
            model,
            slo,
            trials: Vec::new(),
        }
    }

    /// Runs `iterations` suggest→model→observe steps.
    pub fn run(&mut self, iterations: usize) -> &[TuneTrial] {
        for _ in 0..iterations {
            self.step();
        }
        &self.trials
    }

    /// One pipeline iteration.
    pub fn step(&mut self) -> TuneTrial {
        let point = self.bandit.suggest();
        self.evaluate_point(point)
    }

    /// Evaluates an explicit configuration — typically the currently
    /// deployed incumbent — and adds it to the observation pool. Anchoring
    /// the search on the incumbent means `best_params` can never regress
    /// below the deployed configuration under the model, and gives the GP
    /// a known-good region to explore around.
    pub fn observe_params(&mut self, params: AgentParams) -> TuneTrial {
        let point = vec![params.k_percentile, params.s_warmup.as_secs() as f64];
        self.evaluate_point(point)
    }

    fn evaluate_point(&mut self, point: Vec<f64>) -> TuneTrial {
        let params = Self::params_from_point(&point);
        let result = self.model.evaluate(&ModelConfig {
            slo: self.slo,
            ..ModelConfig::new(params)
        });
        // A configuration with no enabled windows never measured its
        // constraint: treat it as a hard violation. The penalty must stay
        // finite (infinities wreck the GP's observation standardization) —
        // any value above the constraint limit keeps the point infeasible
        // while still letting the surrogate rank it.
        let constraint = result
            .p98_normalized_rate
            .map(|p98| p98.fraction_per_min())
            .unwrap_or_else(|| self.slo.target.fraction_per_min() * 10.0);
        self.bandit
            .observe(point.clone(), result.avg_cold_pages, constraint);
        let trial = TuneTrial {
            k_percentile: point[0],
            s_warmup_secs: point[1],
            cold_pages: result.avg_cold_pages,
            p98_rate: constraint,
            feasible: result.meets_slo(self.slo.target),
        };
        self.trials.push(trial);
        trial
    }

    /// Completed trials.
    pub fn trials(&self) -> &[TuneTrial] {
        &self.trials
    }

    /// The best feasible parameters found, if any.
    pub fn best_params(&self) -> Option<AgentParams> {
        self.bandit
            .best_feasible()
            .map(|o| Self::params_from_point(&o.point))
    }

    fn params_from_point(point: &[f64]) -> AgentParams {
        AgentParams::new(
            point[0].clamp(0.0, 100.0),
            SimDuration::from_secs(point[1].max(0.0) as u64),
        )
        .expect("search space stays within valid parameter bounds")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfm_agent::TraceRecord;
    use sdfm_model::JobTrace;
    use sdfm_types::histogram::{ColdAgeHistogram, PageAge, PromotionHistogram};
    use sdfm_types::ids::JobId;
    use sdfm_types::size::PageCount;
    use sdfm_types::time::SimTime;

    /// A synthetic fleet trace where warmup time matters: savings accrue
    /// only after warmup, so lower S wins, and promotions are mild so the
    /// constraint is easy.
    fn traces() -> Vec<JobTrace> {
        (1..=12)
            .map(|job| {
                let records = (1..=24)
                    .map(|i| {
                        let mut cold = ColdAgeHistogram::new();
                        cold.record_page(PageAge::from_scans(0), 4_000);
                        cold.record_page(PageAge::from_scans(6), 2_000 + 100 * job);
                        let mut promo = PromotionHistogram::new();
                        promo.record_promotion(PageAge::from_scans(2), 20);
                        TraceRecord {
                            job: JobId::new(job),
                            at: SimTime::from_secs(i * 300),
                            window: SimDuration::from_secs(300),
                            working_set: PageCount::new(4_000),
                            cold_hist: cold,
                            promo_delta: promo,
                            incompressible_fraction: 0.0,
                        }
                    })
                    .collect();
                JobTrace::new(JobId::new(job), records)
            })
            .collect()
    }

    #[test]
    fn pipeline_finds_feasible_configuration() {
        let model = FarMemoryModel::new(traces()).with_threads(2);
        let mut pipe = AutotunePipeline::new(model, SloConfig::default(), 11);
        pipe.run(20);
        assert_eq!(pipe.trials().len(), 20);
        let best = pipe.best_params().expect("a feasible point exists");
        assert!((0.0..=100.0).contains(&best.k_percentile));
        // With easy constraints, the tuner should prefer short warmups.
        assert!(
            best.s_warmup.as_secs() <= 5_400,
            "best warmup {} suspiciously long",
            best.s_warmup
        );
    }

    #[test]
    fn trials_record_objective_and_constraint() {
        let model = FarMemoryModel::new(traces()).with_threads(1);
        let mut pipe = AutotunePipeline::new(model, SloConfig::default(), 3);
        let t = pipe.step();
        assert!(t.cold_pages >= 0.0);
        assert!(t.p98_rate >= 0.0);
        assert_eq!(pipe.trials().len(), 1);
    }

    #[test]
    fn tuned_beats_conservative_hand_tuning() {
        // The §6.1 comparison: the autotuner should find ≥ the cold memory
        // of an intentionally conservative hand-tuned configuration.
        let model = FarMemoryModel::new(traces()).with_threads(2);
        let hand = ModelConfig::new(AgentParams::new(99.5, SimDuration::from_mins(40)).unwrap());
        let hand_result = model.evaluate(&hand);
        let mut pipe = AutotunePipeline::new(model, SloConfig::default(), 17);
        pipe.run(25);
        let best = pipe
            .trials()
            .iter()
            .filter(|t| t.feasible)
            .map(|t| t.cold_pages)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            best >= hand_result.avg_cold_pages,
            "tuned {best} < hand-tuned {}",
            hand_result.avg_cold_pages
        );
    }
}
