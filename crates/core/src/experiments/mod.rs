//! Reproductions of every figure and headline result in the paper's
//! evaluation (§2.2 and §6).
//!
//! Each `figure*`/`table*` function is pure data generation — the
//! `sdfm-bench` binaries print the rows. Everything accepts a [`Scale`] so
//! tests can run the same code small while the bench binaries run it at
//! paper-shaped scale.
//!
//! | Function | Paper result |
//! |---|---|
//! | [`figure1`](coldness::figure1) | cold % and promotion rate vs threshold T |
//! | [`figure2`](coldness::figure2) | per-machine cold % across the top-10 clusters |
//! | [`figure3`](coldness::figure3) | CDF of per-job cold % |
//! | [`figure5`](rollout::figure5) | coverage over the rollout timeline |
//! | [`figure6`](rollout::figure6) | per-machine coverage across clusters |
//! | [`figure7`](rollout::figure7) | promotion-rate CDF before/after autotuning |
//! | [`figure8`](overhead::figure8) | CPU overhead CDFs (per job / per machine) |
//! | [`figure9a`](overhead::figure9a) | compression-ratio distribution |
//! | [`figure9b`](overhead::figure9b) | decompression-latency distribution |
//! | [`figure10`](bigtable::figure10) | Bigtable A/B: coverage and IPC delta |
//! | [`table1`](tables::table1) | headline TCO arithmetic |
//! | [`table2`](tables::table2) | the §4.3 worked example |
//! | [`table_fn1`](tables::table_fn1) | lzo/lz4/snappy trade-off (footnote 1) |
//! | [`experiment_two_tier`](two_tier::experiment_two_tier) | §8 future work: zswap vs NVM vs two-tier |

pub mod ablations;
pub mod bigtable;
pub mod coldness;
pub mod overhead;
pub mod rollout;
pub mod tables;
pub mod two_tier;

use crate::fleet_sim::FleetSimConfig;
use sdfm_agent::TraceRecord;
use sdfm_model::{group_traces, JobTrace};
use sdfm_types::time::{SimDuration, SimTime, DAY};
use sdfm_workloads::fleet::FleetSpec;
use sdfm_workloads::StatJobModel;
use serde::{Deserialize, Serialize};

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Machines per cluster (the paper's clusters have tens of thousands).
    pub machines_per_cluster: usize,
    /// Windows (5 min each) to run before measuring.
    pub warmup_windows: usize,
    /// Windows measured.
    pub measure_windows: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for fleet-window stepping (0 = one per available
    /// core). The simulation output is identical at any setting.
    pub threads: usize,
}

impl Scale {
    /// Tiny: unit-test sized (seconds of wall time).
    pub fn small() -> Self {
        Scale {
            machines_per_cluster: 2,
            warmup_windows: 18,
            measure_windows: 12,
            seed: 42,
            threads: 0,
        }
    }

    /// The scale the bench binaries run at: hundreds of machines,
    /// day-scale measurement.
    pub fn paper() -> Self {
        Scale {
            machines_per_cluster: 20,
            warmup_windows: 72,   // 6 hours
            measure_windows: 288, // one day
            seed: 42,
            threads: 0,
        }
    }

    /// A fleet-simulator config honoring this scale's thread override.
    pub fn fleet_config(&self) -> FleetSimConfig {
        let mut cfg = FleetSimConfig::new(self.machines_per_cluster);
        if self.threads > 0 {
            cfg.threads = self.threads;
        }
        cfg
    }
}

/// Builds a one-job-per-model fleet (no controller) for distribution
/// studies: returns `(cluster index, machine index, model)` triples.
pub(crate) fn build_stat_fleet(
    spec: &FleetSpec,
    seed: u64,
    noise: f64,
) -> Vec<(usize, usize, StatJobModel)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (ci, cluster) in spec.clusters.iter().enumerate() {
        for machine in 0..cluster.machines {
            let (lo, hi) = cluster.jobs_per_machine;
            let count = rng.gen_range(lo..=hi);
            for _ in 0..count {
                let template = cluster.sample_template(&mut rng);
                let profile = template.sample_profile(&mut rng);
                let s = rng.gen();
                // Stationary ages: stagger each job's start over its
                // lifetime (capped at a day) before the observation epoch.
                let span = profile.lifetime.as_secs().min(DAY.as_secs()).max(1);
                let head_start = rng.gen_range(0..span);
                let mut model = StatJobModel::with_noise(profile, s, noise);
                model.set_start(SimTime::from_secs(DAY.as_secs().saturating_sub(head_start)));
                out.push((ci, machine, model));
            }
        }
    }
    out
}

/// Collects a fleet trace (the §5.3 export format) by observing every job
/// of a fresh synthetic fleet for `windows` windows — the input to the
/// fast far memory model and the autotuner.
pub fn collect_fleet_traces(scale: &Scale, windows: usize) -> Vec<JobTrace> {
    let spec = FleetSpec::paper_default(scale.machines_per_cluster);
    let mut fleet = build_stat_fleet(&spec, scale.seed, StatJobModel::DEFAULT_SIGMA);
    let window = SimDuration::from_secs(300);
    let mut records: Vec<TraceRecord> = Vec::new();
    for (ji, (_, _, model)) in fleet.iter_mut().enumerate() {
        let job = sdfm_types::ids::JobId::new(ji as u64 + 1);
        let incompressible_fraction = model.profile().mix.incompressible_fraction();
        for w in 1..=windows {
            let at = SimTime::ZERO + DAY + window * w as u64;
            let obs = model.observe(at, window);
            records.push(TraceRecord {
                job,
                at,
                window,
                working_set: obs.working_set,
                cold_hist: obs.cold_hist,
                promo_delta: obs.promo_delta,
                incompressible_fraction,
            });
        }
    }
    group_traces(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_fleet_covers_every_cluster() {
        let spec = FleetSpec::paper_default(2);
        let fleet = build_stat_fleet(&spec, 1, 0.0);
        for ci in 0..spec.clusters.len() {
            assert!(fleet.iter().any(|(c, _, _)| *c == ci), "cluster {ci} empty");
        }
    }

    #[test]
    fn trace_collection_produces_grouped_windows() {
        let scale = Scale {
            machines_per_cluster: 1,
            warmup_windows: 0,
            measure_windows: 0,
            seed: 9,
            threads: 0,
        };
        let traces = collect_fleet_traces(&scale, 4);
        assert!(!traces.is_empty());
        for t in &traces {
            assert_eq!(t.len(), 4);
        }
    }
}
