//! Figures 5–7: the deployment timeline, coverage distributions, and the
//! autotuner's effect on promotion rates (§6.1, §6.2).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use super::{collect_fleet_traces, Scale};
use crate::autotune::AutotunePipeline;
use crate::fleet_sim::FleetSim;
use sdfm_agent::{AgentParams, SloConfig};
use sdfm_model::FarMemoryModel;
use sdfm_types::stats::{Cdf, FiveNumberSummary, Percentile};
use sdfm_types::time::SimDuration;

/// The three deployment phases of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RolloutPhase {
    /// Initial static parameters from small-scale experiments (A→B).
    Static,
    /// Manually tuned parameters (B→C).
    HandTuned,
    /// ML-autotuned parameters (C→D).
    Autotuned,
}

/// One Figure-5 sample: fleet coverage at a point in the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Hours since the start of the timeline.
    pub hours: f64,
    /// Fleet cold-memory coverage.
    pub coverage: f64,
    /// Which phase was in force.
    pub phase: RolloutPhase,
}

/// Figure-5 parameter sets: deliberately conservative static parameters,
/// the §4.3 hand-tuned defaults, and whatever the autotuner finds.
pub fn static_params() -> AgentParams {
    // The first rollout was deliberately timid: take the maximum of the
    // threshold pool and keep zswap off for the first six hours of every
    // job.
    AgentParams::new(100.0, SimDuration::from_hours(6)).expect("valid literal")
}

/// The hand-tuned (B→C) configuration.
pub fn hand_tuned_params() -> AgentParams {
    AgentParams::hand_tuned()
}

/// Figure 5: fleet-wide cold-memory coverage over the rollout timeline.
/// Each phase runs `scale.measure_windows` windows; the autotuned phase
/// uses parameters found by the real pipeline on traces collected during
/// the hand-tuned phase.
pub fn figure5(scale: &Scale) -> (Vec<Fig5Point>, AgentParams) {
    let mut sim = FleetSim::new(scale.fleet_config(), scale.seed);
    let window_hours = sim.window().as_secs() as f64 / 3600.0;
    let mut points = Vec::new();
    let mut hours = 0.0;

    let run_phase = |sim: &mut FleetSim,
                     points: &mut Vec<Fig5Point>,
                     hours: &mut f64,
                     phase: RolloutPhase,
                     windows: usize| {
        for _ in 0..windows {
            let s = sim.step_window().expect("fleet window step");
            *hours += window_hours;
            points.push(Fig5Point {
                hours: *hours,
                coverage: s.coverage(),
                phase,
            });
        }
    };

    sim.set_params(static_params());
    run_phase(
        &mut sim,
        &mut points,
        &mut hours,
        RolloutPhase::Static,
        scale.warmup_windows + scale.measure_windows,
    );

    sim.set_params(hand_tuned_params());
    run_phase(
        &mut sim,
        &mut points,
        &mut hours,
        RolloutPhase::HandTuned,
        scale.measure_windows,
    );

    // Autotune on a collected fleet trace. The trace must span at least
    // the controller's history window plus the measurement horizon, or the
    // model cannot resolve K at the pool sizes the deployment will run at.
    let trace_windows = (sdfm_agent::JobController::POOL_CAP + scale.measure_windows).max(8);
    let traces = collect_fleet_traces(scale, trace_windows);
    let model = FarMemoryModel::new(traces);
    let mut pipeline = AutotunePipeline::new(model, SloConfig::default(), scale.seed ^ 0xA77);
    // Anchor the search on the deployed incumbent so the rollout can only
    // move forward from the hand-tuned configuration.
    pipeline.observe_params(hand_tuned_params());
    pipeline.run(18);
    let tuned = pipeline.best_params().unwrap_or_else(hand_tuned_params);

    sim.set_params(tuned);
    run_phase(
        &mut sim,
        &mut points,
        &mut hours,
        RolloutPhase::Autotuned,
        scale.measure_windows,
    );
    (points, tuned)
}

/// Mean coverage of the tail of a phase (skipping its transient).
pub fn phase_steady_coverage(points: &[Fig5Point], phase: RolloutPhase) -> f64 {
    let phase_points: Vec<f64> = points
        .iter()
        .filter(|p| p.phase == phase)
        .map(|p| p.coverage)
        .collect();
    let tail = &phase_points[phase_points.len() / 2..];
    if tail.is_empty() {
        0.0
    } else {
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Figure 6: distribution of per-machine coverage across the top-10
/// clusters, under the hand-tuned configuration at steady state.
pub fn figure6(scale: &Scale) -> Vec<super::coldness::ClusterDistribution> {
    let mut sim = FleetSim::new(scale.fleet_config(), scale.seed ^ 0xF16);
    for _ in 0..scale.warmup_windows {
        sim.step_window().expect("fleet window step");
    }
    // Accumulate per-machine cold/far over the measurement span.
    let mut per_machine: BTreeMap<(u64, usize), (u64, u64)> = BTreeMap::new();
    for _ in 0..scale.measure_windows {
        let s = sim.step_window().expect("fleet window step");
        for j in &s.per_job {
            let e = per_machine
                .entry((j.cluster.raw(), j.machine))
                .or_insert((0, 0));
            e.0 += j.far_pages;
            e.1 += j.cold_pages;
        }
    }
    let mut by_cluster: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for ((ci, _), (far, cold)) in per_machine {
        if cold > 0 {
            by_cluster
                .entry(ci as usize)
                .or_default()
                .push(far as f64 / cold as f64);
        }
    }
    by_cluster
        .into_iter()
        .map(
            |(cluster, coverages)| super::coldness::ClusterDistribution {
                cluster,
                summary: FiveNumberSummary::from_samples(&coverages).expect("cluster has machines"),
            },
        )
        .collect()
}

/// Figure 7 output: normalized promotion-rate CDFs before and after the
/// autotuner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7 {
    /// `(percent of WSS per minute, cumulative fraction)` — hand-tuned.
    pub before: Vec<(f64, f64)>,
    /// Same series under autotuned parameters.
    pub after: Vec<(f64, f64)>,
    /// p98 before (percent of WSS per minute).
    pub p98_before: f64,
    /// p98 after.
    pub p98_after: f64,
    /// Median before / after.
    pub p50_before: f64,
    /// Median after.
    pub p50_after: f64,
}

/// Figure 7: the fleet distribution of per-job normalized promotion rates
/// before (hand-tuned) and after (autotuned) parameters.
pub fn figure7(scale: &Scale, tuned: AgentParams) -> Fig7 {
    let collect = |params: AgentParams, seed: u64| -> Vec<f64> {
        let mut cfg = scale.fleet_config();
        cfg.params = params;
        let mut sim = FleetSim::new(cfg, seed);
        for _ in 0..scale.warmup_windows {
            sim.step_window().expect("fleet window step");
        }
        let mut rates = Vec::new();
        for _ in 0..scale.measure_windows {
            let s = sim.step_window().expect("fleet window step");
            rates.extend(
                s.per_job
                    .iter()
                    .filter(|j| j.enabled)
                    .map(|j| j.normalized_rate * 100.0), // fraction/min -> %/min
            );
        }
        rates
    };
    // Same seed for both arms: paired comparison.
    let before = collect(hand_tuned_params(), scale.seed ^ 0x7A);
    let after = collect(tuned, scale.seed ^ 0x7A);
    let cdf_b = Cdf::from_samples(&before).expect("fleet produced rates");
    let cdf_a = Cdf::from_samples(&after).expect("fleet produced rates");
    Fig7 {
        p98_before: cdf_b.value_at(Percentile::P98),
        p98_after: cdf_a.value_at(Percentile::P98),
        p50_before: cdf_b.value_at(Percentile::P50),
        p50_after: cdf_a.value_at(Percentile::P50),
        before: cdf_b.series(50),
        after: cdf_a.series(50),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfm_types::rate::NormalizedPromotionRate;

    #[test]
    fn figure5_coverage_improves_across_phases() {
        let (points, tuned) = figure5(&Scale::small());
        let stat = phase_steady_coverage(&points, RolloutPhase::Static);
        let hand = phase_steady_coverage(&points, RolloutPhase::HandTuned);
        let auto = phase_steady_coverage(&points, RolloutPhase::Autotuned);
        // The phase deltas are modest in the paper too (13% → 15% → 20%);
        // allow sampling noise on the static/hand comparison but require a
        // clear autotuner win.
        assert!(
            hand > stat - 0.02,
            "hand-tuned {hand} well below static {stat}"
        );
        assert!(
            auto >= hand * 1.10,
            "autotuned {auto} not a clear improvement over hand-tuned {hand}"
        );
        assert!(tuned.k_percentile <= 100.0);
        // Coverage magnitudes in the paper's neighborhood (the paper
        // reaches 15–20%; our synthetic fleet lands in the same regime).
        assert!(hand > 0.05 && hand < 0.8, "hand-tuned coverage {hand}");
    }

    #[test]
    fn figure6_has_ten_clusters_with_spread() {
        let rows = figure6(&Scale::small());
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.summary.min >= 0.0 && r.summary.max <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn figure7_p98_stays_at_or_under_slo_scale() {
        let f = figure7(&Scale::small(), hand_tuned_params());
        let slo_pct = NormalizedPromotionRate::PAPER_SLO_TARGET.percent_per_min();
        assert!(
            f.p98_before <= slo_pct * 3.0,
            "p98 {} way above SLO {}",
            f.p98_before,
            slo_pct
        );
        // Monotone CDFs.
        for series in [&f.before, &f.after] {
            for w in series.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
    }
}
