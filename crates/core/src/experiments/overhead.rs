//! Figures 8 and 9: compression CPU overhead and compression
//! characteristics (§6.2, §6.3).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

use super::Scale;
use crate::fleet_sim::FleetSim;
use sdfm_compress::codec::CodecKind;
use sdfm_compress::gen::{CompressibilityMix, PageGenerator};
use sdfm_compress::page::MAX_COMPRESSED_PAYLOAD;
use sdfm_types::size::PAGE_SIZE;
use sdfm_types::stats::{Cdf, Percentile};

/// Figure 8 output: CPU-overhead CDFs, as fractions of CPU time spent on
/// compression work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8 {
    /// Per-job compression overhead CDF `(fraction, cumulative)`.
    pub job_compress: Vec<(f64, f64)>,
    /// Per-job decompression overhead CDF.
    pub job_decompress: Vec<(f64, f64)>,
    /// Per-machine compression overhead CDF.
    pub machine_compress: Vec<(f64, f64)>,
    /// Per-machine decompression overhead CDF.
    pub machine_decompress: Vec<(f64, f64)>,
    /// p98 per-job compress overhead (paper: 0.01%).
    pub p98_job_compress: f64,
    /// p98 per-job decompress overhead (paper: 0.09%).
    pub p98_job_decompress: f64,
    /// Median per-machine compress overhead (paper: 0.005%).
    pub p50_machine_compress: f64,
    /// Median per-machine decompress overhead (paper: 0.001%).
    pub p50_machine_decompress: f64,
}

/// Figure 8: the distribution of CPU cycles spent compressing and
/// decompressing, normalized to job/machine CPU usage.
pub fn figure8(scale: &Scale) -> Fig8 {
    let mut sim = FleetSim::new(scale.fleet_config(), scale.seed ^ 0xF8);
    for _ in 0..scale.warmup_windows {
        sim.step_window().expect("fleet window step");
    }
    let cost = sim.cost();
    let window_secs = sim.window().as_secs() as f64;
    // Accumulate events and core-seconds per job and per machine.
    struct Acc {
        comp_ns: f64,
        decomp_ns: f64,
        core_secs: f64,
    }
    let mut jobs: BTreeMap<u64, Acc> = BTreeMap::new();
    let mut machines: BTreeMap<(u64, usize), Acc> = BTreeMap::new();
    for _ in 0..scale.measure_windows {
        let s = sim.step_window().expect("fleet window step");
        for j in &s.per_job {
            // Rejected attempts burn the same compression cycles as stored
            // pages (§5.1) — the overhead figure must include them.
            let comp = (j.compress_events + j.rejected_events) as f64 * cost.compress_ns as f64;
            let decomp = j.decompress_events as f64 * cost.decompress_ns as f64;
            let cores = j.cpu_cores * window_secs;
            let e = jobs.entry(j.job.raw()).or_insert(Acc {
                comp_ns: 0.0,
                decomp_ns: 0.0,
                core_secs: 0.0,
            });
            e.comp_ns += comp;
            e.decomp_ns += decomp;
            e.core_secs += cores;
            let m = machines.entry((j.cluster.raw(), j.machine)).or_insert(Acc {
                comp_ns: 0.0,
                decomp_ns: 0.0,
                core_secs: 0.0,
            });
            m.comp_ns += comp;
            m.decomp_ns += decomp;
            m.core_secs += cores;
        }
    }
    fn fractions<K>(accs: &BTreeMap<K, Acc>, pick: fn(&Acc) -> f64) -> Vec<f64> {
        accs.values()
            .filter(|a| a.core_secs > 0.0)
            .map(|a| pick(a) / (a.core_secs * 1e9))
            .collect()
    }
    let jc = fractions(&jobs, |a| a.comp_ns);
    let jd = fractions(&jobs, |a| a.decomp_ns);
    let mc = fractions(&machines, |a| a.comp_ns);
    let md = fractions(&machines, |a| a.decomp_ns);
    let cdf = |xs: &[f64]| Cdf::from_samples(xs).expect("non-empty fleet");
    let (cjc, cjd, cmc, cmd) = (cdf(&jc), cdf(&jd), cdf(&mc), cdf(&md));
    Fig8 {
        p98_job_compress: cjc.value_at(Percentile::P98),
        p98_job_decompress: cjd.value_at(Percentile::P98),
        p50_machine_compress: cmc.value_at(Percentile::P50),
        p50_machine_decompress: cmd.value_at(Percentile::P50),
        job_compress: cjc.series(50),
        job_decompress: cjd.series(50),
        machine_compress: cmc.series(50),
        machine_decompress: cmd.series(50),
    }
}

/// Figure 9a output: per-job compression ratios measured with the real
/// codec on generated page contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9a {
    /// `(ratio, cumulative job fraction)` series.
    pub cdf: Vec<(f64, f64)>,
    /// Median per-job ratio (paper: 3×).
    pub median_ratio: f64,
    /// 10th / 90th percentile ratios (paper range: 2–6×).
    pub p10_ratio: f64,
    /// Upper percentile.
    pub p90_ratio: f64,
    /// Fraction of pages rejected as incompressible (paper: 31%).
    pub incompressible_fraction: f64,
}

/// Figure 9a: compression-ratio distribution across jobs, excluding
/// incompressible pages, using the production (lzo-class) codec on real
/// generated 4 KiB pages.
pub fn figure9a(jobs: usize, pages_per_job: usize, seed: u64) -> Fig9a {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let codec = CodecKind::Lzo.build();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ratios = Vec::with_capacity(jobs);
    let mut incompressible = 0usize;
    let mut total_pages = 0usize;
    let mut buf = Vec::new();
    for j in 0..jobs {
        // Per-job tilt of the fleet mix (jobs differ in content).
        let weights: Vec<_> = CompressibilityMix::fleet_default()
            .entries()
            .iter()
            .map(|&(c, w)| (c, w * rng.gen_range(0.15..4.0f64)))
            .collect();
        let mix = CompressibilityMix::new(weights).expect("positive weights");
        let mut gen = PageGenerator::new(seed ^ (j as u64) << 16);
        let mut uncompressed = 0usize;
        let mut compressed = 0usize;
        for _ in 0..pages_per_job {
            let (_, page) = gen.generate_from_mix(&mix);
            codec.compress(&page, &mut buf);
            total_pages += 1;
            if buf.len() > MAX_COMPRESSED_PAYLOAD {
                incompressible += 1;
            } else {
                uncompressed += PAGE_SIZE;
                compressed += buf.len();
            }
        }
        if compressed > 0 {
            ratios.push(uncompressed as f64 / compressed as f64);
        }
    }
    let cdf = Cdf::from_samples(&ratios).expect("jobs produced ratios");
    Fig9a {
        median_ratio: cdf.value_at(Percentile::P50),
        p10_ratio: cdf.value_at(Percentile::new(10.0).expect("valid")),
        p90_ratio: cdf.value_at(Percentile::P90),
        incompressible_fraction: incompressible as f64 / total_pages as f64,
        cdf: cdf.series(50),
    }
}

/// Figure 9b output: measured decompression latencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9b {
    /// `(microseconds, cumulative fraction)` series.
    pub cdf: Vec<(f64, f64)>,
    /// Median latency in µs (paper: 6.4 µs on 2016-era servers).
    pub p50_us: f64,
    /// p98 latency in µs (paper: 9.1 µs).
    pub p98_us: f64,
}

/// Figure 9b: decompression latency per page, measured in wall-clock time
/// with the real codec on compressible fleet-mix pages.
pub fn figure9b(samples: usize, seed: u64) -> Fig9b {
    let codec = CodecKind::Lzo.build();
    let mut gen = PageGenerator::new(seed);
    let mix = CompressibilityMix::fleet_default();
    // Pre-compress a corpus of storable pages.
    let mut payloads = Vec::new();
    let mut buf = Vec::new();
    while payloads.len() < samples.max(16) {
        let (_, page) = gen.generate_from_mix(&mix);
        codec.compress(&page, &mut buf);
        if buf.len() <= MAX_COMPRESSED_PAYLOAD {
            payloads.push(buf.clone());
        }
    }
    // Warm the caches, then measure each decompression.
    let mut out = Vec::with_capacity(PAGE_SIZE);
    for p in payloads.iter().take(16) {
        codec.decompress(p, &mut out).expect("self-produced stream");
    }
    let mut latencies_us = Vec::with_capacity(payloads.len());
    for p in &payloads {
        let t0 = Instant::now();
        codec.decompress(p, &mut out).expect("self-produced stream");
        latencies_us.push(t0.elapsed().as_nanos() as f64 / 1_000.0);
    }
    let cdf = Cdf::from_samples(&latencies_us).expect("samples exist");
    Fig9b {
        p50_us: cdf.value_at(Percentile::P50),
        p98_us: cdf.value_at(Percentile::P98),
        cdf: cdf.series(50),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_overheads_are_tiny_fractions() {
        let f = figure8(&Scale::small());
        // Paper: per-job p98 ≈ 0.01% compress / 0.09% decompress; machine
        // medians smaller still. Allow an order of magnitude either way —
        // the claim under test is "far below 1%".
        assert!(
            f.p98_job_compress < 0.01,
            "p98 job compress {}",
            f.p98_job_compress
        );
        assert!(
            f.p98_job_decompress < 0.01,
            "p98 job decompress {}",
            f.p98_job_decompress
        );
        assert!(f.p50_machine_compress <= f.p98_job_compress * 2.0);
        assert!(f.p98_job_compress > 0.0, "no compression work charged");
    }

    #[test]
    fn figure9a_matches_paper_distribution() {
        let f = figure9a(60, 40, 9);
        assert!(
            (2.0..=4.5).contains(&f.median_ratio),
            "median ratio {}",
            f.median_ratio
        );
        assert!(f.p10_ratio >= 1.5, "p10 {}", f.p10_ratio);
        assert!(f.p90_ratio <= 8.0, "p90 {}", f.p90_ratio);
        assert!(
            (0.20..=0.45).contains(&f.incompressible_fraction),
            "incompressible {}",
            f.incompressible_fraction
        );
    }

    #[test]
    fn figure9b_latencies_are_microsecond_scale() {
        let f = figure9b(200, 5);
        assert!(f.p50_us > 0.0);
        assert!(
            f.p50_us < 1_000.0,
            "median decompression {} µs is not page-scale",
            f.p50_us
        );
        assert!(f.p98_us >= f.p50_us);
    }
}
