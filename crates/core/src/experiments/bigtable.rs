//! Figure 10: the Bigtable case study (§6.4) — cluster A/B between
//! machines with zswap disabled (control) and enabled (experiment),
//! comparing cold-memory coverage and user-level IPC.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use sdfm_agent::{AgentParams, SloConfig};
use sdfm_cluster::{Machine, TelemetryDb};
use sdfm_kernel::KernelConfig;
use sdfm_types::histogram::PageAge;
use sdfm_types::ids::{ClusterId, JobId, MachineId};
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime, MINUTE};
use sdfm_workloads::templates::JobTemplate;

/// One hourly A/B sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Point {
    /// Hours since the experiment began.
    pub hour: f64,
    /// Cold-memory coverage in the experiment group.
    pub coverage: f64,
    /// User-level IPC difference, experiment vs control, in percent
    /// (negative = slower with zswap).
    pub ipc_delta_pct: f64,
}

/// Figure-10 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig10Config {
    /// Machines per A/B group.
    pub machines_per_group: usize,
    /// Bigtable-like jobs per machine.
    pub jobs_per_machine: usize,
    /// Experiment duration in hours.
    pub hours: u64,
    /// Page-count divisor applied to sampled profiles (test speed).
    pub shrink: u64,
    /// Seed.
    pub seed: u64,
}

impl Fig10Config {
    /// A test-sized configuration.
    pub fn small() -> Self {
        Fig10Config {
            machines_per_group: 3,
            jobs_per_machine: 2,
            hours: 4,
            shrink: 40,
            seed: 7,
        }
    }
}

struct Group {
    machines: Vec<Machine>,
    telemetry: TelemetryDb,
    last_decompress_ns: Vec<u64>,
    cores: Vec<f64>,
}

/// Runs the A/B study and returns the hourly series.
pub fn figure10(config: &Fig10Config) -> Vec<Fig10Point> {
    let kernel = KernelConfig {
        capacity: PageCount::new(200_000 / config.shrink.max(1) * 4),
        ..KernelConfig::default()
    };
    let experiment_params =
        AgentParams::new(95.0, SimDuration::from_mins(10)).expect("valid literal");
    // Control machines never enable zswap: effectively infinite warmup.
    let control_params =
        AgentParams::new(100.0, SimDuration::from_hours(1_000_000)).expect("valid literal");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut build_group = |params: AgentParams, base_id: u64| -> Group {
        let mut machines = Vec::new();
        let mut cores = Vec::new();
        for m in 0..config.machines_per_group {
            let mut machine = Machine::new(
                MachineId::new(base_id + m as u64),
                ClusterId::new(0),
                kernel,
                params,
                SloConfig::default(),
                SimDuration::from_secs(300),
            );
            let mut machine_cores = 0.0;
            for j in 0..config.jobs_per_machine {
                let mut profile = JobTemplate::Bigtable.sample_profile(&mut rng);
                for b in &mut profile.rate_buckets {
                    b.pages = (b.pages / config.shrink.max(1)).max(1);
                }
                profile.lifetime = SimDuration::from_hours(config.hours * 10);
                machine_cores += profile.cpu_cores;
                let job = JobId::new(base_id * 1_000 + (m * 100 + j) as u64 + 1);
                let placed = machine.try_place(job, &profile, SimTime::ZERO, job.raw());
                assert!(placed, "bigtable job did not fit its machine");
            }
            cores.push(machine_cores);
            machines.push(machine);
        }
        let n = machines.len();
        Group {
            machines,
            telemetry: TelemetryDb::new(),
            last_decompress_ns: vec![0; n],
            cores,
        }
    };

    let mut control = build_group(control_params, 1);
    let mut experiment = build_group(experiment_params, 100);
    let noise = Normal::new(0.0, 0.01).expect("positive sd");
    let mut noise_rng = StdRng::seed_from_u64(config.seed ^ 0xF10);

    let mut points = Vec::new();
    for hour in 1..=config.hours {
        for minute in 0..60 {
            let now = SimTime::ZERO + MINUTE * ((hour - 1) * 60 + minute + 1);
            for g in [&mut control, &mut experiment] {
                let mut telemetry = std::mem::take(&mut g.telemetry);
                for m in &mut g.machines {
                    m.step_minute(now, &mut telemetry);
                }
                g.telemetry = telemetry;
            }
        }
        // Hourly metrics.
        let coverage = group_coverage(&experiment);
        let ipc_ctl = group_ipc(&mut control, &mut noise_rng, &noise);
        let ipc_exp = group_ipc(&mut experiment, &mut noise_rng, &noise);
        points.push(Fig10Point {
            hour: hour as f64,
            coverage,
            ipc_delta_pct: (ipc_exp - ipc_ctl) / ipc_ctl * 100.0,
        });
    }
    points
}

fn group_coverage(g: &Group) -> f64 {
    let mut far = 0u64;
    let mut cold = 0u64;
    for m in &g.machines {
        let kernel = m.kernel();
        for job in kernel.jobs().collect::<Vec<_>>() {
            let cg = kernel.memcg(job).expect("job listed");
            far += cg.stats().zswapped_pages;
            cold += cg.cold_pages(PageAge::from_scans(1)).get();
        }
    }
    if cold == 0 {
        0.0
    } else {
        far as f64 / cold as f64
    }
}

/// Models user-level IPC: decompression stalls steal cycles from the
/// application; everything else is machine noise (different queries,
/// machine-to-machine variation — §6.4 explicitly expects a noise band).
fn group_ipc(g: &mut Group, rng: &mut StdRng, noise: &Normal<f64>) -> f64 {
    let hour_ns = 3_600.0 * 1e9;
    let mut ipcs = Vec::with_capacity(g.machines.len());
    for (i, m) in g.machines.iter().enumerate() {
        let cpu = m.kernel().cpu_accounting();
        let delta = cpu.decompress_ns - g.last_decompress_ns[i];
        g.last_decompress_ns[i] = cpu.decompress_ns;
        let stall_fraction = delta as f64 / (g.cores[i] * hour_ns);
        let ipc = (1.0 / (1.0 + stall_fraction)) * (1.0 + noise.sample(rng));
        ipcs.push(ipc);
    }
    ipcs.iter().sum::<f64>() / ipcs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab_study_shows_coverage_with_ipc_in_noise() {
        let points = figure10(&Fig10Config::small());
        assert_eq!(points.len(), 4);
        let last = points.last().unwrap();
        // Paper: Bigtable coverage 5–15%; our synthetic analogue should be
        // nonzero and below full.
        assert!(
            last.coverage > 0.02 && last.coverage < 0.9,
            "coverage {}",
            last.coverage
        );
        // IPC delta within a few percent (noise-dominated).
        for p in &points {
            assert!(
                p.ipc_delta_pct.abs() < 5.0,
                "hour {}: ipc delta {}% outside noise band",
                p.hour,
                p.ipc_delta_pct
            );
        }
    }
}
