//! Figures 1–3: the fleet cold-memory characterization (§2.2).

use super::{build_stat_fleet, Scale};
use sdfm_types::histogram::PageAge;
use sdfm_types::stats::{Cdf, FiveNumberSummary};
use sdfm_types::time::{SimDuration, SimTime, DAY};
use sdfm_workloads::fleet::FleetSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One Figure-1 point: fleet behavior at one cold-age threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig1Row {
    /// The threshold T, seconds.
    pub threshold_secs: u64,
    /// Fleet-average fraction of memory cold at T.
    pub cold_fraction: f64,
    /// Fleet-average promotion rate: fraction of cold memory accessed per
    /// minute.
    pub promotion_rate_per_min: f64,
}

/// The Figure-1 threshold sweep: T from 120 s to 8 h.
pub const FIG1_THRESHOLDS: [u64; 9] = [120, 240, 480, 960, 1_920, 3_840, 7_680, 14_400, 28_800];

/// Figure 1: % of cold memory and promotion rate under different cold-age
/// thresholds (fleet average).
pub fn figure1(scale: &Scale) -> Vec<Fig1Row> {
    let spec = FleetSpec::paper_default(scale.machines_per_cluster);
    let mut fleet = build_stat_fleet(&spec, scale.seed, 0.1);
    let window = SimDuration::from_secs(300);
    let measure_at = SimTime::ZERO + DAY + window * (scale.warmup_windows as u64 + 1);

    let mut total_pages = 0u64;
    let mut cold_at = vec![0u64; FIG1_THRESHOLDS.len()];
    let mut promos_at = vec![0u64; FIG1_THRESHOLDS.len()];
    for (_, _, model) in fleet.iter_mut() {
        let obs = model.observe(measure_at, window);
        total_pages += obs.cold_hist.total_pages();
        for (i, &t) in FIG1_THRESHOLDS.iter().enumerate() {
            let age = PageAge::from_duration(SimDuration::from_secs(t));
            cold_at[i] += obs.cold_hist.pages_colder_than(age);
            promos_at[i] += obs.promo_delta.promotions_colder_than(age);
        }
    }
    let window_mins = window.as_mins_f64();
    FIG1_THRESHOLDS
        .iter()
        .enumerate()
        .map(|(i, &t)| Fig1Row {
            threshold_secs: t,
            cold_fraction: cold_at[i] as f64 / total_pages.max(1) as f64,
            promotion_rate_per_min: if cold_at[i] == 0 {
                0.0
            } else {
                promos_at[i] as f64 / window_mins / cold_at[i] as f64
            },
        })
        .collect()
}

/// One cluster's per-machine distribution (Figures 2 and 6 are drawn from
/// this shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDistribution {
    /// Cluster index (0 = largest).
    pub cluster: usize,
    /// Five-number summary (plus whiskers) across machines.
    pub summary: FiveNumberSummary,
}

/// Figure 2: distribution of per-machine cold-memory percentage across the
/// top-10 clusters at T = 120 s.
pub fn figure2(scale: &Scale) -> Vec<ClusterDistribution> {
    let spec = FleetSpec::paper_default(scale.machines_per_cluster);
    let mut fleet = build_stat_fleet(&spec, scale.seed, 0.25);
    let window = SimDuration::from_secs(300);
    let measure_at = SimTime::ZERO + DAY + window * (scale.warmup_windows as u64 + 1);
    let t = PageAge::from_scans(1);

    // (cluster, machine) -> (cold, total)
    let mut per_machine: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
    for (ci, mi, model) in fleet.iter_mut() {
        let obs = model.observe(measure_at, window);
        let e = per_machine.entry((*ci, *mi)).or_insert((0, 0));
        e.0 += obs.cold_hist.pages_colder_than(t);
        e.1 += obs.cold_hist.total_pages();
    }
    let mut by_cluster: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for ((ci, _), (cold, total)) in per_machine {
        if total > 0 {
            by_cluster
                .entry(ci)
                .or_default()
                .push(cold as f64 / total as f64);
        }
    }
    by_cluster
        .into_iter()
        .map(|(cluster, fractions)| ClusterDistribution {
            cluster,
            summary: FiveNumberSummary::from_samples(&fractions)
                .expect("every cluster has machines"),
        })
        .collect()
}

/// Figure 3 output: the per-job cold-fraction CDF plus the paper's decile
/// checkpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3 {
    /// `(cold fraction, cumulative job fraction)` series.
    pub cdf: Vec<(f64, f64)>,
    /// Cold fraction at the 10th percentile of jobs (paper: < 9%).
    pub bottom_decile: f64,
    /// Cold fraction at the 90th percentile of jobs (paper: ≥ 43%).
    pub top_decile: f64,
}

/// Figure 3: cumulative distribution of per-job cold memory percentage.
pub fn figure3(scale: &Scale) -> Fig3 {
    let spec = FleetSpec::paper_default(scale.machines_per_cluster);
    let mut fleet = build_stat_fleet(&spec, scale.seed, 0.2);
    let window = SimDuration::from_secs(300);
    let measure_at = SimTime::ZERO + DAY + window * (scale.warmup_windows as u64 + 1);
    let t = PageAge::from_scans(1);
    let fractions: Vec<f64> = fleet
        .iter_mut()
        .map(|(_, _, model)| {
            let obs = model.observe(measure_at, window);
            let total = obs.cold_hist.total_pages().max(1);
            obs.cold_hist.pages_colder_than(t) as f64 / total as f64
        })
        .collect();
    let cdf = Cdf::from_samples(&fractions).expect("fleet is non-empty");
    Fig3 {
        cdf: cdf.series(50),
        bottom_decile: cdf.value_at(sdfm_types::stats::Percentile::new(10.0).expect("valid")),
        top_decile: cdf.value_at(sdfm_types::stats::Percentile::P90),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_paper_shape() {
        let rows = figure1(&Scale::small());
        assert_eq!(rows.len(), FIG1_THRESHOLDS.len());
        // Cold fraction decreases with T; promotion rate decreases with T.
        for w in rows.windows(2) {
            assert!(w[1].cold_fraction <= w[0].cold_fraction + 1e-9);
            assert!(
                w[1].promotion_rate_per_min <= w[0].promotion_rate_per_min + 0.02,
                "promotion rate not falling: {w:?}"
            );
        }
        // Paper anchors: ~32% cold at T=120 s, ~15%/min promotion rate.
        let t120 = &rows[0];
        assert!(
            (0.20..=0.45).contains(&t120.cold_fraction),
            "cold at 120 s = {}",
            t120.cold_fraction
        );
        assert!(
            (0.05..=0.35).contains(&t120.promotion_rate_per_min),
            "promotion rate at 120 s = {}",
            t120.promotion_rate_per_min
        );
        // At 8 h, cold memory should be down to the frozen core.
        assert!(rows.last().unwrap().cold_fraction < t120.cold_fraction * 0.9);
    }

    #[test]
    fn figure2_shows_intra_cluster_spread() {
        let rows = figure2(&Scale::small());
        assert_eq!(rows.len(), 10);
        // Clusters must differ (inter-cluster heterogeneity)...
        let medians: Vec<f64> = rows.iter().map(|r| r.summary.median).collect();
        let spread = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - medians.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.1, "cluster medians too uniform: {medians:?}");
        for r in &rows {
            assert!(r.summary.min >= 0.0 && r.summary.max <= 1.0);
        }
    }

    #[test]
    fn figure3_deciles_match_paper_ordering() {
        let f = figure3(&Scale::small());
        assert!(f.bottom_decile < 0.25, "bottom decile {}", f.bottom_decile);
        assert!(f.top_decile > 0.35, "top decile {}", f.top_decile);
        assert!(f.top_decile > f.bottom_decile + 0.2);
        // CDF is monotone.
        for w in f.cdf.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }
}
