//! Ablations of the design choices the paper calls out.
//!
//! 1. **Proactive vs reactive** (§3.2): upstream zswap compresses only
//!    under direct reclaim; the paper's system compresses cold pages in
//!    the background. Reactive realizes no savings until pressure and
//!    suffers bursty faults.
//! 2. **Global vs per-memcg zsmalloc arena** (§5.1): per-job arenas
//!    fragment externally when machines pack many jobs.
//! 3. **K-percentile + spike override vs last-window-best** (§4.3): the
//!    naive controller violates the SLO far more often.
//! 4. **GP Bandit vs random / grid search** (§5.3): sample efficiency of
//!    the tuner.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use super::Scale;
use sdfm_agent::{best_threshold_for_window, AgentParams, SloConfig};
use sdfm_compress::zsmalloc::ZsmallocArena;
use sdfm_model::{FarMemoryModel, JobTrace, ModelConfig};
use sdfm_types::histogram::{PageAge, PromotionHistogram};
use sdfm_types::time::SimDuration;

// ---------------------------------------------------------------------------
// Ablation 1: proactive vs reactive zswap
// ---------------------------------------------------------------------------

/// Outcome of the proactive-vs-reactive comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationReactive {
    /// Mean pages saved over the run, proactive control plane.
    pub proactive_mean_saved: f64,
    /// Mean pages saved, reactive (direct-reclaim-only) mode.
    pub reactive_mean_saved: f64,
    /// Peak promotions in any minute, proactive.
    pub proactive_peak_promotions: u64,
    /// Peak promotions in any minute, reactive.
    pub reactive_peak_promotions: u64,
}

/// Compares the proactive control plane against reactive
/// compress-on-pressure on an identical single-machine workload.
pub fn ablation_reactive(minutes: u64, seed: u64) -> AblationReactive {
    use sdfm_kernel::{Kernel, KernelConfig};
    use sdfm_types::ids::JobId;
    use sdfm_types::size::PageCount;
    use sdfm_types::time::{SimTime, MINUTE};
    use sdfm_workloads::profile::{DiurnalPattern, JobPriority, JobProfile, RateBucket};
    use sdfm_workloads::PageLevelDriver;

    let profile = JobProfile {
        template: "ablation".into(),
        rate_buckets: vec![
            RateBucket {
                pages: 2_000,
                rate_per_sec: 0.2,
            },
            RateBucket {
                pages: 1_000,
                rate_per_sec: 1.0 / 900.0,
            },
            RateBucket {
                pages: 7_000,
                rate_per_sec: 1e-9,
            },
        ],
        diurnal: DiurnalPattern::FLAT,
        mix: sdfm_compress::gen::CompressibilityMix::fleet_default(),
        cpu_cores: 2.0,
        write_fraction: 0.1,
        burst_interval: None,
        priority: JobPriority::Batch,
        lifetime: SimDuration::from_hours(10_000),
    };
    let job = JobId::new(1);
    let capacity = PageCount::new(11_000);

    let run = |proactive: bool| -> (f64, u64) {
        let mut kernel = Kernel::new(KernelConfig {
            capacity,
            ..KernelConfig::default()
        });
        let mut driver = PageLevelDriver::new(job, profile.clone(), seed);
        driver.populate(&mut kernel).expect("fits");
        let mut agent = sdfm_agent::NodeAgent::new(
            AgentParams::new(95.0, SimDuration::from_mins(4)).expect("valid"),
            SloConfig::default(),
        );
        if proactive {
            agent.register_job(job, SimTime::ZERO);
        }
        let mut saved_sum = 0.0;
        let mut peak_promos = 0u64;
        let mut prev_decomp = 0u64;
        for m in 1..=minutes {
            let now = SimTime::ZERO + MINUTE * m;
            driver.run_window(&mut kernel, now, MINUTE).expect("runs");
            if now.as_secs().is_multiple_of(120) {
                kernel.run_scan();
            }
            if proactive {
                agent.tick(now, &mut kernel);
            } else {
                // Reactive: compress only when the machine nears exhaustion
                // (here: simulate periodic pressure from colocated churn by
                // demanding headroom when free memory dips).
                if kernel.free_frames() < PageCount::new(800) {
                    kernel
                        .direct_reclaim(PageCount::new(1_500))
                        .expect("direct reclaim");
                }
                // Pressure source: a colocated allocation burst every 2 h.
                if m % 120 == 0 {
                    kernel
                        .direct_reclaim(PageCount::new(2_000))
                        .expect("direct reclaim");
                }
            }
            let stats = kernel.machine_stats();
            saved_sum += stats.pages_saved().get() as f64;
            let decomp = kernel.cpu_accounting().decompress_events;
            peak_promos = peak_promos.max(decomp - prev_decomp);
            prev_decomp = decomp;
        }
        (saved_sum / minutes as f64, peak_promos)
    };

    let (proactive_mean_saved, proactive_peak_promotions) = run(true);
    let (reactive_mean_saved, reactive_peak_promotions) = run(false);
    AblationReactive {
        proactive_mean_saved,
        reactive_mean_saved,
        proactive_peak_promotions,
        reactive_peak_promotions,
    }
}

// ---------------------------------------------------------------------------
// Ablation 2: global vs per-memcg zsmalloc arena
// ---------------------------------------------------------------------------

/// Outcome of the arena-layout comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationArena {
    /// Physical pages held by one global arena after churn.
    pub global_pages: u64,
    /// Sum of pages across per-job arenas after the same churn.
    pub per_job_pages: u64,
    /// External fragmentation, global.
    pub global_fragmentation: f64,
    /// Mean external fragmentation, per-job.
    pub per_job_fragmentation: f64,
}

/// Replays an identical allocation/free churn through one global arena and
/// through per-job arenas (§5.1: thousands of per-memcg arenas fragmented
/// to the point of negative gains).
pub fn ablation_arena(jobs: usize, objects_per_job: usize, seed: u64) -> AblationArena {
    let mut rng = StdRng::seed_from_u64(seed);
    // Script the churn once so both layouts see identical traffic:
    // (job, size, keep) tuples; ~70% of objects are freed afterwards.
    let script: Vec<(usize, usize, bool)> = (0..jobs * objects_per_job)
        .map(|i| (i % jobs, rng.gen_range(200..2_800), rng.gen_bool(0.3)))
        .collect();

    // Global arena.
    let mut global = ZsmallocArena::new();
    let mut global_handles = Vec::new();
    for &(_, size, keep) in &script {
        let h = global
            .alloc(Bytes::from(vec![0u8; size]))
            .expect("valid size");
        if !keep {
            global_handles.push(h);
        }
    }
    for h in global_handles {
        global.free(h).expect("live");
    }

    // Per-job arenas.
    let mut arenas: Vec<ZsmallocArena> = (0..jobs).map(|_| ZsmallocArena::new()).collect();
    let mut per_job_handles: Vec<Vec<_>> = vec![Vec::new(); jobs];
    for &(job, size, keep) in &script {
        let h = arenas[job]
            .alloc(Bytes::from(vec![0u8; size]))
            .expect("valid size");
        if !keep {
            per_job_handles[job].push(h);
        }
    }
    for (job, handles) in per_job_handles.into_iter().enumerate() {
        for h in handles {
            arenas[job].free(h).expect("live");
        }
    }

    let global_stats = global.stats();
    let per_job_pages: u64 = arenas.iter().map(|a| a.stats().zspage_pages).sum();
    let per_job_fragmentation = arenas
        .iter()
        .map(|a| a.stats().external_fragmentation())
        .sum::<f64>()
        / jobs as f64;
    AblationArena {
        global_pages: global_stats.zspage_pages,
        per_job_pages,
        global_fragmentation: global_stats.external_fragmentation(),
        per_job_fragmentation,
    }
}

// ---------------------------------------------------------------------------
// Ablation 3: the controller policy
// ---------------------------------------------------------------------------

/// Outcome of the controller-policy comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationController {
    /// Fraction of windows violating the SLO, K-percentile policy.
    pub kp_violation_rate: f64,
    /// Fraction of windows violating the SLO, last-window-best policy.
    pub naive_violation_rate: f64,
    /// Mean far-memory pages, K-percentile policy.
    pub kp_cold_pages: f64,
    /// Mean far-memory pages, naive policy.
    pub naive_cold_pages: f64,
}

/// Replays the same fleet trace under the paper's K-percentile policy and
/// under a naive "use last window's best" policy, comparing SLO violation
/// rates.
pub fn ablation_controller(traces: &[JobTrace], k: f64) -> AblationController {
    let slo = SloConfig::default();
    let target = slo.target.fraction_per_min();
    let params = AgentParams::new(k, SimDuration::ZERO).expect("valid k");

    let mut kp_viol = 0usize;
    let mut kp_total = 0usize;
    let mut kp_cold = 0.0;
    let mut naive_viol = 0usize;
    let mut naive_total = 0usize;
    let mut naive_cold = 0.0;
    let empty = PromotionHistogram::new();

    for trace in traces {
        // K-percentile via the production replay.
        let out = sdfm_model::replay_job(trace, &params, &slo);
        for w in &out.windows {
            if !w.enabled {
                continue;
            }
            kp_total += 1;
            kp_cold += w.cold_pages as f64;
            if w.normalized_rate.fraction_per_min() > target {
                kp_viol += 1;
            }
        }
        // Naive: threshold_i = best_{i-1}.
        let mut prev_best: Option<PageAge> = None;
        for r in &trace.records {
            if let Some(threshold) = prev_best {
                naive_total += 1;
                naive_cold += r.cold_hist.pages_colder_than(threshold) as f64;
                let promos = r.promo_delta.promotions_colder_than(threshold);
                let rate =
                    promos as f64 / r.window.as_mins_f64() / r.working_set.get().max(1) as f64;
                if rate > target {
                    naive_viol += 1;
                }
            }
            prev_best = Some(best_threshold_for_window(
                &r.promo_delta,
                &empty,
                r.working_set,
                r.window,
                &slo,
            ));
        }
    }
    AblationController {
        kp_violation_rate: kp_viol as f64 / kp_total.max(1) as f64,
        naive_violation_rate: naive_viol as f64 / naive_total.max(1) as f64,
        kp_cold_pages: kp_cold / kp_total.max(1) as f64,
        naive_cold_pages: naive_cold / naive_total.max(1) as f64,
    }
}

// ---------------------------------------------------------------------------
// Ablation 3b: accessed-bit scanning (kstaled) vs fault sampling (Thermostat)
// ---------------------------------------------------------------------------

/// Outcome of the cold-detection mechanism comparison (§7: the paper's
/// accessed-bit scanning vs Agarwal & Wenisch's Thermostat-style
/// page-fault sampling).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationThermostat {
    /// Ground-truth cold fraction from the access process.
    pub true_cold_fraction: f64,
    /// kstaled's measured cold fraction (exact up to scan quantization).
    pub kstaled_cold_fraction: f64,
    /// Thermostat's sampled estimate of the cold fraction.
    pub thermostat_cold_fraction: f64,
    /// Mean absolute error of the Thermostat estimate across periods.
    pub thermostat_mean_abs_err: f64,
    /// Pages kstaled walked over the run (its overhead unit).
    pub kstaled_pages_scanned: u64,
    /// Soft faults Thermostat induced over the run (its overhead unit).
    pub thermostat_faults_induced: u64,
}

/// Drives one job and measures both cold-detection mechanisms against the
/// profile's analytic ground truth.
pub fn ablation_thermostat(minutes: u64, sample_rate: f64, seed: u64) -> AblationThermostat {
    use sdfm_kernel::{Kernel, KernelConfig, ThermostatSampler};
    use sdfm_types::ids::JobId;
    use sdfm_types::size::PageCount;
    use sdfm_types::time::{SimTime, MINUTE};
    use sdfm_workloads::profile::{DiurnalPattern, JobPriority, JobProfile, RateBucket};
    use sdfm_workloads::PageLevelDriver;

    let profile = JobProfile {
        template: "thermostat-ablation".into(),
        rate_buckets: vec![
            RateBucket {
                pages: 4_000,
                rate_per_sec: 0.1,
            },
            RateBucket {
                pages: 2_000,
                rate_per_sec: 1.0 / 600.0,
            },
            RateBucket {
                pages: 4_000,
                rate_per_sec: 1e-9,
            },
        ],
        diurnal: DiurnalPattern::FLAT,
        mix: sdfm_compress::gen::CompressibilityMix::fleet_default(),
        cpu_cores: 2.0,
        write_fraction: 0.1,
        burst_interval: None,
        priority: JobPriority::Batch,
        lifetime: SimDuration::from_hours(10_000),
    };
    let true_cold_fraction = profile.expected_cold_fraction(120.0, 1.0);
    let job = JobId::new(1);
    let mut kernel = Kernel::new(KernelConfig {
        capacity: PageCount::new(30_000),
        ..KernelConfig::default()
    });
    let mut driver = PageLevelDriver::new(job, profile, seed);
    driver.populate(&mut kernel).expect("fits");
    // Thermostat periods match the kstaled cadence (2 minutes).
    let mut sampler = ThermostatSampler::new(sample_rate, 2.0, seed ^ 0x7E);

    let mut kstaled_pages = 0u64;
    let mut faults = 0u64;
    let mut est_errs = Vec::new();
    let mut last_kstaled_cold = 0.0;
    let mut last_thermostat_cold = 0.0;
    for m in 1..=minutes {
        let now = SimTime::ZERO + MINUTE * m;
        driver.run_window(&mut kernel, now, MINUTE).expect("runs");
        if now.as_secs().is_multiple_of(120) {
            // End the sampling period just before the scan, then restart.
            // (Order within the boundary minute does not matter for the
            // estimates; both observe the same access window.)
            {
                let cg = kernel.memcg_mut_for_experiments(job).expect("job exists");
                let est = sampler.end_period(cg);
                if est.sampled > 0 && m > 10 {
                    last_thermostat_cold = est.est_cold_fraction;
                    est_errs.push((est.est_cold_fraction - true_cold_fraction).abs());
                }
                faults += est.faults_induced;
            }
            let scan = kernel.run_scan();
            kstaled_pages += scan.pages_scanned;
            {
                let cg = kernel.memcg(job).expect("job exists");
                last_kstaled_cold = cg.cold_pages(PageAge::from_scans(1)).get() as f64
                    / cg.usage().get().max(1) as f64;
            }
            let cg = kernel.memcg_mut_for_experiments(job).expect("job exists");
            sampler.begin_period(cg);
        }
    }
    AblationThermostat {
        true_cold_fraction,
        kstaled_cold_fraction: last_kstaled_cold,
        thermostat_cold_fraction: last_thermostat_cold,
        thermostat_mean_abs_err: if est_errs.is_empty() {
            0.0
        } else {
            est_errs.iter().sum::<f64>() / est_errs.len() as f64
        },
        kstaled_pages_scanned: kstaled_pages,
        thermostat_faults_induced: faults,
    }
}

// ---------------------------------------------------------------------------
// Ablation 3c: kstaled scan cadence
// ---------------------------------------------------------------------------

/// One scan-cadence configuration's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScanCadenceRow {
    /// Minutes between kstaled scans.
    pub scan_every_mins: u64,
    /// Total pages walked by the scanner (its CPU proxy; the paper bounds
    /// kstaled at ~11% of one core).
    pub pages_scanned: u64,
    /// Mean pages saved over the run.
    pub mean_saved: f64,
    /// Realized promotions per minute (staleness makes the controller act
    /// on old ages, faulting more).
    pub promotions_per_min: f64,
}

/// Sweeps the kstaled scan cadence (§5.1: "we empirically tune its scan
/// period while trading off for finer-grained page access information").
/// Finer scans cost CPU; coarser scans blur the histograms and delay the
/// controller.
pub fn ablation_scan_period(minutes: u64, seed: u64) -> Vec<ScanCadenceRow> {
    use sdfm_agent::NodeAgent;
    use sdfm_kernel::{Kernel, KernelConfig};
    use sdfm_types::ids::JobId;
    use sdfm_types::size::PageCount;
    use sdfm_types::time::{SimTime, MINUTE};
    use sdfm_workloads::profile::{DiurnalPattern, JobPriority, JobProfile, RateBucket};
    use sdfm_workloads::PageLevelDriver;

    let profile = JobProfile {
        template: "scan-cadence".into(),
        rate_buckets: vec![
            RateBucket {
                pages: 3_000,
                rate_per_sec: 0.1,
            },
            RateBucket {
                pages: 2_000,
                rate_per_sec: 1.0 / 600.0,
            },
            RateBucket {
                pages: 5_000,
                rate_per_sec: 1e-9,
            },
        ],
        diurnal: DiurnalPattern::FLAT,
        mix: sdfm_compress::gen::CompressibilityMix::fleet_default(),
        cpu_cores: 2.0,
        write_fraction: 0.1,
        burst_interval: None,
        priority: JobPriority::Batch,
        lifetime: SimDuration::from_hours(10_000),
    };
    let job = JobId::new(1);

    [1u64, 2, 5, 10]
        .into_iter()
        .map(|cadence| {
            let mut kernel = Kernel::new(KernelConfig {
                capacity: PageCount::new(30_000),
                ..KernelConfig::default()
            });
            let mut driver = PageLevelDriver::new(job, profile.clone(), seed);
            driver.populate(&mut kernel).expect("fits");
            let mut agent = NodeAgent::new(
                AgentParams::new(95.0, SimDuration::from_mins(4)).expect("valid"),
                SloConfig::default(),
            );
            agent.register_job(job, SimTime::ZERO);
            let mut pages_scanned = 0u64;
            let mut saved_sum = 0.0;
            for m in 1..=minutes {
                let now = SimTime::ZERO + MINUTE * m;
                driver.run_window(&mut kernel, now, MINUTE).expect("runs");
                if m % cadence == 0 {
                    pages_scanned += kernel.run_scan().pages_scanned;
                }
                agent.tick(now, &mut kernel);
                saved_sum += kernel.machine_stats().pages_saved().get() as f64;
            }
            let promos = kernel
                .memcg(job)
                .expect("job exists")
                .stats()
                .decompressions;
            ScanCadenceRow {
                scan_every_mins: cadence,
                pages_scanned,
                mean_saved: saved_sum / minutes as f64,
                promotions_per_min: promos as f64 / minutes as f64,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Ablation 3d: huge pages and memory layout
// ---------------------------------------------------------------------------

/// One memory-layout configuration's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HugePageRow {
    /// Layout label.
    pub layout: HugeLayout,
    /// Frames compressed into far memory at steady state.
    pub zswapped_frames: u64,
    /// Huge pages split along the way.
    pub huge_splits: u64,
    /// Entries kstaled walks per scan (huge mappings shrink the walk).
    pub entries_scanned_per_pass: u64,
}

/// The three layouts compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HugeLayout {
    /// 4 KiB base pages throughout.
    BasePages,
    /// 2 MiB huge pages; hot and cold data segregated into different huge
    /// pages.
    HugeSegregated,
    /// 2 MiB huge pages; one hot 4 KiB frame inside every huge page.
    HugeInterleaved,
}

impl std::fmt::Display for HugeLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HugeLayout::BasePages => write!(f, "base-4k"),
            HugeLayout::HugeSegregated => write!(f, "huge-segregated"),
            HugeLayout::HugeInterleaved => write!(f, "huge-interleaved"),
        }
    }
}

/// §7's huge-page point, quantified: the same 16 MiB of memory — 2 MiB of
/// it hot — under three mappings. Base pages and *segregated* huge pages
/// compress the cold bulk (huge pages split before swap); *interleaved*
/// hot frames pin entire huge pages in DRAM and nothing is saved.
pub fn ablation_hugepages(scans: u64, seed: u64) -> Vec<HugePageRow> {
    use sdfm_kernel::page::HUGE_SPAN;
    use sdfm_kernel::{Kernel, KernelConfig, PageContent};
    use sdfm_types::ids::{JobId, PageId};
    use sdfm_types::size::PageCount;

    let _ = seed; // deterministic layout experiment
    let job = JobId::new(1);
    let n_huge = 8usize; // 16 MiB
    let span = HUGE_SPAN as u64;

    [
        HugeLayout::BasePages,
        HugeLayout::HugeSegregated,
        HugeLayout::HugeInterleaved,
    ]
    .into_iter()
    .map(|layout| {
        let mut kernel = Kernel::new(KernelConfig {
            capacity: PageCount::new(n_huge as u64 * span * 2),
            ..KernelConfig::default()
        });
        kernel
            .create_memcg(job, PageCount::new(n_huge as u64 * span * 2))
            .expect("fresh");
        match layout {
            HugeLayout::BasePages => kernel
                .alloc_pages(job, n_huge * HUGE_SPAN as usize, |_| {
                    PageContent::synthetic_of_len(700)
                })
                .expect("fits"),
            _ => kernel
                .alloc_huge_pages(job, n_huge, |_| PageContent::synthetic_of_len(700))
                .expect("fits"),
        }
        kernel.set_zswap_enabled(job, true).expect("job exists");

        let mut huge_splits = 0u64;
        let mut entries = 0u64;
        for s in 0..scans {
            // The hot set: one huge page's worth of frames.
            match layout {
                HugeLayout::BasePages => {
                    // Hot frames spread one per 2 MiB region (same logical
                    // pattern as the interleaved layout, but 4 KiB mapped).
                    for h in 0..n_huge as u64 {
                        for f in 0..span / 8 {
                            kernel
                                .touch(job, PageId::new(h * span + f * 8), false)
                                .expect("page exists");
                        }
                    }
                }
                HugeLayout::HugeSegregated => {
                    // The whole hot working set lives in huge page 0.
                    kernel
                        .touch(job, PageId::new(0), false)
                        .expect("page exists");
                }
                HugeLayout::HugeInterleaved => {
                    // One hot frame inside every huge page: each PMD access
                    // keeps its whole 2 MiB young.
                    for h in 0..n_huge as u64 {
                        kernel
                            .touch(job, PageId::new(h), false)
                            .expect("page exists");
                    }
                }
            }
            let scan = kernel.run_scan();
            entries = scan.pages_scanned;
            if s >= 2 {
                let o = kernel
                    .reclaim_job(job, sdfm_types::histogram::PageAge::from_scans(2))
                    .expect("job exists");
                huge_splits += o.huge_splits;
            }
        }
        HugePageRow {
            layout,
            zswapped_frames: kernel
                .memcg(job)
                .expect("job exists")
                .stats()
                .zswapped_pages,
            huge_splits,
            entries_scanned_per_pass: entries,
        }
    })
    .collect()
}

// ---------------------------------------------------------------------------
// Ablation 4: GP Bandit vs random vs grid
// ---------------------------------------------------------------------------

/// One tuner strategy's outcome at a trial budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunerOutcome {
    /// Best feasible objective found.
    pub best_objective: f64,
    /// Trials spent.
    pub trials: usize,
}

/// Outcome of the tuner-strategy comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationTuner {
    /// GP Bandit.
    pub bandit: TunerOutcome,
    /// Uniform random search.
    pub random: TunerOutcome,
    /// Full-factorial grid (same budget, rounded down).
    pub grid: TunerOutcome,
}

/// Compares GP Bandit, random search, and grid search on the fast-model
/// objective with the same trial budget.
pub fn ablation_tuner(traces: Vec<JobTrace>, budget: usize, seed: u64) -> AblationTuner {
    use sdfm_autotuner::SearchSpace;
    let slo = SloConfig::default();
    let target = slo.target.fraction_per_min();
    let model = FarMemoryModel::new(traces);
    let eval = |k: f64, s: f64| -> (f64, f64) {
        let params = AgentParams::new(
            k.clamp(0.0, 100.0),
            SimDuration::from_secs(s.max(0.0) as u64),
        )
        .expect("clamped");
        let r = model.evaluate(&ModelConfig {
            slo,
            ..ModelConfig::new(params)
        });
        // Unmeasured constraint (no enabled windows) = infeasible; keep
        // the penalty finite for the GP arm's standardization.
        let con = r
            .p98_normalized_rate
            .map(|p98| p98.fraction_per_min())
            .unwrap_or(target * 10.0);
        (r.avg_cold_pages, con)
    };

    // GP Bandit, driven directly over the same evaluation function.
    let space = SearchSpace::agent_params();
    let mut bandit = sdfm_autotuner::GpBandit::new(
        space.clone(),
        sdfm_autotuner::BanditConfig::default().with_constraint_limit(target),
        seed,
    );
    let mut bandit_best = f64::NEG_INFINITY;
    for _ in 0..budget {
        let p = bandit.suggest();
        let (obj, con) = eval(p[0], p[1]);
        if con <= target {
            bandit_best = bandit_best.max(obj);
        }
        bandit.observe(p, obj, con);
    }

    // Random search.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
    let mut random_best = f64::NEG_INFINITY;
    for _ in 0..budget {
        let p = space.sample(&mut rng);
        let (obj, con) = eval(p[0], p[1]);
        if con <= target {
            random_best = random_best.max(obj);
        }
    }

    // Grid search with at most `budget` points.
    let per_dim = ((budget as f64).sqrt().floor() as usize).max(2);
    let mut grid_best = f64::NEG_INFINITY;
    let grid = space.grid(per_dim);
    for p in grid.iter().take(budget) {
        let (obj, con) = eval(p[0], p[1]);
        if con <= target {
            grid_best = grid_best.max(obj);
        }
    }

    AblationTuner {
        bandit: TunerOutcome {
            best_objective: bandit_best,
            trials: budget,
        },
        random: TunerOutcome {
            best_objective: random_best,
            trials: budget,
        },
        grid: TunerOutcome {
            best_objective: grid_best,
            trials: grid.len().min(budget),
        },
    }
}

/// Convenience: collects a small trace set sized by `scale` for the
/// controller/tuner ablations.
pub fn ablation_traces(scale: &Scale) -> Vec<JobTrace> {
    super::collect_fleet_traces(scale, scale.measure_windows.max(8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proactive_beats_reactive_on_savings_and_burstiness() {
        let a = ablation_reactive(240, 3);
        assert!(
            a.proactive_mean_saved > a.reactive_mean_saved,
            "proactive {} !> reactive {}",
            a.proactive_mean_saved,
            a.reactive_mean_saved
        );
        assert!(a.proactive_mean_saved > 1_000.0);
    }

    #[test]
    fn global_arena_fragments_less_than_per_job() {
        let a = ablation_arena(24, 200, 5);
        assert!(
            a.global_pages <= a.per_job_pages,
            "global {} pages vs per-job {}",
            a.global_pages,
            a.per_job_pages
        );
        assert!(
            a.global_fragmentation <= a.per_job_fragmentation + 0.02,
            "global frag {} vs per-job {}",
            a.global_fragmentation,
            a.per_job_fragmentation
        );
    }

    #[test]
    fn kp_policy_violates_less_than_naive() {
        let traces = ablation_traces(&Scale::small());
        let a = ablation_controller(&traces, 98.0);
        assert!(
            a.kp_violation_rate <= a.naive_violation_rate + 1e-9,
            "kp {} vs naive {}",
            a.kp_violation_rate,
            a.naive_violation_rate
        );
        assert!(
            a.kp_violation_rate < 0.15,
            "kp violations {}",
            a.kp_violation_rate
        );
    }

    #[test]
    fn hugepage_layouts_match_section7_story() {
        let rows = ablation_hugepages(8, 1);
        let by = |l: HugeLayout| *rows.iter().find(|r| r.layout == l).expect("ran");
        let base = by(HugeLayout::BasePages);
        let seg = by(HugeLayout::HugeSegregated);
        let inter = by(HugeLayout::HugeInterleaved);
        // Interleaved hot frames pin everything: nothing saved, no splits.
        assert_eq!(inter.zswapped_frames, 0);
        assert_eq!(inter.huge_splits, 0);
        // Segregated huge pages split and compress the cold 7/8.
        assert!(seg.huge_splits >= 7, "splits {}", seg.huge_splits);
        assert!(
            seg.zswapped_frames > 2_000,
            "segregated saved only {}",
            seg.zswapped_frames
        );
        // Base pages compress the cold frames too.
        assert!(base.zswapped_frames > 2_000);
        // Huge mappings make kstaled's walk ~512x smaller before splits.
        assert!(inter.entries_scanned_per_pass * 100 < base.entries_scanned_per_pass);
    }

    #[test]
    fn finer_scans_cost_more_cpu_for_similar_savings() {
        let rows = ablation_scan_period(90, 11);
        assert_eq!(rows.len(), 4);
        // Scan CPU falls monotonically with cadence.
        for w in rows.windows(2) {
            assert!(
                w[1].pages_scanned < w[0].pages_scanned,
                "coarser cadence must scan fewer pages: {w:?}"
            );
        }
        // All cadences realize substantial savings on this idle-heavy job.
        for r in &rows {
            assert!(
                r.mean_saved > 1_000.0,
                "cadence {} saved only {}",
                r.scan_every_mins,
                r.mean_saved
            );
        }
        // The default 2-minute cadence walks half the pages of 1-minute.
        assert!(rows[1].pages_scanned * 2 <= rows[0].pages_scanned + 10_000);
    }

    #[test]
    fn kstaled_is_exact_thermostat_is_noisy_but_cheap() {
        let a = ablation_thermostat(60, 0.02, 5);
        // kstaled nails the cold fraction (it walks every page).
        assert!(
            (a.kstaled_cold_fraction - a.true_cold_fraction).abs() < 0.08,
            "kstaled {} vs truth {}",
            a.kstaled_cold_fraction,
            a.true_cold_fraction
        );
        // Thermostat is in the right ballpark but carries sampling error.
        assert!(
            (a.thermostat_cold_fraction - a.true_cold_fraction).abs() < 0.2,
            "thermostat {} vs truth {}",
            a.thermostat_cold_fraction,
            a.true_cold_fraction
        );
        // Thermostat touches far fewer pages than kstaled walks.
        assert!(
            a.thermostat_faults_induced * 20 < a.kstaled_pages_scanned,
            "sampling induced {} faults vs {} pages scanned",
            a.thermostat_faults_induced,
            a.kstaled_pages_scanned
        );
    }

    #[test]
    fn bandit_not_worse_than_random_at_same_budget() {
        // The feasible region is thin by construction (high K plus enough
        // warmup to skip the noisy early windows), so use traces long
        // enough that a sane warmup still leaves savings on the table, and
        // a realistic trial budget.
        let scale = Scale {
            machines_per_cluster: 2,
            warmup_windows: 0,
            measure_windows: 36,
            seed: 42,
            threads: 0,
        };
        let traces = ablation_traces(&scale);
        let a = ablation_tuner(traces, 40, 9);
        assert!(
            a.bandit.best_objective > 0.0,
            "bandit found no feasible point"
        );
        assert!(
            a.bandit.best_objective >= a.random.best_objective * 0.9,
            "bandit {} vs random {}",
            a.bandit.best_objective,
            a.random.best_objective
        );
    }
}
