//! The §8 future-work experiment: one software tier (zswap) vs one
//! hardware tier (fixed-capacity NVM) vs the combined two-tier ladder —
//! and the generalized demotion chain (zswap → SSD → remote) behind the
//! same measurement harness.
//!
//! The paper's closing vision: "multiple tiers of far memory (sub-µs
//! tier-1 and single-µs tier-2), all managed intelligently". This
//! experiment runs the same workload under four far-memory
//! configurations and reports the trade the paper predicts:
//!
//! * **zswap only** — elastic capacity, but every fault pays single-digit
//!   µs of decompression;
//! * **tier-1 only** — sub-µs faults, but the fixed device strands when
//!   cold memory exceeds it (§2.1's provisioning dilemma);
//! * **two-tier** — warm-cold pages sit in the fast device, deep-cold
//!   overflows into compression: most of the DRAM savings at a fraction
//!   of the mean fault latency, with no stranding;
//! * **three-tier** — compression in front of a finite SSD with remote
//!   overflow: the coldest compressed pages decay *down* the chain under
//!   [`StorePressure`], so a full SSD spills to the remote tier instead
//!   of stranding demand.
//!
//! All four modes run on the generalized [`sdfm_kernel::DemotionChain`];
//! the two-tier modes are the exact two-backend special case
//! ([`Tier1Config::backend`]), so their numbers are bit-identical to the
//! pre-chain implementation.

use serde::{Deserialize, Serialize};

use sdfm_kernel::{
    BackendConfig, BackendKind, Kernel, KernelConfig, StorePressure, Tier1Config,
};
use sdfm_types::histogram::PageAge;
use sdfm_types::ids::JobId;
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime, MINUTE};
use sdfm_workloads::profile::{DiurnalPattern, JobPriority, JobProfile, RateBucket};
use sdfm_workloads::PageLevelDriver;

/// Which far-memory configuration ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TierMode {
    /// zswap only (the paper's production system).
    ZswapOnly,
    /// Fixed-capacity NVM only.
    Tier1Only,
    /// Both, with the demotion ladder.
    TwoTier,
    /// Compressed RAM in front of a finite SSD with remote overflow,
    /// drained by the [`StorePressure`] demotion policy.
    ThreeTier,
}

impl std::fmt::Display for TierMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierMode::ZswapOnly => write!(f, "zswap-only"),
            TierMode::Tier1Only => write!(f, "tier1-only"),
            TierMode::TwoTier => write!(f, "two-tier"),
            TierMode::ThreeTier => write!(f, "three-tier"),
        }
    }
}

/// One configuration's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierOutcome {
    /// Which configuration.
    pub mode: TierMode,
    /// Mean DRAM pages freed over the measurement span (zswap savings +
    /// device-tier demotions).
    pub mean_dram_saved: f64,
    /// Mean device-tier pages occupied (NVM / SSD / remote).
    pub mean_nvm_used: f64,
    /// Faults served by device tiers (NVM, SSD, or remote).
    pub tier1_faults: u64,
    /// Faults served by zswap (single-digit µs decompression).
    pub tier2_faults: u64,
    /// Mean fault-back latency in µs across all tiers.
    pub mean_fault_latency_us: f64,
    /// Demotions a full device refused (stranding / overflow events).
    pub stranding_rejections: u64,
    /// Per-byte transfer dollars the chain accrued, in nanocents —
    /// nonzero only when a costed (remote) tier saw traffic.
    pub transfer_cost_nanocents: u64,
}

fn workload() -> JobProfile {
    JobProfile {
        template: "two-tier".into(),
        rate_buckets: vec![
            RateBucket {
                pages: 6_000,
                rate_per_sec: 0.1, // hot
            },
            RateBucket {
                pages: 3_000,
                rate_per_sec: 1.0 / 900.0, // warm-cold: faults back often
            },
            RateBucket {
                pages: 5_000,
                rate_per_sec: 1.0 / 7_200.0, // cool
            },
            RateBucket {
                pages: 2_000,
                rate_per_sec: 1e-9, // frozen
            },
        ],
        diurnal: DiurnalPattern::FLAT,
        mix: sdfm_compress::gen::CompressibilityMix::fleet_default(),
        cpu_cores: 2.0,
        write_fraction: 0.1,
        burst_interval: None,
        priority: JobPriority::Batch,
        lifetime: SimDuration::from_hours(10_000),
    }
}

/// Runs all four configurations on identical workloads.
pub fn experiment_two_tier(minutes: u64, nvm_pages: u64, seed: u64) -> Vec<TierOutcome> {
    experiment_tier_modes(
        &[
            TierMode::ZswapOnly,
            TierMode::Tier1Only,
            TierMode::TwoTier,
            TierMode::ThreeTier,
        ],
        minutes,
        nvm_pages,
        seed,
    )
}

/// Runs a chosen subset of configurations on identical workloads.
pub fn experiment_tier_modes(
    modes: &[TierMode],
    minutes: u64,
    nvm_pages: u64,
    seed: u64,
) -> Vec<TierOutcome> {
    modes
        .iter()
        .map(|&mode| run_mode(mode, minutes, nvm_pages, seed))
        .collect()
}

fn run_mode(mode: TierMode, minutes: u64, nvm_pages: u64, seed: u64) -> TierOutcome {
    let job = JobId::new(1);
    let mut kernel = Kernel::new(KernelConfig {
        capacity: PageCount::new(40_000),
        ..KernelConfig::default()
    });
    match mode {
        TierMode::ZswapOnly => {}
        TierMode::Tier1Only | TierMode::TwoTier => {
            kernel.enable_tier1(Tier1Config::nvm_like(PageCount::new(nvm_pages)));
        }
        TierMode::ThreeTier => {
            kernel.enable_chain(&[
                BackendConfig::compressed_ram(),
                BackendConfig::ssd(PageCount::new(nvm_pages)),
                BackendConfig::remote(),
            ]);
        }
    }
    let mut driver = PageLevelDriver::new(job, workload(), seed);
    driver.populate(&mut kernel).expect("fits");
    kernel.set_zswap_enabled(job, true).expect("job exists");

    // Thresholds: warm-cold boundary at 4 minutes, deep-cold at 1 hour.
    let t1 = PageAge::from_scans(2);
    let t2 = PageAge::from_scans(30);

    let mut dram_saved_sum = 0.0;
    let mut nvm_used_sum = 0.0;
    for m in 1..=minutes {
        let now = SimTime::ZERO + MINUTE * m;
        driver.run_window(&mut kernel, now, MINUTE).expect("runs");
        if now.as_secs().is_multiple_of(120) {
            kernel.run_scan();
        }
        match mode {
            TierMode::ZswapOnly => {
                kernel.reclaim_job(job, t1).expect("job exists");
            }
            TierMode::Tier1Only => {
                kernel
                    .reclaim_job_tiered(job, t1, PageAge::MAX)
                    .expect("job exists");
            }
            TierMode::TwoTier => {
                kernel.reclaim_job_tiered(job, t1, t2).expect("job exists");
            }
            TierMode::ThreeTier => {
                // Compress the cold mass, then push one decay window of
                // the coldest compressed pages down the chain.
                kernel.reclaim_job(job, t1).expect("job exists");
                let zswapped = kernel.memcg(job).expect("job exists").stats().zswapped_pages;
                let budget = StorePressure::PAPER_DEFAULT.decay_step(zswapped);
                kernel.demote_job(job, budget).expect("job exists");
            }
        }
        let s = kernel.machine_stats();
        dram_saved_sum += s.pages_saved_with_demoted().get() as f64;
        nvm_used_sum += s.demoted_total() as f64;
    }

    let cg_stats = kernel.memcg(job).expect("job exists").stats();
    let tier1_faults = cg_stats.demoted_loads_total();
    let tier2_faults = cg_stats.decompressions;
    let cost = kernel.config().cost;
    // Fault latency and overflow, generalized over the chain: each device
    // tier charges its configured fault cost per load; the compressed tier
    // charges the cost model's decompression. The two-tier modes reduce to
    // the old `tier1_faults × load_ns` arithmetic exactly.
    let (device_fault_ns, stranding_rejections, transfer_cost_nanocents) = match kernel.chain() {
        Some(chain) => {
            let mut ns = 0u64;
            let mut rejections = 0u64;
            for (cfg, st) in chain.configs().iter().zip(chain.stats()) {
                if cfg.kind != BackendKind::CompressedRam {
                    ns += st.loads * cfg.fault_ns();
                    rejections += st.full_rejections;
                }
            }
            (ns, rejections, chain.transfer_cost_nanocents())
        }
        None => (0, 0, 0),
    };
    let total_faults = tier1_faults + tier2_faults;
    let mean_fault_latency_us = if total_faults == 0 {
        0.0
    } else {
        (device_fault_ns as f64 + tier2_faults as f64 * cost.decompress_ns as f64)
            / total_faults as f64
            / 1_000.0
    };
    TierOutcome {
        mode,
        mean_dram_saved: dram_saved_sum / minutes as f64,
        mean_nvm_used: nvm_used_sum / minutes as f64,
        tier1_faults,
        tier2_faults,
        mean_fault_latency_us,
        stranding_rejections,
        transfer_cost_nanocents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tier_beats_both_single_tiers() {
        let outcomes = experiment_tier_modes(
            &[TierMode::ZswapOnly, TierMode::Tier1Only, TierMode::TwoTier],
            180,
            4_000,
            7,
        );
        let by_mode = |m: TierMode| *outcomes.iter().find(|o| o.mode == m).expect("ran");
        let zswap = by_mode(TierMode::ZswapOnly);
        let tier1 = by_mode(TierMode::Tier1Only);
        let two = by_mode(TierMode::TwoTier);

        // The fixed device strands: cold memory (~9k pages) exceeds its
        // 4k capacity.
        assert!(
            tier1.stranding_rejections > 0,
            "tier-1-only never hit its capacity wall"
        );
        assert!(tier1.mean_dram_saved < zswap.mean_dram_saved);

        // Two-tier frees at least as much DRAM as zswap alone (tier-1
        // absorbs warm-cold, zswap takes deep-cold)...
        assert!(
            two.mean_dram_saved > zswap.mean_dram_saved * 0.9,
            "two-tier saved {} vs zswap {}",
            two.mean_dram_saved,
            zswap.mean_dram_saved
        );
        // ...at a far lower mean fault latency (warm faults hit the sub-µs
        // device instead of the decompressor).
        assert!(
            two.mean_fault_latency_us < zswap.mean_fault_latency_us * 0.6,
            "two-tier latency {} vs zswap {}",
            two.mean_fault_latency_us,
            zswap.mean_fault_latency_us
        );
        assert!(
            two.tier1_faults > two.tier2_faults,
            "warm faults should dominate and hit tier-1"
        );
        // Nothing in the NVM ladder is dollar-costed.
        assert_eq!(two.transfer_cost_nanocents, 0);
    }

    #[test]
    fn zswap_only_uses_no_nvm() {
        let outcomes = experiment_tier_modes(&[TierMode::ZswapOnly], 30, 2_000, 9);
        let zswap = outcomes
            .iter()
            .find(|o| o.mode == TierMode::ZswapOnly)
            .expect("ran");
        assert_eq!(zswap.mean_nvm_used, 0.0);
        assert_eq!(zswap.tier1_faults, 0);
        assert_eq!(zswap.stranding_rejections, 0);
        assert_eq!(zswap.transfer_cost_nanocents, 0);
    }

    #[test]
    fn three_tier_overflows_a_full_ssd_to_remote() {
        let outcomes = experiment_tier_modes(&[TierMode::ThreeTier], 120, 1_000, 11);
        let three = outcomes
            .iter()
            .find(|o| o.mode == TierMode::ThreeTier)
            .expect("ran");
        // The decay policy sank compressed pages into the devices...
        assert!(three.mean_nvm_used > 0.0, "nothing demoted: {three:?}");
        assert!(three.mean_dram_saved > 0.0);
        // ...past the 1k-page SSD, so overflow landed on the costed
        // remote tier instead of stranding.
        assert!(
            three.stranding_rejections > 0,
            "SSD never filled: {three:?}"
        );
        assert!(
            three.transfer_cost_nanocents > 0,
            "remote traffic must accrue per-byte cost: {three:?}"
        );
    }
}
