//! The paper's headline scalar results (T1), the §4.3 worked example
//! (T2), and the footnote-1 codec comparison (FN1).

use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::tco::TcoModel;
use sdfm_compress::codec::CodecKind;
use sdfm_compress::gen::{CompressibilityMix, PageGenerator};
use sdfm_types::histogram::{PageAge, PromotionHistogram};
use sdfm_types::size::PAGE_SIZE;
use sdfm_types::time::SimDuration;

/// T1: the headline TCO arithmetic assembled from measured quantities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Cold-memory coverage used (paper: 0.20).
    pub coverage: f64,
    /// Cold-memory ceiling at the minimum threshold (paper: 0.32).
    pub cold_ceiling: f64,
    /// Compression ratio (paper: 3×).
    pub compression_ratio: f64,
    /// Per-compressed-page memory cost reduction (paper: 67%).
    pub page_cost_reduction: f64,
    /// Fleet DRAM savings fraction (paper: 4–5%).
    pub dram_savings: f64,
}

/// Computes T1 from measured inputs.
///
/// # Panics
///
/// Panics if `coverage`/`cold_ceiling` are outside `[0, 1]` or the ratio
/// is not > 1.
pub fn table1(coverage: f64, cold_ceiling: f64, compression_ratio: f64) -> Table1 {
    let tco =
        TcoModel::new(compression_ratio, 1.0, 0.0).expect("ratio validated by caller contract");
    Table1 {
        coverage,
        cold_ceiling,
        compression_ratio,
        page_cost_reduction: tco.compressed_page_cost_reduction(),
        dram_savings: tco.dram_savings_fraction(coverage, cold_ceiling),
    }
}

/// T2: the §4.3 worked example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Promotions/min the histogram reports under T = 8 min (paper: 1).
    pub promotions_per_min_t8: f64,
    /// Promotions/min under T = 2 min (paper: 2).
    pub promotions_per_min_t2: f64,
}

/// Reproduces the worked example: pages A and B idle 5 and 10 minutes,
/// both accessed one minute ago; the promotion histogram answers both
/// thresholds from the same data.
pub fn table2() -> Table2 {
    let mut h = PromotionHistogram::new();
    h.record_promotion(PageAge::from_duration(SimDuration::from_mins(5)), 1); // A
    h.record_promotion(PageAge::from_duration(SimDuration::from_mins(10)), 1); // B
    let window_mins = 1.0;
    let at = |mins: u64| {
        h.promotions_colder_than(PageAge::from_duration(SimDuration::from_mins(mins))) as f64
            / window_mins
    };
    Table2 {
        promotions_per_min_t8: at(8),
        promotions_per_min_t2: at(2),
    }
}

/// One codec's measured trade-off (FN1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecRow {
    /// Which codec.
    pub codec: CodecKind,
    /// Bytes-weighted compression ratio on the compressible corpus.
    pub ratio: f64,
    /// Compression throughput, MiB/s.
    pub compress_mib_s: f64,
    /// Decompression throughput, MiB/s.
    pub decompress_mib_s: f64,
}

/// FN1: measures all three codec families on the same fleet-mix page
/// corpus ("we compared several compression algorithms, including lzo,
/// lz4, and snappy").
pub fn table_fn1(pages: usize, seed: u64) -> Vec<CodecRow> {
    let mix = CompressibilityMix::fleet_default();
    let mut gen = PageGenerator::new(seed);
    let corpus: Vec<Vec<u8>> = (0..pages.max(16))
        .map(|_| gen.generate_from_mix(&mix).1)
        .collect();
    let total_bytes = (corpus.len() * PAGE_SIZE) as f64;

    CodecKind::ALL
        .iter()
        .map(|&kind| {
            let codec = kind.build();
            let mut bufs = Vec::with_capacity(corpus.len());
            let t0 = Instant::now();
            for page in &corpus {
                let mut buf = Vec::new();
                codec.compress(page, &mut buf);
                bufs.push(buf);
            }
            let compress_secs = t0.elapsed().as_secs_f64();
            let compressed_bytes: usize = bufs.iter().map(|b| b.len()).sum();
            let mut out = Vec::new();
            let t1 = Instant::now();
            for buf in &bufs {
                codec.decompress(buf, &mut out).expect("self-produced");
            }
            let decompress_secs = t1.elapsed().as_secs_f64();
            CodecRow {
                codec: kind,
                ratio: total_bytes / compressed_bytes as f64,
                compress_mib_s: total_bytes / (1 << 20) as f64 / compress_secs.max(1e-9),
                decompress_mib_s: total_bytes / (1 << 20) as f64 / decompress_secs.max(1e-9),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_headline_numbers() {
        let t = table1(0.20, 0.32, 3.0);
        assert!((t.page_cost_reduction - 0.667).abs() < 0.01, "67% claim");
        assert!(
            (0.04..0.05).contains(&t.dram_savings),
            "4–5% claim, got {}",
            t.dram_savings
        );
    }

    #[test]
    fn table2_matches_worked_example() {
        let t = table2();
        assert_eq!(t.promotions_per_min_t8, 1.0);
        assert_eq!(t.promotions_per_min_t2, 2.0);
    }

    #[test]
    fn fn1_compares_all_codecs_sanely() {
        let rows = table_fn1(32, 3);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.ratio > 1.0, "{}: ratio {}", r.codec, r.ratio);
            assert!(r.compress_mib_s > 0.0);
            assert!(
                r.decompress_mib_s >= r.compress_mib_s * 0.5,
                "{}: decompression should not be much slower than compression",
                r.codec
            );
        }
    }
}
