//! The per-job threshold controller (§4.3).

use serde::{Deserialize, Serialize};

use crate::params::{AgentParams, SloConfig};
use sdfm_types::histogram::{ColdAgeHistogram, PageAge, PromotionHistogram, MAX_AGE_SCANS};
use sdfm_types::rate::{NormalizedPromotionRate, PromotionRate};
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime};

/// One minute's control decision for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlDecision {
    /// Whether proactive zswap should run this minute.
    pub zswap_enabled: bool,
    /// The operating cold-age threshold (meaningful when enabled).
    pub threshold: PageAge,
    /// The best (smallest SLO-satisfying) threshold for the window that
    /// just ended.
    pub best_last_window: PageAge,
    /// The K-th percentile of the history pool.
    pub pool_percentile: PageAge,
    /// Working-set estimate used for normalization.
    pub working_set: PageCount,
    /// The observed normalized promotion rate over the window **under the
    /// minimum threshold** — the most aggressive rate the SLI could take.
    pub observed_rate: NormalizedPromotionRate,
}

/// Computes the best threshold for a finished window: the smallest
/// cold-age threshold whose would-be promotions stay within the SLO budget.
///
/// `promo_now` and `promo_prev` are cumulative kernel histograms at the
/// window's end and start; the difference of their suffix sums is the
/// would-be promotion count for each candidate threshold (§4.3's insight:
/// one histogram answers the question for *every* threshold at once).
///
/// Returns the smallest satisfying threshold, searching from
/// `slo.min_threshold` up; if even the maximum age violates the budget,
/// returns [`PageAge::MAX`] (the least aggressive choice).
pub fn best_threshold_for_window(
    promo_now: &PromotionHistogram,
    promo_prev: &PromotionHistogram,
    working_set: PageCount,
    window: SimDuration,
    slo: &SloConfig,
) -> PageAge {
    // Promotions per minute allowed by the SLO.
    let budget = slo.target.fraction_per_min() * working_set.get() as f64;
    let window_mins = window.as_mins_f64();
    if window_mins <= 0.0 {
        return slo.min_threshold;
    }
    // One backward pass builds the suffix counts for every threshold at
    // once (the histograms' whole point, §4.3); then take the smallest
    // satisfying threshold.
    let mut delta = [0u64; 256];
    for (((age, now), (_, prev)), slot) in promo_now
        .iter()
        .zip(promo_prev.iter())
        .zip(delta.iter_mut())
    {
        debug_assert!(now >= prev, "cumulative histogram went backwards");
        let _ = age;
        *slot = now - prev;
    }
    let mut suffix = 0u64;
    let mut best = PageAge::MAX;
    for scans in (slo.min_threshold.as_scans()..=MAX_AGE_SCANS).rev() {
        suffix += delta[scans as usize];
        if suffix as f64 / window_mins <= budget {
            best = PageAge::from_scans(scans);
        } else {
            // Suffix counts only grow as the threshold drops: every lower
            // threshold violates too.
            break;
        }
    }
    best
}

/// The per-job control state: threshold history pool, previous histogram
/// snapshot, and warmup tracking.
#[derive(Debug, Clone)]
pub struct JobController {
    params: AgentParams,
    slo: SloConfig,
    started_at: SimTime,
    last_tick: SimTime,
    pool: Vec<PageAge>,
    prev_promo: PromotionHistogram,
}

// Fleet simulators step controllers for disjoint job sets on worker
// threads; the controller must stay plain owned data.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<JobController>();
};

impl JobController {
    /// Maximum control periods of best-threshold history retained.
    ///
    /// The pool is a *sliding* window, not the job's whole life: an
    /// unbounded pool makes the K-th percentile ratchet ever more
    /// conservative (a single early spike stays in the top percentiles
    /// forever), so steady-state coverage would decay with job age and the
    /// controller could never adapt to behavior changes. Three hours of
    /// 5-minute periods keeps enough samples for percentile resolution at
    /// production K values while aging spikes out.
    pub const POOL_CAP: usize = 36;

    /// Creates a controller for a job that started at `started_at`.
    pub fn new(params: AgentParams, slo: SloConfig, started_at: SimTime) -> Self {
        JobController {
            params,
            slo,
            started_at,
            last_tick: started_at,
            pool: Vec::new(),
            prev_promo: PromotionHistogram::new(),
        }
    }

    /// The parameters in force.
    pub fn params(&self) -> AgentParams {
        self.params
    }

    /// Replaces the parameters (autotuner rollout). History is kept: the
    /// pool is parameter-independent (it stores per-minute *best*
    /// thresholds, not decisions).
    pub fn set_params(&mut self, params: AgentParams) {
        self.params = params;
    }

    /// The SLO in force.
    pub fn slo(&self) -> SloConfig {
        self.slo
    }

    /// Number of window observations accumulated.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Runs one control period: consumes the kernel-exported histograms,
    /// updates the pool, and returns the decision for the next minute.
    ///
    /// `cold` is the instantaneous cold-age histogram; `promo_cumulative`
    /// is the kernel's cumulative promotion histogram (the controller
    /// snapshots it internally to form windows).
    pub fn on_minute(
        &mut self,
        now: SimTime,
        cold: &ColdAgeHistogram,
        promo_cumulative: &PromotionHistogram,
    ) -> ControlDecision {
        let window = now.saturating_duration_since(self.last_tick);
        self.last_tick = now;

        let working_set = PageCount::new(cold.pages_younger_than(self.slo.min_threshold));
        let best = best_threshold_for_window(
            promo_cumulative,
            &self.prev_promo,
            working_set,
            window,
            &self.slo,
        );
        let observed_count = promo_cumulative.promotions_colder_than(self.slo.min_threshold)
            - self
                .prev_promo
                .promotions_colder_than(self.slo.min_threshold);
        let observed_rate =
            PromotionRate::from_count(observed_count, window).normalized(working_set);
        self.prev_promo = promo_cumulative.clone();
        self.pool.push(best);
        if self.pool.len() > Self::POOL_CAP {
            let excess = self.pool.len() - Self::POOL_CAP;
            self.pool.drain(..excess);
        }

        let pool_percentile = self.pool_kth_percentile();
        // Spike reaction: never undercut what the last window needed.
        let threshold = pool_percentile.max(best);
        let warmed_up = now.saturating_duration_since(self.started_at) >= self.params.s_warmup;

        ControlDecision {
            zswap_enabled: warmed_up,
            threshold,
            best_last_window: best,
            pool_percentile,
            working_set,
            observed_rate,
        }
    }

    /// The K-th percentile of the best-threshold pool (nearest-rank,
    /// rounding up — conservative).
    fn pool_kth_percentile(&self) -> PageAge {
        if self.pool.is_empty() {
            return PageAge::MAX;
        }
        let mut sorted = self.pool.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let rank = ((self.params.k_percentile / 100.0) * n as f64).ceil() as usize;
        sorted[rank.clamp(1, n) - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfm_types::time::MINUTE;

    fn slo() -> SloConfig {
        SloConfig::default()
    }

    /// Builds a cumulative promotion histogram from (age, count) pairs.
    fn promo(entries: &[(u8, u64)]) -> PromotionHistogram {
        let mut h = PromotionHistogram::new();
        for &(age, n) in entries {
            h.record_promotion(PageAge::from_scans(age), n);
        }
        h
    }

    fn cold(entries: &[(u8, u64)]) -> ColdAgeHistogram {
        let mut h = ColdAgeHistogram::new();
        for &(age, n) in entries {
            h.record_page(PageAge::from_scans(age), n);
        }
        h
    }

    #[test]
    fn best_threshold_picks_smallest_satisfying() {
        // WSS 10_000 pages, SLO 0.2%/min -> budget 20 promotions/min.
        // 100 promotions at age>=1, 15 at age>=3: threshold 3 satisfies.
        let now = promo(&[(1, 50), (2, 35), (3, 10), (10, 5)]);
        let prev = PromotionHistogram::new();
        let t = best_threshold_for_window(&now, &prev, PageCount::new(10_000), MINUTE, &slo());
        assert_eq!(t.as_scans(), 3);
    }

    #[test]
    fn best_threshold_saturates_when_everything_violates() {
        let now = promo(&[(255, 1_000_000)]);
        let prev = PromotionHistogram::new();
        let t = best_threshold_for_window(&now, &prev, PageCount::new(100), MINUTE, &slo());
        assert_eq!(t, PageAge::MAX);
    }

    #[test]
    fn best_threshold_uses_window_deltas_not_cumulative() {
        // Cumulative history has huge counts, but the last window added
        // nothing: the minimum threshold satisfies.
        let prev = promo(&[(5, 1_000_000)]);
        let now = prev.clone();
        let t = best_threshold_for_window(&now, &prev, PageCount::new(100), MINUTE, &slo());
        assert_eq!(t, slo().min_threshold);
    }

    #[test]
    fn best_threshold_normalizes_by_window_length() {
        // 40 promotions at age>=1 over 2 minutes = 20/min = exactly budget
        // for WSS 10_000.
        let now = promo(&[(1, 40)]);
        let prev = PromotionHistogram::new();
        let t = best_threshold_for_window(&now, &prev, PageCount::new(10_000), MINUTE * 2, &slo());
        assert_eq!(t, slo().min_threshold);
    }

    #[test]
    fn warmup_disables_zswap_for_s_seconds() {
        let params = AgentParams::new(90.0, SimDuration::from_mins(5)).unwrap();
        let mut ctl = JobController::new(params, slo(), SimTime::ZERO);
        let c = cold(&[(0, 100)]);
        let p = PromotionHistogram::new();
        let mut now = SimTime::ZERO;
        for minute in 1..=6 {
            now += MINUTE;
            let d = ctl.on_minute(now, &c, &p);
            if minute < 5 {
                assert!(!d.zswap_enabled, "minute {minute} should be warmup");
            } else {
                assert!(d.zswap_enabled, "minute {minute} should be active");
            }
        }
    }

    #[test]
    fn pool_percentile_is_conservative_with_k_high() {
        let params = AgentParams::new(100.0, SimDuration::ZERO).unwrap();
        let mut ctl = JobController::new(params, slo(), SimTime::ZERO);
        let wss = cold(&[(0, 10_000)]);
        let mut cum = PromotionHistogram::new();
        let mut now = SimTime::ZERO;
        // Nine quiet minutes (best = min threshold), one noisy minute.
        for minute in 0..10 {
            now += MINUTE;
            if minute == 4 {
                // 3000 promotions at age >= 6 in this window: best jumps to 7.
                cum.record_promotion(PageAge::from_scans(6), 3000);
            }
            ctl.on_minute(now, &wss, &cum);
        }
        now += MINUTE;
        let d = ctl.on_minute(now, &wss, &cum);
        // K=100 -> percentile = max of pool = the noisy minute's best.
        assert_eq!(d.pool_percentile.as_scans(), 7);
        assert_eq!(d.threshold.as_scans(), 7);
    }

    #[test]
    fn pool_percentile_with_k_low_tracks_common_case() {
        let params = AgentParams::new(50.0, SimDuration::ZERO).unwrap();
        let mut ctl = JobController::new(params, slo(), SimTime::ZERO);
        let wss = cold(&[(0, 10_000)]);
        let mut cum = PromotionHistogram::new();
        let mut now = SimTime::ZERO;
        for minute in 0..10 {
            now += MINUTE;
            if minute == 4 {
                cum.record_promotion(PageAge::from_scans(6), 3000);
            }
            ctl.on_minute(now, &wss, &cum);
        }
        now += MINUTE;
        let d = ctl.on_minute(now, &wss, &cum);
        // Median of mostly-quiet pool is the minimum threshold.
        assert_eq!(d.pool_percentile, slo().min_threshold);
    }

    #[test]
    fn spike_reaction_overrides_percentile() {
        let params = AgentParams::new(50.0, SimDuration::ZERO).unwrap();
        let mut ctl = JobController::new(params, slo(), SimTime::ZERO);
        let wss = cold(&[(0, 10_000)]);
        let mut cum = PromotionHistogram::new();
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now += MINUTE;
            ctl.on_minute(now, &wss, &cum);
        }
        // Sudden burst in the current window.
        cum.record_promotion(PageAge::from_scans(9), 5000);
        now += MINUTE;
        let d = ctl.on_minute(now, &wss, &cum);
        assert_eq!(d.best_last_window.as_scans(), 10);
        assert_eq!(
            d.threshold.as_scans(),
            10,
            "threshold must jump with the spike even though the pool median is low"
        );
    }

    #[test]
    fn observed_rate_reports_min_threshold_rate() {
        let params = AgentParams::new(98.0, SimDuration::ZERO).unwrap();
        let mut ctl = JobController::new(params, slo(), SimTime::ZERO);
        let wss = cold(&[(0, 1_000)]);
        let mut cum = PromotionHistogram::new();
        ctl.on_minute(SimTime::ZERO + MINUTE, &wss, &cum);
        cum.record_promotion(PageAge::from_scans(2), 2);
        let d = ctl.on_minute(SimTime::ZERO + MINUTE * 2, &wss, &cum);
        // 2 promotions / min over 1000 pages = 0.2%/min.
        assert!((d.observed_rate.percent_per_min() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_pool_yields_max_age() {
        let ctl = JobController::new(AgentParams::default(), slo(), SimTime::ZERO);
        assert_eq!(ctl.pool_kth_percentile(), PageAge::MAX);
    }

    #[test]
    fn set_params_takes_effect() {
        let mut ctl = JobController::new(
            AgentParams::new(98.0, SimDuration::from_mins(30)).unwrap(),
            slo(),
            SimTime::ZERO,
        );
        ctl.set_params(AgentParams::new(50.0, SimDuration::ZERO).unwrap());
        let d = ctl.on_minute(
            SimTime::ZERO + MINUTE,
            &cold(&[(0, 10)]),
            &PromotionHistogram::new(),
        );
        assert!(d.zswap_enabled, "new zero warmup applies immediately");
    }
}
