//! Trace export for offline analysis (§5.3).
//!
//! The node agent periodically exports each job's far-memory state to an
//! external database; the fast far memory model replays those traces under
//! candidate parameter configurations. Each [`TraceRecord`] is one job's
//! 5-minute aggregate: working set size, the instantaneous cold-age
//! histogram, and the promotion histogram *delta* over the window.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use sdfm_types::histogram::{ColdAgeHistogram, PromotionHistogram};
use sdfm_types::ids::JobId;
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime};

/// One exported far-memory trace entry (§5.3: "each far memory trace entry
/// includes job's working set size, promotion histogram, and cold page
/// histogram, aggregated over a 5-minute period").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The job.
    pub job: JobId,
    /// Window end time.
    pub at: SimTime,
    /// Window length.
    pub window: SimDuration,
    /// Working-set estimate at window end.
    pub working_set: PageCount,
    /// Instantaneous cold-age histogram at window end.
    pub cold_hist: ColdAgeHistogram,
    /// Promotions recorded during the window, by age at access.
    pub promo_delta: PromotionHistogram,
    /// Estimated fraction of the job's cold pages that are incompressible
    /// (zswap rejects them, so they never produce actual faults). The
    /// offline model uses this to convert would-be promotions into
    /// realized ones.
    pub incompressible_fraction: f64,
}

/// The default export period.
pub const EXPORT_PERIOD: SimDuration = SimDuration::from_secs(300);

#[derive(Debug, Clone)]
struct JobExportState {
    last_export: SimTime,
    prev_promo: PromotionHistogram,
}

/// Accumulates per-job state and emits a [`TraceRecord`] once per export
/// period.
#[derive(Debug)]
pub struct TraceExporter {
    period: SimDuration,
    jobs: BTreeMap<JobId, JobExportState>,
}

impl TraceExporter {
    /// Creates an exporter with the given period (5 minutes in
    /// production).
    pub fn new(period: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO, "export period must be positive");
        TraceExporter {
            period,
            jobs: BTreeMap::new(),
        }
    }

    /// The export period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Observes a job's current kernel state; returns a record when the
    /// job's export window has elapsed. The first observation of a job
    /// only initializes its window.
    pub fn observe(
        &mut self,
        now: SimTime,
        job: JobId,
        working_set: PageCount,
        cold: &ColdAgeHistogram,
        promo_cumulative: &PromotionHistogram,
        incompressible_fraction: f64,
    ) -> Option<TraceRecord> {
        let state = self.jobs.entry(job).or_insert_with(|| JobExportState {
            last_export: now,
            prev_promo: promo_cumulative.clone(),
        });
        let window = now.saturating_duration_since(state.last_export);
        if window < self.period {
            return None;
        }
        let mut promo_delta = PromotionHistogram::new();
        for ((age, now_count), (_, prev_count)) in
            promo_cumulative.iter().zip(state.prev_promo.iter())
        {
            promo_delta.record_promotion(age, now_count - prev_count);
        }
        state.last_export = now;
        state.prev_promo = promo_cumulative.clone();
        Some(TraceRecord {
            job,
            at: now,
            window,
            working_set,
            cold_hist: cold.clone(),
            promo_delta,
            incompressible_fraction: incompressible_fraction.clamp(0.0, 1.0),
        })
    }

    /// Forgets a job (exit); its partial window is discarded.
    pub fn forget(&mut self, job: JobId) {
        self.jobs.remove(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfm_types::histogram::PageAge;
    use sdfm_types::time::MINUTE;

    #[test]
    fn first_observation_initializes_without_emitting() {
        let mut ex = TraceExporter::new(EXPORT_PERIOD);
        let cold = ColdAgeHistogram::new();
        let promo = PromotionHistogram::new();
        assert!(ex
            .observe(
                SimTime::ZERO,
                JobId::new(1),
                PageCount::ZERO,
                &cold,
                &promo,
                0.3
            )
            .is_none());
    }

    #[test]
    fn emits_after_period_with_delta() {
        let mut ex = TraceExporter::new(EXPORT_PERIOD);
        let job = JobId::new(1);
        let cold = ColdAgeHistogram::new();
        let mut promo = PromotionHistogram::new();
        promo.record_promotion(PageAge::from_scans(4), 10);
        ex.observe(SimTime::ZERO, job, PageCount::new(100), &cold, &promo, 0.3);
        // Minute-by-minute observations inside the window emit nothing.
        for m in 1..5u64 {
            assert!(ex
                .observe(
                    SimTime::ZERO + MINUTE * m,
                    job,
                    PageCount::new(100),
                    &cold,
                    &promo,
                    0.3,
                )
                .is_none());
        }
        promo.record_promotion(PageAge::from_scans(4), 7);
        let rec = ex
            .observe(
                SimTime::ZERO + MINUTE * 5,
                job,
                PageCount::new(120),
                &cold,
                &promo,
                0.3,
            )
            .expect("window elapsed");
        assert_eq!(rec.window, EXPORT_PERIOD);
        assert_eq!(rec.working_set, PageCount::new(120));
        // Only the 7 new promotions are in the delta (the first 10 were
        // recorded before the window started).
        assert_eq!(
            rec.promo_delta
                .promotions_colder_than(PageAge::from_scans(1)),
            7
        );
    }

    #[test]
    fn consecutive_windows_have_independent_deltas() {
        let mut ex = TraceExporter::new(MINUTE);
        let job = JobId::new(2);
        let cold = ColdAgeHistogram::new();
        let mut promo = PromotionHistogram::new();
        ex.observe(SimTime::ZERO, job, PageCount::new(1), &cold, &promo, 0.0);
        promo.record_promotion(PageAge::from_scans(1), 3);
        let r1 = ex
            .observe(
                SimTime::ZERO + MINUTE,
                job,
                PageCount::new(1),
                &cold,
                &promo,
                0.0,
            )
            .unwrap();
        let r2 = ex
            .observe(
                SimTime::ZERO + MINUTE * 2,
                job,
                PageCount::new(1),
                &cold,
                &promo,
                0.0,
            )
            .unwrap();
        assert_eq!(r1.promo_delta.total_promotions(), 3);
        assert_eq!(r2.promo_delta.total_promotions(), 0);
    }

    #[test]
    fn forget_resets_job_state() {
        let mut ex = TraceExporter::new(MINUTE);
        let job = JobId::new(3);
        let cold = ColdAgeHistogram::new();
        let promo = PromotionHistogram::new();
        ex.observe(SimTime::ZERO, job, PageCount::ZERO, &cold, &promo, 0.0);
        ex.forget(job);
        // After forgetting, the next observation re-initializes.
        assert!(ex
            .observe(
                SimTime::ZERO + MINUTE * 10,
                job,
                PageCount::ZERO,
                &cold,
                &promo,
                0.0
            )
            .is_none());
    }

    #[test]
    #[should_panic(expected = "export period must be positive")]
    fn zero_period_rejected() {
        let _ = TraceExporter::new(SimDuration::ZERO);
    }

    #[test]
    fn serde_roundtrip() {
        let rec = TraceRecord {
            job: JobId::new(9),
            at: SimTime::from_secs(300),
            window: EXPORT_PERIOD,
            working_set: PageCount::new(42),
            cold_hist: ColdAgeHistogram::new(),
            promo_delta: PromotionHistogram::new(),
            incompressible_fraction: 0.31,
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }
}
