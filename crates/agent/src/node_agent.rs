//! The machine-level agent loop (the paper's Borglet extension, §5.2).

use std::collections::BTreeMap;

use crate::controller::{ControlDecision, JobController};
use crate::params::{AgentParams, SloConfig};
use sdfm_kernel::{Kernel, StorePressure};
use sdfm_types::ids::JobId;
use sdfm_types::time::SimTime;

/// Drives one machine: owns a [`JobController`] per registered job, reads
/// kernel statistics every minute, and pushes decisions back into the
/// kernel (zswap enablement, soft limit, reclaim threshold). Also triggers
/// zsmalloc compaction periodically (§5.1's explicit compaction interface).
#[derive(Debug)]
pub struct NodeAgent {
    params: AgentParams,
    slo: SloConfig,
    controllers: BTreeMap<JobId, JobController>,
    ticks: u64,
    /// Compact the arena every this many ticks (0 = never).
    compact_every: u64,
    /// Store-lifecycle policy applied every tick (disabled-store decay,
    /// soft-limit restoration).
    pressure: StorePressure,
}

impl NodeAgent {
    /// Creates an agent with the given control parameters and SLO.
    pub fn new(params: AgentParams, slo: SloConfig) -> Self {
        NodeAgent {
            params,
            slo,
            controllers: BTreeMap::new(),
            ticks: 0,
            compact_every: 10,
            pressure: StorePressure::PAPER_DEFAULT,
        }
    }

    /// The store-lifecycle policy in force.
    pub fn store_pressure(&self) -> StorePressure {
        self.pressure
    }

    /// Overrides the store-lifecycle policy.
    pub fn set_store_pressure(&mut self, pressure: StorePressure) {
        self.pressure = pressure;
    }

    /// The parameters currently in force.
    pub fn params(&self) -> AgentParams {
        self.params
    }

    /// Rolls out new parameters to every job on the machine.
    pub fn set_params(&mut self, params: AgentParams) {
        self.params = params;
        for ctl in self.controllers.values_mut() {
            ctl.set_params(params);
        }
    }

    /// The SLO in force.
    pub fn slo(&self) -> SloConfig {
        self.slo
    }

    /// Starts controlling a job that began execution at `started_at`.
    /// Re-registering a job resets its history (job restart).
    pub fn register_job(&mut self, job: JobId, started_at: SimTime) {
        self.controllers
            .insert(job, JobController::new(self.params, self.slo, started_at));
    }

    /// Stops controlling a job (exit or eviction).
    pub fn unregister_job(&mut self, job: JobId) {
        self.controllers.remove(&job);
    }

    /// Registered jobs.
    pub fn jobs(&self) -> impl Iterator<Item = JobId> + '_ {
        self.controllers.keys().copied()
    }

    /// Read access to a job's controller.
    pub fn controller(&self, job: JobId) -> Option<&JobController> {
        self.controllers.get(&job)
    }

    /// Runs one agent period: per-job control decisions pushed into the
    /// kernel, plus periodic arena compaction. Returns the decisions for
    /// telemetry. Jobs whose memcg has disappeared are dropped.
    pub fn tick(&mut self, now: SimTime, kernel: &mut Kernel) -> Vec<(JobId, ControlDecision)> {
        self.ticks += 1;
        let mut out = Vec::with_capacity(self.controllers.len());
        let mut dead = Vec::new();
        for (&job, ctl) in self.controllers.iter_mut() {
            let Ok(cg) = kernel.memcg(job) else {
                dead.push(job);
                continue;
            };
            let cold = cg.cold_age_histogram().clone();
            let promo = cg.promotion_histogram().clone();
            let decision = ctl.on_minute(now, &cold, &promo);
            // The memcg can vanish between the read above and the pushes
            // below (job exit racing the tick). The agent must degrade
            // gracefully — drop the job from control, never crash the
            // machine (rule P1).
            let pushed = kernel
                .set_zswap_enabled(job, decision.zswap_enabled)
                .and_then(|()| kernel.set_soft_limit(job, decision.working_set))
                .and_then(|()| {
                    if decision.zswap_enabled {
                        kernel.reclaim_job(job, decision.threshold).map(|_| ())
                    } else {
                        Ok(())
                    }
                })
                // Demotion tick: with a chain attached, one decay step of
                // the job's coldest compressed pages sinks down the
                // ladder (no-op without a tier below the store). Disabled
                // jobs demote through the lifecycle tick instead, so the
                // store never decays twice per minute.
                .and_then(|()| {
                    if decision.zswap_enabled {
                        let zswapped = kernel.memcg(job)?.stats().zswapped_pages;
                        let budget = self.pressure.decay_step(zswapped);
                        kernel.demote_job(job, budget).map(|_| ())
                    } else {
                        Ok(())
                    }
                })
                // Store lifecycle: decay a disabled job's store one step,
                // or restore working-set pages a raised soft limit now
                // protects.
                .and_then(|()| kernel.store_lifecycle_tick(job, &self.pressure).map(|_| ()));
            if pushed.is_err() {
                dead.push(job);
                continue;
            }
            out.push((job, decision));
        }
        for job in dead {
            self.controllers.remove(&job);
        }
        if self.compact_every > 0 && self.ticks.is_multiple_of(self.compact_every) {
            kernel.compact_zswap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfm_kernel::{KernelConfig, PageContent};
    use sdfm_types::size::PageCount;
    use sdfm_types::time::{SimDuration, MINUTE};

    fn setup(warmup_mins: u64) -> (NodeAgent, Kernel, JobId) {
        let params = AgentParams::new(90.0, SimDuration::from_mins(warmup_mins)).unwrap();
        let agent = NodeAgent::new(params, SloConfig::default());
        let mut kernel = Kernel::new(KernelConfig {
            capacity: PageCount::new(100_000),
            ..KernelConfig::default()
        });
        let job = JobId::new(7);
        kernel.create_memcg(job, PageCount::new(50_000)).unwrap();
        (agent, kernel, job)
    }

    /// Advances one simulated minute: scans happen every 2 minutes
    /// (120 s), agent ticks every minute.
    fn run_minutes(
        agent: &mut NodeAgent,
        kernel: &mut Kernel,
        start_min: u64,
        minutes: u64,
    ) -> Vec<(JobId, ControlDecision)> {
        let mut last = Vec::new();
        for m in start_min..start_min + minutes {
            let now = SimTime::ZERO + MINUTE * (m + 1);
            if (m + 1) % 2 == 0 {
                kernel.run_scan();
            }
            last = agent.tick(now, kernel);
        }
        last
    }

    #[test]
    fn agent_reclaims_idle_memory_after_warmup() {
        let (mut agent, mut kernel, job) = setup(4);
        agent.register_job(job, SimTime::ZERO);
        kernel
            .alloc_pages(job, 1000, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        // Never touched after allocation: everything goes cold.
        let decisions = run_minutes(&mut agent, &mut kernel, 0, 30);
        assert_eq!(decisions.len(), 1);
        let (_, d) = decisions[0];
        assert!(d.zswap_enabled);
        let stats = kernel.memcg(job).unwrap().stats();
        assert!(
            stats.zswapped_pages > 900,
            "idle pages not reclaimed: {} in zswap",
            stats.zswapped_pages
        );
    }

    #[test]
    fn warmup_holds_zswap_off() {
        let (mut agent, mut kernel, job) = setup(60);
        agent.register_job(job, SimTime::ZERO);
        kernel
            .alloc_pages(job, 100, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        run_minutes(&mut agent, &mut kernel, 0, 30);
        assert_eq!(kernel.memcg(job).unwrap().stats().zswapped_pages, 0);
        assert!(!kernel.memcg(job).unwrap().zswap_enabled());
    }

    #[test]
    fn soft_limit_tracks_working_set() {
        let (mut agent, mut kernel, job) = setup(0);
        agent.register_job(job, SimTime::ZERO);
        kernel
            .alloc_pages(job, 500, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        // Touch the first 200 pages every minute: they are the working set.
        for m in 0..20u64 {
            for i in 0..200 {
                kernel
                    .touch(job, sdfm_types::ids::PageId::new(i), false)
                    .unwrap();
            }
            let now = SimTime::ZERO + MINUTE * (m + 1);
            if (m + 1) % 2 == 0 {
                kernel.run_scan();
            }
            agent.tick(now, &mut kernel);
        }
        let soft = kernel.memcg(job).unwrap().soft_limit();
        assert!(
            (190..=260).contains(&soft.get()),
            "soft limit {} should approximate the 200-page working set",
            soft.get()
        );
    }

    #[test]
    fn disabling_zswap_decays_the_store_through_ticks() {
        let (mut agent, mut kernel, job) = setup(4);
        agent.register_job(job, SimTime::ZERO);
        kernel
            .alloc_pages(job, 1000, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        run_minutes(&mut agent, &mut kernel, 0, 30);
        let stored = kernel.memcg(job).unwrap().stats().zswapped_pages;
        assert!(stored > 900, "store never built up: {stored}");
        // Roll out an effectively-infinite warmup: the controller turns
        // zswap off, and the lifecycle tick must drain the dead store.
        agent.set_params(
            AgentParams::new(90.0, SimDuration::from_mins(1_000_000)).unwrap(),
        );
        let budget = agent.store_pressure().windows_to_drain(stored) + 5;
        run_minutes(&mut agent, &mut kernel, 30, budget);
        let s = kernel.memcg(job).unwrap().stats();
        assert_eq!(s.zswapped_pages, 0, "dead store survived the decay");
        assert_eq!(s.writebacks, stored);
        assert_eq!(s.resident_pages, 1000);
    }

    #[test]
    fn agent_demotes_down_an_attached_chain() {
        use sdfm_kernel::BackendConfig;
        let (mut agent, mut kernel, job) = setup(4);
        kernel.enable_chain(&[
            BackendConfig::compressed_ram(),
            BackendConfig::ssd(PageCount::new(200)),
            BackendConfig::remote(),
        ]);
        agent.register_job(job, SimTime::ZERO);
        kernel
            .alloc_pages(job, 1000, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        // Idle pages compress, then the per-minute demotion tick sinks
        // the coldest of them down the chain — past the 200-page SSD and
        // onto the remote tier.
        run_minutes(&mut agent, &mut kernel, 0, 120);
        let s = kernel.memcg(job).unwrap().stats();
        assert!(
            s.demoted_total() > 200,
            "demotion tick never overflowed the SSD: {} demoted",
            s.demoted_total()
        );
        let stats = kernel.chain_stats().unwrap();
        assert!(stats[1].resident_pages > 0, "SSD tier empty");
        assert!(stats[2].resident_pages > 0, "remote tier empty");
        // Conservation: everything lives in exactly one place.
        assert_eq!(
            s.resident_pages + s.zswapped_pages + s.demoted_total(),
            1000
        );
    }

    #[test]
    fn dead_jobs_are_dropped_from_control() {
        let (mut agent, mut kernel, job) = setup(0);
        agent.register_job(job, SimTime::ZERO);
        kernel.remove_memcg(job).unwrap();
        let decisions = agent.tick(SimTime::ZERO + MINUTE, &mut kernel);
        assert!(decisions.is_empty());
        assert_eq!(agent.jobs().count(), 0);
    }

    #[test]
    fn reregistering_resets_history() {
        let (mut agent, mut kernel, job) = setup(0);
        agent.register_job(job, SimTime::ZERO);
        kernel
            .alloc_pages(job, 10, |_| PageContent::synthetic_of_len(600))
            .unwrap();
        run_minutes(&mut agent, &mut kernel, 0, 5);
        assert!(agent.controller(job).unwrap().pool_len() >= 5);
        agent.register_job(job, SimTime::ZERO + MINUTE * 5);
        assert_eq!(agent.controller(job).unwrap().pool_len(), 0);
    }

    #[test]
    fn param_rollout_reaches_existing_controllers() {
        let (mut agent, _kernel, job) = setup(0);
        agent.register_job(job, SimTime::ZERO);
        let newp = AgentParams::new(55.0, SimDuration::ZERO).unwrap();
        agent.set_params(newp);
        assert_eq!(agent.controller(job).unwrap().params(), newp);
        assert_eq!(agent.params(), newp);
    }
}
