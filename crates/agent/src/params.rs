//! The agent's tunable parameters and the far-memory SLO.

use serde::{Deserialize, Serialize};

use sdfm_types::error::SdfmError;
use sdfm_types::histogram::PageAge;
use sdfm_types::rate::NormalizedPromotionRate;
use sdfm_types::time::SimDuration;

/// The two control-plane knobs the autotuner optimizes (§4.3, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentParams {
    /// `K`: the percentile of the per-minute best-threshold pool used as
    /// the operating threshold. The SLO is violated in roughly `(100−K)%`
    /// of minutes at steady state.
    pub k_percentile: f64,
    /// `S`: zswap stays disabled for this long after job start, while the
    /// histogram pool accumulates.
    pub s_warmup: SimDuration,
}

impl AgentParams {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SdfmError::InvalidParameter`] unless
    /// `0 <= k_percentile <= 100`.
    pub fn new(k_percentile: f64, s_warmup: SimDuration) -> Result<Self, SdfmError> {
        if !k_percentile.is_finite() || !(0.0..=100.0).contains(&k_percentile) {
            return Err(SdfmError::invalid_parameter(format!(
                "K percentile must be in [0, 100], got {k_percentile}"
            )));
        }
        Ok(AgentParams {
            k_percentile,
            s_warmup,
        })
    }

    /// A conservative hand-tuned starting point (the pre-autotuner
    /// configuration of Figure 5's B–C phase). Manual A/B tuning is risky,
    /// so humans park on the cautious side: a near-max percentile and a
    /// long warmup.
    pub fn hand_tuned() -> Self {
        AgentParams {
            k_percentile: 99.3,
            s_warmup: SimDuration::from_mins(40),
        }
    }
}

impl Default for AgentParams {
    fn default() -> Self {
        AgentParams::hand_tuned()
    }
}

/// The far-memory performance SLO (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloConfig {
    /// Target normalized promotion rate `P` (fraction of working set per
    /// minute).
    pub target: NormalizedPromotionRate,
    /// The minimum cold-age threshold; also defines the working set
    /// (pages accessed within it). 120 s in production.
    pub min_threshold: PageAge,
}

impl SloConfig {
    /// The production SLO: `P = 0.2 %/min`, minimum threshold 120 s.
    pub fn paper_default() -> Self {
        SloConfig {
            target: NormalizedPromotionRate::PAPER_SLO_TARGET,
            min_threshold: PageAge::from_scans(1),
        }
    }
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_bounds_k() {
        assert!(AgentParams::new(98.0, SimDuration::from_mins(5)).is_ok());
        assert!(AgentParams::new(0.0, SimDuration::ZERO).is_ok());
        assert!(AgentParams::new(100.0, SimDuration::ZERO).is_ok());
        assert!(AgentParams::new(-0.1, SimDuration::ZERO).is_err());
        assert!(AgentParams::new(100.1, SimDuration::ZERO).is_err());
        assert!(AgentParams::new(f64::NAN, SimDuration::ZERO).is_err());
    }

    #[test]
    fn defaults_match_paper() {
        let slo = SloConfig::default();
        assert_eq!(slo.target, NormalizedPromotionRate::PAPER_SLO_TARGET);
        assert_eq!(slo.min_threshold.as_duration().as_secs(), 120);
        let p = AgentParams::default();
        assert_eq!(p.k_percentile, 99.3);
    }
}
