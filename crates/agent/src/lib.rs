//! The node agent: per-job cold-age-threshold control under the promotion
//! SLO (§4.3, §5.2).
//!
//! Every minute, for every job on the machine, the agent:
//!
//! 1. reads the kernel-exported cold-age and promotion histograms;
//! 2. computes the *best* threshold for the past minute — the smallest
//!    cold-age threshold whose would-be promotion rate stays within the
//!    target `P%` of the job's working set size per minute;
//! 3. appends it to the job's history pool and picks
//!    `max(K-th percentile of pool, best of last minute)` as the threshold
//!    for the next minute (the max term is the spike reaction);
//! 4. keeps zswap disabled for the first `S` seconds of the job
//!    (insufficient history);
//! 5. pushes the decision into the kernel: enables/disables zswap, sets the
//!    soft limit to the working set, and triggers kreclaimd.
//!
//! `K` and `S` are the two parameters the ML autotuner optimizes (§5.3).
//!
//! # Examples
//!
//! ```
//! use sdfm_agent::{AgentParams, JobController, SloConfig};
//! use sdfm_types::prelude::*;
//!
//! let params = AgentParams::default();
//! let slo = SloConfig::default();
//! let mut ctl = JobController::new(params, slo, SimTime::ZERO);
//!
//! let cold = ColdAgeHistogram::new();
//! let promo = PromotionHistogram::new();
//! let d = ctl.on_minute(SimTime::ZERO + MINUTE, &cold, &promo);
//! assert!(!d.zswap_enabled); // still inside the S-second warmup
//! ```

#![warn(missing_docs)]

mod controller;
mod exporter;
mod node_agent;
mod params;

pub use controller::{best_threshold_for_window, ControlDecision, JobController};
pub use exporter::{TraceExporter, TraceRecord, EXPORT_PERIOD};
pub use node_agent::NodeAgent;
pub use params::{AgentParams, SloConfig};
