//! Property tests for the threshold controller's invariants.

use proptest::prelude::*;
use sdfm_agent::{best_threshold_for_window, AgentParams, JobController, SloConfig};
use sdfm_types::histogram::{ColdAgeHistogram, PageAge, PromotionHistogram};
use sdfm_types::size::PageCount;
use sdfm_types::time::{SimDuration, SimTime, MINUTE};

fn promo_hist(entries: &[(u8, u64)]) -> PromotionHistogram {
    let mut h = PromotionHistogram::new();
    for &(age, n) in entries {
        h.record_promotion(PageAge::from_scans(age), n);
    }
    h
}

proptest! {
    /// The chosen best threshold always satisfies the budget (unless it is
    /// MAX, when nothing does), and the threshold one scan below it never
    /// does — minimality.
    #[test]
    fn best_threshold_is_minimal_and_satisfying(
        entries in prop::collection::vec((1u8..=255, 0u64..500), 0..40),
        wss in 1u64..100_000,
    ) {
        let now = promo_hist(&entries);
        let prev = PromotionHistogram::new();
        let slo = SloConfig::default();
        let t = best_threshold_for_window(
            &now, &prev, PageCount::new(wss), MINUTE, &slo,
        );
        let budget = slo.target.fraction_per_min() * wss as f64;
        let rate_at = |age: PageAge| now.promotions_colder_than(age) as f64;
        if t != PageAge::MAX {
            prop_assert!(rate_at(t) <= budget + 1e-9,
                "threshold {t} violates budget");
            if t > slo.min_threshold {
                let below = PageAge::from_scans(t.as_scans() - 1);
                prop_assert!(rate_at(below) > budget,
                    "threshold not minimal: {below} also satisfies");
            }
        } else {
            // MAX chosen: either it satisfies (fine) or truly nothing does.
            if rate_at(PageAge::MAX) > budget {
                prop_assert!(rate_at(slo.min_threshold) > budget);
            }
        }
    }

    /// The controller's decision threshold never undercuts the previous
    /// window's best (the spike rule), and is never below the minimum
    /// threshold.
    #[test]
    fn decision_respects_spike_rule(
        windows in prop::collection::vec(
            prop::collection::vec((1u8..=255, 0u64..2_000), 0..8),
            1..20,
        ),
        k in 0f64..=100.0,
    ) {
        let params = AgentParams::new(k, SimDuration::ZERO).unwrap();
        let slo = SloConfig::default();
        let mut ctl = JobController::new(params, slo, SimTime::ZERO);
        let mut cold = ColdAgeHistogram::new();
        cold.record_page(PageAge::from_scans(0), 10_000);
        let mut cumulative = PromotionHistogram::new();
        let mut now = SimTime::ZERO;
        let mut prev_best: Option<PageAge> = None;
        for w in windows {
            now += MINUTE;
            cumulative.merge(&promo_hist(&w));
            let d = ctl.on_minute(now, &cold, &cumulative);
            prop_assert!(d.threshold >= slo.min_threshold);
            if let Some(pb) = prev_best {
                prop_assert!(
                    d.threshold >= pb.min(d.best_last_window),
                    "spike rule broken: threshold {:?} < prior best {:?}",
                    d.threshold, pb
                );
            }
            prop_assert!(d.threshold >= d.best_last_window.min(d.pool_percentile));
            prev_best = Some(d.best_last_window);
        }
    }

    /// Raising K never lowers the decision threshold (more conservative),
    /// comparing two controllers fed identical observations.
    #[test]
    fn higher_k_is_never_more_aggressive(
        windows in prop::collection::vec(
            prop::collection::vec((1u8..=255, 0u64..2_000), 0..6),
            2..15,
        ),
        k_lo in 0f64..50.0,
        k_hi in 50f64..=100.0,
    ) {
        let slo = SloConfig::default();
        let mut lo = JobController::new(
            AgentParams::new(k_lo, SimDuration::ZERO).unwrap(), slo, SimTime::ZERO);
        let mut hi = JobController::new(
            AgentParams::new(k_hi, SimDuration::ZERO).unwrap(), slo, SimTime::ZERO);
        let mut cold = ColdAgeHistogram::new();
        cold.record_page(PageAge::from_scans(0), 10_000);
        let mut cumulative = PromotionHistogram::new();
        let mut now = SimTime::ZERO;
        for w in windows {
            now += MINUTE;
            cumulative.merge(&promo_hist(&w));
            let dlo = lo.on_minute(now, &cold, &cumulative);
            let dhi = hi.on_minute(now, &cold, &cumulative);
            prop_assert!(
                dhi.threshold >= dlo.threshold,
                "K={k_hi} chose {:?} below K={k_lo}'s {:?}",
                dhi.threshold, dlo.threshold
            );
        }
    }

    /// Warmup gating is exact: zswap is enabled iff at least S seconds have
    /// elapsed since job start.
    #[test]
    fn warmup_boundary_is_exact(s_secs in 0u64..7_200, tick_secs in 60u64..600) {
        let params = AgentParams::new(98.0, SimDuration::from_secs(s_secs)).unwrap();
        let mut ctl = JobController::new(params, SloConfig::default(), SimTime::ZERO);
        let cold = ColdAgeHistogram::new();
        let promo = PromotionHistogram::new();
        let mut now = SimTime::ZERO;
        for _ in 0..30 {
            now += SimDuration::from_secs(tick_secs);
            let d = ctl.on_minute(now, &cold, &promo);
            prop_assert_eq!(d.zswap_enabled, now.as_secs() >= s_secs,
                "at {}s with S={}s", now.as_secs(), s_secs);
        }
    }
}
