//! `sdfm-pool` — a persistent, deterministic worker pool for the fleet
//! hot paths.
//!
//! The offline machinery of the paper (the fast far memory model's fleet
//! replays, the GP-Bandit rollouts, the longitudinal fleet simulator) is
//! only cheap because the same per-window fan-out runs thousands of times
//! per experiment. Spawning scoped threads *per call* — the pre-pool
//! design — pays a thread create/join round trip every window, which
//! dominates for small fleets. This crate provides the replacement: a
//! pool of long-lived workers created once per simulator/model and shut
//! down on drop.
//!
//! # Determinism contract
//!
//! The pool preserves the workspace's bit-identical-per-seed contract
//! (DESIGN.md, "Worker pool & scheduling determinism") by construction:
//!
//! * work is submitted as an **indexed** list of closures ([`WorkerPool::run`]);
//! * workers pull tasks from a single shared injector queue in any order
//!   and at any interleaving — scheduling is dynamic and timing-dependent;
//! * every task writes its result into the slot matching its submission
//!   index, so the returned `Vec` is **reassembled in submission order**,
//!   independent of which worker ran what and when.
//!
//! As long as each task is a pure function of its inputs (no shared
//! mutable state across tasks), the output is bit-identical at any worker
//! count — the same guarantee the previous scoped-spawn code provided,
//! now without the per-call spawn cost.
//!
//! # Panic safety
//!
//! A panicking task does **not** hang or poison the pool: the worker
//! catches the unwind, records the first panic's message and task index,
//! and keeps draining the batch (remaining tasks of a failed batch are
//! skipped, not run). [`WorkerPool::run`] then returns
//! [`Err(PoolError)`](PoolError) to the caller, and the pool remains
//! usable for subsequent batches.
//!
//! # Caller participation
//!
//! `WorkerPool::new(threads)` spawns `threads - 1` background workers;
//! the thread calling [`run`](WorkerPool::run) executes tasks too while
//! it waits, so a pool configured for `threads` runs exactly `threads`
//! tasks concurrently — matching the semantics of the scoped-spawn code
//! it replaces. With `threads <= 1` no workers exist at all and `run`
//! degrades to a plain sequential loop with zero synchronization.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// A task's result slot, written by exactly one worker.
///
/// The raw pointer targets an element of the `Vec<Option<T>>` owned by the
/// stack frame of [`WorkerPool::run`], which does not return (and therefore
/// does not move or drop the vector) until every task of the batch has
/// finished. Each slot is aliased by exactly one task, so writes never
/// race.
struct Slot<T>(*mut Option<T>);

// SAFETY: the pointee outlives the batch (see the `Slot` docs) and is
// accessed by exactly one task; sending the pointer to a worker thread is
// therefore sound even though raw pointers are not `Send` by default.
unsafe impl<T: Send> Send for Slot<T> {}

impl<T> Slot<T> {
    /// Fills the slot. Taking `self` (not the raw field) keeps closures
    /// capturing the whole `Send` wrapper under edition-2021 disjoint
    /// capture rules.
    fn fill(self, value: T) {
        // SAFETY: unique, live, unaliased pointee — see the `Slot` docs.
        unsafe {
            *self.0 = Some(value);
        }
    }
}

/// A lifetime-erased unit of work queued on the injector.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// One queued task plus the batch bookkeeping it reports into.
struct Job {
    index: usize,
    task: Task,
    batch: Arc<Batch>,
}

/// Per-batch completion state: how many tasks are still outstanding and
/// whether any of them panicked.
struct BatchState {
    remaining: usize,
    failed: Option<PoolError>,
}

/// Completion latch shared by a batch's tasks and its submitter.
struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

impl Batch {
    fn new(remaining: usize) -> Self {
        Batch {
            state: Mutex::new(BatchState {
                remaining,
                failed: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Whether the batch already recorded a panic (used to skip the rest
    /// of a failed batch's tasks without running them).
    fn has_failed(&self) -> bool {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.failed.is_some()
    }

    /// Records the first panic of the batch; later panics keep the first
    /// report (deterministic error surfacing would need index ordering,
    /// but the whole batch fails either way).
    fn record_panic(&self, err: PoolError) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.failed.is_none() {
            st.failed = Some(err);
        }
    }

    /// Marks one task finished (successfully or not) and wakes the
    /// submitter when the batch drains.
    fn finish_one(&self) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.remaining = st.remaining.saturating_sub(1);
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task of the batch has finished; returns the
    /// recorded failure, if any.
    fn wait(&self) -> Option<PoolError> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.remaining > 0 {
            st = self.done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.failed.clone()
    }
}

/// The shared injector: a single queue all workers (and the submitting
/// caller) pull from. A shared queue is the degenerate — and perfectly
/// load-balanced — form of work stealing: idle workers always find the
/// oldest pending task without per-worker deques to rebalance.
struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    work_ready: Condvar,
}

/// A worker panic surfaced to the submitting caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Submission index of the first task that panicked.
    pub task_index: usize,
    /// The panic payload rendered as text (`String`/`&str` payloads are
    /// preserved verbatim; anything else is reported opaquely).
    pub message: String,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pool task {} panicked: {}", self.task_index, self.message)
    }
}

impl std::error::Error for PoolError {}

/// Renders a panic payload for [`PoolError::message`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job to completion, skipping the body if its batch already
/// failed. Always decrements the batch latch — the submitter's safety
/// depends on `remaining` reaching zero no matter what the task did.
fn execute(job: Job) {
    let Job { index, task, batch } = job;
    if batch.has_failed() {
        // Drop the closure without running it: its captured borrows end
        // here, and the batch still completes promptly after a panic.
        drop(task);
    } else {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
        if let Err(payload) = result {
            batch.record_panic(PoolError {
                task_index: index,
                message: panic_message(payload.as_ref()),
            });
        }
    }
    batch.finish_one();
}

/// The persistent worker pool. See the crate docs for the determinism and
/// panic-safety contracts.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool that executes up to `threads` tasks concurrently:
    /// `threads - 1` long-lived background workers plus the calling thread
    /// of each [`run`](Self::run). `threads <= 1` creates no workers and
    /// makes `run` purely sequential.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let mut workers = Vec::with_capacity(threads - 1);
        for _ in 1..threads {
            let shared = Arc::clone(&shared);
            // sdfm-lint: allow(T1) reason="pool workers are long-lived by design: Drop joins every handle, and run() blocks until all borrowed tasks complete, so no worker outlives state it can reach"
            workers.push(std::thread::spawn(move || Self::worker_loop(&shared)));
        }
        WorkerPool {
            shared,
            workers,
            threads,
        }
    }

    /// The concurrency this pool was built for (background workers + the
    /// calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Background workers currently attached.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn worker_loop(shared: &Shared) {
        loop {
            let job = {
                let mut q = shared
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = q.jobs.pop_front() {
                        break Some(job);
                    }
                    if q.shutdown {
                        break None;
                    }
                    q = shared
                        .work_ready
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            match job {
                Some(job) => execute(job),
                None => return,
            }
        }
    }

    /// Runs every task, returning their results **in submission order**.
    ///
    /// Blocks until the whole batch has finished — including when a task
    /// panics, in which case the first panic is surfaced as
    /// [`Err(PoolError)`](PoolError) after the batch drains (so borrowed
    /// captures never outlive the call). An empty task set returns
    /// immediately without touching the queue.
    pub fn run<'env, T, F>(&self, tasks: Vec<F>) -> Result<Vec<T>, PoolError>
    where
        F: FnOnce() -> T + Send + 'env,
        T: Send + 'env,
    {
        if tasks.is_empty() {
            return Ok(Vec::new());
        }
        // Sequential fast path: no workers, no queue, no erasure.
        if self.workers.is_empty() {
            let mut out = Vec::with_capacity(tasks.len());
            for (index, task) in tasks.into_iter().enumerate() {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                    Ok(v) => out.push(v),
                    Err(payload) => {
                        return Err(PoolError {
                            task_index: index,
                            message: panic_message(payload.as_ref()),
                        })
                    }
                }
            }
            return Ok(out);
        }

        let n = tasks.len();
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        let base = slots.as_mut_ptr();
        let batch = Arc::new(Batch::new(n));
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for (index, task) in tasks.into_iter().enumerate() {
                // SAFETY: `base` points into `slots`, which stays alive and
                // unmoved until `batch.wait()` below has observed every task
                // finished; each index is claimed by exactly one task.
                let slot = Slot(unsafe { base.add(index) });
                let wrapper = move || slot.fill(task());
                let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(wrapper);
                // SAFETY: the only difference between the two types is the
                // lifetime bound on the closure's captures. The erased task
                // cannot outlive them: it is either executed or dropped
                // before `batch.wait()` returns, and `run` does not return
                // (or unwind — nothing below can panic) before that.
                let erased: Task = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'env>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(boxed)
                };
                q.jobs.push_back(Job {
                    index,
                    task: erased,
                    batch: Arc::clone(&batch),
                });
            }
            self.shared.work_ready.notify_all();
        }

        // Caller participation: drain the injector alongside the workers
        // instead of blocking idle, so `threads` tasks run concurrently.
        loop {
            let job = {
                let mut q = self
                    .shared
                    .queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                q.jobs.pop_front()
            };
            match job {
                Some(job) => execute(job),
                // Queue drained; in-flight tasks finish on the workers.
                None => break,
            }
        }
        if let Some(err) = batch.wait() {
            return Err(err);
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every task of a successful batch filled its slot"))
            .collect())
    }
}

impl Drop for WorkerPool {
    /// Shuts the pool down: signals every worker and joins it. `run`
    /// borrows the pool for its whole duration, so no batch can be in
    /// flight here; the queue is necessarily empty.
    fn drop(&mut self) {
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            // A worker that somehow panicked outside a task is already
            // dead; joining it returns its payload, which we drop — pool
            // shutdown must not propagate stale panics.
            let _ = handle.join();
        }
    }
}

/// Resolves a requested worker count to the effective one, making thread
/// configuration reproducible across hosts:
///
/// 1. an explicit `requested > 0` always wins (the `--threads` flag);
/// 2. otherwise the `SDFM_THREADS` environment variable, when set to a
///    positive integer (CI pinning);
/// 3. otherwise [`std::thread::available_parallelism`].
///
/// Simulation output is bit-identical at any setting; this only pins
/// *performance* behavior so two runs on different hosts are comparable.
pub fn resolve_threads(requested: usize) -> usize {
    resolve_threads_detailed(requested).0
}

/// Where a resolved worker count came from (for operator-facing logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSource {
    /// An explicit request (e.g. the `--threads` flag).
    Explicit,
    /// The `SDFM_THREADS` environment variable.
    Env,
    /// Detected host parallelism.
    Detected,
}

impl fmt::Display for ThreadSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThreadSource::Explicit => "--threads",
            ThreadSource::Env => "SDFM_THREADS",
            ThreadSource::Detected => "available_parallelism",
        })
    }
}

/// [`resolve_threads`] plus the provenance of the answer, so every fig
/// binary can log the resolved count in its header line.
pub fn resolve_threads_detailed(requested: usize) -> (usize, ThreadSource) {
    if requested > 0 {
        return (requested, ThreadSource::Explicit);
    }
    if let Ok(v) = std::env::var("SDFM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return (n, ThreadSource::Env);
            }
        }
    }
    (
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ThreadSource::Detected,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        // Uneven work so completion order differs from submission order.
        let tasks: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    let spins = (i % 7) * 1_000;
                    let mut acc = i;
                    for k in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    i * 2
                }
            })
            .collect();
        let out = pool.run(tasks).expect("no panics");
        assert_eq!(out, (0..64u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_task_set_is_a_fast_path() {
        let pool = WorkerPool::new(4);
        let out: Vec<u32> = pool.run(Vec::<fn() -> u32>::new()).expect("empty ok");
        assert!(out.is_empty());
    }

    #[test]
    fn tasks_may_borrow_caller_state() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..100).collect();
        let mut outputs = [0u64; 4];
        let tasks: Vec<_> = data
            .chunks(25)
            .zip(outputs.iter_mut())
            .map(|(chunk, out)| {
                move || {
                    *out = chunk.iter().sum::<u64>();
                }
            })
            .collect();
        pool.run(tasks).expect("no panics");
        assert_eq!(outputs.iter().sum::<u64>(), (0..100).sum::<u64>());
    }

    #[test]
    fn worker_panic_surfaces_as_err_without_deadlock() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..16usize)
            .map(|i| {
                move || {
                    if i == 5 {
                        panic!("task five exploded");
                    }
                    i
                }
            })
            .collect();
        let err = pool.run(tasks).expect_err("panic must surface");
        assert_eq!(err.message, "task five exploded");
        // The pool survives a failed batch and runs the next one cleanly.
        let out = pool.run((0..8).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out.expect("pool usable after panic"), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_pool_catches_panics_too() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.worker_count(), 0);
        let err = pool
            .run(vec![|| panic!("solo boom")])
            .map(|v: Vec<()>| v)
            .expect_err("panic must surface");
        assert_eq!(err.task_index, 0);
        assert_eq!(err.message, "solo boom");
    }

    #[test]
    fn drop_joins_workers_and_completes_queued_work_first() {
        static RAN: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        assert_eq!(pool.worker_count(), 3);
        let tasks: Vec<_> = (0..32)
            .map(|_| {
                || {
                    RAN.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.run(tasks).expect("no panics");
        drop(pool); // must join all three workers without hanging
        assert_eq!(RAN.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn dropping_an_idle_pool_does_not_hang() {
        let pool = WorkerPool::new(8);
        drop(pool);
    }

    #[test]
    fn resolve_threads_precedence() {
        assert_eq!(resolve_threads(3), 3);
        let (n, src) = resolve_threads_detailed(5);
        assert_eq!((n, src), (5, ThreadSource::Explicit));
        // Without an explicit request the answer is host-dependent but
        // always at least one.
        assert!(resolve_threads(0) >= 1);
    }
}
