//! Trace organization: grouping exported records by job.

use std::collections::BTreeMap;

use sdfm_agent::TraceRecord;
use sdfm_types::ids::JobId;

/// One job's time-ordered trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// The job.
    pub job: JobId,
    /// Records sorted by window end time.
    pub records: Vec<TraceRecord>,
}

impl JobTrace {
    /// Builds a trace, sorting records by time.
    pub fn new(job: JobId, mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.at);
        JobTrace { job, records }
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the trace has no windows.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Groups a flat record stream (as exported by node agents) into per-job
/// traces, each time-sorted.
pub fn group_traces(records: Vec<TraceRecord>) -> Vec<JobTrace> {
    let mut by_job: BTreeMap<JobId, Vec<TraceRecord>> = BTreeMap::new();
    for r in records {
        by_job.entry(r.job).or_default().push(r);
    }
    by_job
        .into_iter()
        .map(|(job, records)| JobTrace::new(job, records))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdfm_types::histogram::{ColdAgeHistogram, PromotionHistogram};
    use sdfm_types::size::PageCount;
    use sdfm_types::time::{SimDuration, SimTime};

    fn record(job: u64, at: u64) -> TraceRecord {
        TraceRecord {
            job: JobId::new(job),
            at: SimTime::from_secs(at),
            window: SimDuration::from_secs(300),
            working_set: PageCount::new(10),
            cold_hist: ColdAgeHistogram::new(),
            promo_delta: PromotionHistogram::new(),
            incompressible_fraction: 0.0,
        }
    }

    #[test]
    fn grouping_partitions_by_job_and_sorts_by_time() {
        let records = vec![
            record(2, 600),
            record(1, 300),
            record(2, 300),
            record(1, 600),
        ];
        let traces = group_traces(records);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].job, JobId::new(1));
        assert_eq!(traces[0].records[0].at, SimTime::from_secs(300));
        assert_eq!(traces[0].records[1].at, SimTime::from_secs(600));
        assert_eq!(traces[1].job, JobId::new(2));
        assert_eq!(traces[1].len(), 2);
        assert!(!traces[1].is_empty());
    }

    #[test]
    fn empty_input_yields_no_traces() {
        assert!(group_traces(vec![]).is_empty());
    }
}
