//! The fast far memory model (§5.3).
//!
//! The paper's autotuner never experiments on production: it replays
//! exported far-memory traces — per-job 5-minute aggregates of working set
//! size, cold-age histogram, and promotion histogram — through the §4.3
//! control algorithm under *candidate* parameter configurations, entirely
//! offline. Because every candidate threshold's behavior is recoverable
//! from the histograms, one trace supports what-if analysis of any `(K, S)`
//! configuration.
//!
//! The pipeline is embarrassingly parallel (jobs replay independently;
//! configurations evaluate independently); the paper models a week of the
//! whole WSC in under an hour on MapReduce. [`FarMemoryModel`] parallelizes
//! with scoped threads.
//!
//! # Examples
//!
//! ```
//! use sdfm_model::{FarMemoryModel, ModelConfig};
//! use sdfm_agent::AgentParams;
//!
//! let model = FarMemoryModel::new(vec![]); // no traces: empty result
//! let result = model.evaluate(&ModelConfig::new(AgentParams::default()));
//! assert_eq!(result.jobs, 0);
//! ```

#![warn(missing_docs)]

mod fleet;
mod replay;
mod trace;

pub use fleet::{FarMemoryModel, FleetModelResult, ModelConfig};
pub use replay::{
    replay_job, replay_job_with_chain, replay_job_with_model, replay_job_with_prefetch,
    replay_job_with_pressure, JobReplayOutcome, WindowOutcome,
};
pub use trace::{group_traces, JobTrace};
